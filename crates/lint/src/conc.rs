//! The CONC rule family: concurrency hazards around locks and atomics.
//!
//! The lock-striped `SimulatedCrowd`, the `Session` `RwLock`, and the
//! `crowdkit-metrics` atomics are exactly the surfaces the planned
//! `crowdkitd` service front-end will multiply. Three rules, all
//! best-effort over guard *scopes* (a guard's scope runs from its
//! acquisition to the end of its enclosing block, an explicit
//! `drop(guard)`, or — for un-bound temporaries — the end of the
//! statement):
//!
//! * **CONC001** — lock-ordering cycle detection. Every "guard of A held
//!   while B is acquired" (directly, or through a resolved call into a
//!   lock-acquiring function) is an edge A→B in a workspace-wide
//!   acquisition graph; any strongly-connected component is a potential
//!   deadlock and is reported with the acquisition sites of every edge.
//! * **CONC002** — atomic `Ordering` audit: `SeqCst` mixed with weaker
//!   orderings on the same field without a reasoned `// ORDERING:`
//!   comment, and any `SeqCst` under `crates/metrics/src` where the
//!   documented policy (DESIGN.md §12) is `Relaxed` + merge-on-read.
//! * **CONC003** — a guard held across a call into `&dyn CrowdOracle`
//!   (`ask`/`ask_one`/`ask_batch`/`ask_many` — crowd I/O under a lock) or
//!   into a function that (transitively) acquires a lock itself.
//!
//! Lock identity is `crate::receiver-name` — syntactic, not aliased; two
//! fields with one name in one crate collapse, distinct names never
//! match. Good enough to order-check real codebases, cheap enough to run
//! per commit.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Tok, Token};
use crate::rules::Finding;
use crate::symbols::{FileUnit, Resolution, SymbolTable};

/// CrowdOracle's blocking crowd-I/O surface (method-call names).
const ORACLE_METHODS: [&str; 4] = ["ask", "ask_one", "ask_batch", "ask_many"];

/// Zero-argument guard constructors.
const LOCK_METHODS: [&str; 3] = ["lock", "read", "write"];

/// Atomic read-modify-write / load / store method names.
const ATOMIC_METHODS: [&str; 12] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
];

/// The five memory orderings.
const MEM_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

fn punct_is(t: &Token, c: char) -> bool {
    matches!(&t.tok, Tok::Punct(p) if *p == c)
}

fn ident_of(t: &Token) -> Option<&str> {
    match &t.tok {
        Tok::Ident(w) => Some(w),
        _ => None,
    }
}

/// One lock acquisition and the token range its guard is live for.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Workspace-wide lock identity: `crate::receiver-name`.
    pub key: String,
    /// Receiver name as written (`core`, `shard_for()`, …).
    pub name: String,
    /// `lock`/`read`/`write`.
    pub method: String,
    /// Token index of the method name.
    pub tok: usize,
    /// Acquisition line.
    pub line: u32,
    /// Last token index at which the guard is (conservatively) live.
    pub scope_end: usize,
    /// True when bound with `let` (scope = enclosing block), false for
    /// statement-scoped temporaries.
    pub let_bound: bool,
}

/// Per-function lock facts for the workspace pass.
#[derive(Debug, Default, Clone)]
pub struct FnLocks {
    /// Acquisitions in token order.
    pub acqs: Vec<Acquisition>,
}

/// Extracts the receiver name for a method call at `dot` (the `.` token):
/// the identifier immediately before, or `name()` for call results
/// (`self.shard_for(task).lock()` → `shard_for()`), or `name` behind an
/// index (`self.shards[i]` → `shards`), descending through tuple-field
/// digits (`s.0.fetch_add` → `s`).
fn receiver_name(tokens: &[Token], dot: usize) -> String {
    let mut i = dot;
    loop {
        if i == 0 {
            return "<expr>".to_owned();
        }
        let prev = i - 1;
        match &tokens[prev].tok {
            Tok::Ident(w) => return w.clone(),
            Tok::Num(_) => {
                // Tuple field: step over `0` and the `.` before it.
                if prev >= 2 && punct_is(&tokens[prev - 1], '.') {
                    i = prev - 1;
                    continue;
                }
                return "<expr>".to_owned();
            }
            Tok::Punct(')') | Tok::Punct(']') => {
                let (open, close) = if punct_is(&tokens[prev], ')') {
                    ('(', ')')
                } else {
                    ('[', ']')
                };
                let mut depth = 0i32;
                let mut j = prev;
                loop {
                    if punct_is(&tokens[j], close) {
                        depth += 1;
                    } else if punct_is(&tokens[j], open) {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if j == 0 {
                        return "<expr>".to_owned();
                    }
                    j -= 1;
                }
                if j >= 1 {
                    if let Some(w) = ident_of(&tokens[j - 1]) {
                        return if close == ')' {
                            format!("{w}()")
                        } else {
                            w.to_owned()
                        };
                    }
                }
                return "<expr>".to_owned();
            }
            _ => return "<expr>".to_owned(),
        }
    }
}

/// Token index where the statement containing `at` begins (one past the
/// previous `;`/`{`/`}`, searching backwards without depth tracking —
/// good enough to see a leading `let`).
fn statement_start(tokens: &[Token], at: usize) -> usize {
    let mut i = at;
    while i > 0 {
        let prev = &tokens[i - 1];
        if punct_is(prev, ';') || punct_is(prev, '{') || punct_is(prev, '}') {
            break;
        }
        i -= 1;
    }
    i
}

/// Innermost `{` enclosing each token, via a running stack.
fn enclosing_opens(tokens: &[Token]) -> Vec<Option<usize>> {
    let mut out = vec![None; tokens.len()];
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        out[i] = stack.last().copied();
        if punct_is(t, '{') {
            stack.push(i);
        } else if punct_is(t, '}') {
            stack.pop();
        }
    }
    out
}

/// Extracts every guard acquisition in one file, attributed to functions
/// by the caller.
pub fn file_acquisitions(unit: &FileUnit, crate_name: &str) -> Vec<Acquisition> {
    let tokens = &unit.lexed.tokens;
    let enclosing = enclosing_opens(tokens);
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        // `. lock ( )` / `. read ( )` / `. write ( )` — zero-arg only, so
        // `file.write(buf)` and `reader.read(n)` never match.
        if !punct_is(&tokens[i], '.') {
            continue;
        }
        let Some(method) = tokens.get(i + 1).and_then(ident_of) else {
            continue;
        };
        if !LOCK_METHODS.contains(&method) {
            continue;
        }
        if !(tokens.get(i + 2).is_some_and(|t| punct_is(t, '('))
            && tokens.get(i + 3).is_some_and(|t| punct_is(t, ')')))
        {
            continue;
        }
        let name = receiver_name(tokens, i);
        let key = format!("{crate_name}::{name}");
        let mtok = i + 1;
        // `let`-bound? The statement opens with `let` (or `if let` /
        // `while let`, whose guard lives for the following block — treat
        // as let-bound with the block that follows).
        let stmt = statement_start(tokens, i);
        let let_bound = tokens
            .get(stmt)
            .and_then(ident_of)
            .is_some_and(|w| w == "let")
            || tokens
                .get(stmt)
                .and_then(ident_of)
                .is_some_and(|w| w == "if" || w == "while")
                && tokens
                    .get(stmt + 1)
                    .and_then(ident_of)
                    .is_some_and(|w| w == "let");
        let mut scope_end = if let_bound {
            match enclosing[i].and_then(|open| unit.analysis.brace_match[open]) {
                Some(close) => close,
                None => tokens.len().saturating_sub(1),
            }
        } else {
            // Temporary: held to the end of the statement.
            let mut j = i;
            let mut depth = 0i32;
            while j < tokens.len() {
                match &tokens[j].tok {
                    Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                    Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                        depth -= 1;
                        if depth < 0 {
                            break;
                        }
                    }
                    Tok::Punct(';') if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            j.min(tokens.len().saturating_sub(1))
        };
        // Explicit `drop ( guard )` shortens a let-bound scope. The guard
        // name is the identifier after `let [mut]`.
        if let_bound {
            let mut g = stmt + 1;
            while tokens.get(g).and_then(ident_of).is_some_and(|w| {
                w == "let" || w == "mut" || w == "if" || w == "while"
            }) {
                g += 1;
            }
            if let Some(guard) = tokens.get(g).and_then(ident_of) {
                let mut j = i;
                while j + 3 <= scope_end {
                    if tokens.get(j).and_then(ident_of) == Some("drop")
                        && tokens.get(j + 1).is_some_and(|t| punct_is(t, '('))
                        && tokens.get(j + 2).and_then(ident_of) == Some(guard)
                        && tokens.get(j + 3).is_some_and(|t| punct_is(t, ')'))
                    {
                        scope_end = j;
                        break;
                    }
                    j += 1;
                }
            }
        }
        out.push(Acquisition {
            key,
            name,
            method: method.to_owned(),
            tok: mtok,
            line: tokens[mtok].line,
            scope_end,
            let_bound,
        });
    }
    out
}

/// A lock-acquisition site for reporting: `file:line`.
type Site = (String, u32);

/// Workspace lock model: per-fn acquisitions plus the transitive
/// may-acquire set per function.
pub struct LockModel {
    /// Acquisitions per function id, token-ordered.
    pub per_fn: Vec<FnLocks>,
    /// Transitive may-acquire per function id: lock key → first site.
    pub may_acquire: Vec<BTreeMap<String, Site>>,
}

impl LockModel {
    /// Builds the model: attributes file acquisitions to functions, then
    /// closes may-acquire over the resolved call graph to a fixpoint.
    pub fn build(units: &[FileUnit], table: &SymbolTable) -> Self {
        let mut per_fn = vec![FnLocks::default(); table.fns.len()];
        for (u, unit) in units.iter().enumerate() {
            let crate_name = unit.crate_name.clone();
            for acq in file_acquisitions(unit, &crate_name) {
                if let Some(fid) = table.fn_at(u, acq.tok) {
                    per_fn[fid].acqs.push(acq);
                }
            }
        }
        let mut may_acquire: Vec<BTreeMap<String, Site>> = table
            .fns
            .iter()
            .map(|f| {
                per_fn[f.id]
                    .acqs
                    .iter()
                    .map(|a| (a.key.clone(), (f.file.clone(), a.line)))
                    .collect()
            })
            .collect();
        // Fixpoint: caller inherits callee's may-acquire set.
        let mut changed = true;
        let mut rounds = 0usize;
        while changed && rounds < 64 {
            changed = false;
            rounds += 1;
            for c in &table.calls {
                let Resolution::Resolved(callee) = c.resolution else {
                    continue;
                };
                if callee == c.caller {
                    continue;
                }
                let inherited: Vec<(String, Site)> = may_acquire[callee]
                    .iter()
                    .filter(|(k, _)| !may_acquire[c.caller].contains_key(*k))
                    .map(|(k, s)| (k.clone(), s.clone()))
                    .collect();
                if !inherited.is_empty() {
                    changed = true;
                    may_acquire[c.caller].extend(inherited);
                }
            }
        }
        LockModel {
            per_fn,
            may_acquire,
        }
    }
}

/// Runs the CONC rules; `want` filters by rule id.
pub fn run(
    units: &[FileUnit],
    table: &SymbolTable,
    want: impl Fn(&str) -> bool,
    out: &mut Vec<Finding>,
) {
    let model = LockModel::build(units, table);
    if want("CONC001") {
        conc001(units, table, &model, out);
    }
    if want("CONC002") {
        conc002(units, out);
    }
    if want("CONC003") {
        conc003(units, table, &model, out);
    }
}

// ---------------------------------------------------------------- CONC001

/// Builds the acquisition-order edge set: `(A, B) → (site of A, site of
/// B)`, first witness wins.
fn order_edges(
    units: &[FileUnit],
    table: &SymbolTable,
    model: &LockModel,
) -> BTreeMap<(String, String), (Site, Site)> {
    let mut edges: BTreeMap<(String, String), (Site, Site)> = BTreeMap::new();
    for f in &table.fns {
        let file = &f.file;
        let acqs = &model.per_fn[f.id].acqs;
        // Direct: A then B inside A's guard scope.
        for a in acqs {
            for b in acqs {
                if b.tok > a.tok && b.tok <= a.scope_end && a.key != b.key {
                    edges
                        .entry((a.key.clone(), b.key.clone()))
                        .or_insert(((file.clone(), a.line), (file.clone(), b.line)));
                }
            }
            // Via calls: a resolved callee that may acquire B while A is
            // held.
            for c in table.calls.iter().filter(|c| c.caller == f.id) {
                if c.tok <= a.tok || c.tok > a.scope_end {
                    continue;
                }
                if units[f.unit].analysis.is_test[c.tok] {
                    continue;
                }
                let Resolution::Resolved(callee) = c.resolution else {
                    continue;
                };
                for (bkey, bsite) in &model.may_acquire[callee] {
                    if *bkey != a.key {
                        edges
                            .entry((a.key.clone(), bkey.clone()))
                            .or_insert(((file.clone(), a.line), bsite.clone()));
                    }
                }
            }
        }
    }
    edges
}

/// Tarjan-free SCC via Kosaraju on the (small) lock graph; deterministic
/// because all containers are ordered.
fn sccs(nodes: &BTreeSet<String>, adj: &BTreeMap<String, BTreeSet<String>>) -> Vec<Vec<String>> {
    let radj: BTreeMap<String, BTreeSet<String>> = {
        let mut r: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (from, tos) in adj {
            for to in tos {
                r.entry(to.clone()).or_default().insert(from.clone());
            }
        }
        r
    };
    // First pass: finish order.
    let mut visited: BTreeSet<String> = BTreeSet::new();
    let mut order: Vec<String> = Vec::new();
    for n in nodes {
        if visited.contains(n) {
            continue;
        }
        // Iterative DFS with an explicit done-marker.
        let mut stack: Vec<(String, bool)> = vec![(n.clone(), false)];
        while let Some((cur, done)) = stack.pop() {
            if done {
                order.push(cur);
                continue;
            }
            if !visited.insert(cur.clone()) {
                continue;
            }
            stack.push((cur.clone(), true));
            if let Some(nexts) = adj.get(&cur) {
                for nx in nexts.iter().rev() {
                    if !visited.contains(nx) {
                        stack.push((nx.clone(), false));
                    }
                }
            }
        }
    }
    // Second pass over the reverse graph in reverse finish order.
    let mut assigned: BTreeSet<String> = BTreeSet::new();
    let mut comps: Vec<Vec<String>> = Vec::new();
    for n in order.iter().rev() {
        if assigned.contains(n) {
            continue;
        }
        let mut comp = Vec::new();
        let mut stack = vec![n.clone()];
        while let Some(cur) = stack.pop() {
            if !assigned.insert(cur.clone()) {
                continue;
            }
            comp.push(cur.clone());
            if let Some(prevs) = radj.get(&cur) {
                for p in prevs {
                    if !assigned.contains(p) {
                        stack.push(p.clone());
                    }
                }
            }
        }
        comp.sort();
        comps.push(comp);
    }
    comps
}

fn conc001(
    units: &[FileUnit],
    table: &SymbolTable,
    model: &LockModel,
    out: &mut Vec<Finding>,
) {
    let edges = order_edges(units, table, model);
    let mut nodes: BTreeSet<String> = BTreeSet::new();
    let mut adj: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        nodes.insert(a.clone());
        nodes.insert(b.clone());
        adj.entry(a.clone()).or_default().insert(b.clone());
    }
    for comp in sccs(&nodes, &adj) {
        if comp.len() < 2 {
            continue;
        }
        let members: BTreeSet<&String> = comp.iter().collect();
        let mut parts: Vec<String> = Vec::new();
        let mut first_site: Option<Site> = None;
        for ((a, b), (sa, sb)) in &edges {
            if members.contains(a) && members.contains(b) {
                if first_site.is_none() {
                    first_site = Some(sa.clone());
                }
                parts.push(format!(
                    "{a} acquired at {}:{} then {b} at {}:{}",
                    sa.0, sa.1, sb.0, sb.1
                ));
            }
        }
        let (file, line) = match first_site {
            Some(s) => s,
            None => continue,
        };
        out.push(Finding {
            rule: "CONC001",
            file,
            line,
            message: format!(
                "lock-ordering cycle between {{{}}}: {}",
                comp.join(", "),
                parts.join("; ")
            ),
            hint: "impose one global acquisition order for these locks (document it where \
they are declared) or collapse them into a single lock; a cycle here is a latent \
deadlock once the service front-end drives these paths concurrently",
            key: format!("cycle:{}", comp.join("+")),
            ..Finding::default()
        });
    }
}

// ---------------------------------------------------------------- CONC002

/// One atomic-access site.
struct AtomicSite {
    file: String,
    field: String,
    ordering: String,
    line: u32,
    justified: bool,
    is_test: bool,
    crate_name: String,
}

fn atomic_sites(units: &[FileUnit]) -> Vec<AtomicSite> {
    let mut sites = Vec::new();
    for unit in units {
        let tokens = &unit.lexed.tokens;
        for i in 0..tokens.len() {
            // `Ordering :: <X>` with X a memory ordering.
            let Some(w) = ident_of(&tokens[i]) else {
                continue;
            };
            if w != "Ordering" {
                continue;
            }
            if !(tokens.get(i + 1).is_some_and(|t| punct_is(t, ':'))
                && tokens.get(i + 2).is_some_and(|t| punct_is(t, ':')))
            {
                continue;
            }
            let Some(ord) = tokens.get(i + 3).and_then(ident_of) else {
                continue;
            };
            if !MEM_ORDERINGS.contains(&ord) {
                continue;
            }
            // Find the atomic method this ordering parameterizes: the
            // nearest preceding `. <atomic-method> (` within a short
            // window.
            let mut field = None;
            let mut j = i;
            let lo = i.saturating_sub(24);
            while j > lo {
                j -= 1;
                if punct_is(&tokens[j], '.')
                    && tokens
                        .get(j + 1)
                        .and_then(ident_of)
                        .is_some_and(|m| ATOMIC_METHODS.contains(&m))
                    && tokens.get(j + 2).is_some_and(|t| punct_is(t, '('))
                {
                    field = Some(receiver_name(tokens, j));
                    break;
                }
            }
            let Some(field) = field else {
                continue;
            };
            let line = tokens[i].line;
            // A reasoned `// ORDERING:` comment on the line or within the
            // two lines above justifies deliberate mixing.
            let justified = unit.lexed.comments.iter().any(|c| {
                c.text.contains("ORDERING:") && c.line + 2 >= line && c.line <= line
            });
            sites.push(AtomicSite {
                file: unit.rel.clone(),
                field,
                ordering: ord.to_owned(),
                line,
                justified,
                is_test: unit.analysis.is_test[i],
                crate_name: unit.crate_name.clone(),
            });
        }
    }
    sites
}

fn conc002(units: &[FileUnit], out: &mut Vec<Finding>) {
    let sites = atomic_sites(units);
    // Group by (crate, field): the same logical atomic accessed from
    // several files of one crate still forms one policy domain.
    let mut groups: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    for (i, s) in sites.iter().enumerate() {
        if s.is_test {
            continue;
        }
        groups
            .entry((s.crate_name.clone(), s.field.clone()))
            .or_default()
            .push(i);
    }
    for ((_, field), idxs) in &groups {
        let orderings: BTreeSet<&str> = idxs.iter().map(|&i| sites[i].ordering.as_str()).collect();
        let mixed_seqcst = orderings.contains("SeqCst") && orderings.len() > 1;
        for &i in idxs {
            let s = &sites[i];
            if s.ordering != "SeqCst" || s.justified {
                continue;
            }
            if s.file.starts_with("crates/metrics/src") || s.file.contains("/crates/metrics/src") {
                out.push(Finding {
                    rule: "CONC002",
                    file: s.file.clone(),
                    line: s.line,
                    message: format!(
                        "`SeqCst` on `{field}` in the metrics hot path (documented policy: \
`Relaxed` shards + merge-on-read)"
                    ),
                    hint: "crowdkit-metrics counters are per-thread sharded and merged on \
read; SeqCst buys nothing and serializes the hot path. Use Relaxed, or justify with \
`// ORDERING: <reason>`",
                    key: format!("seqcst-metrics:{field}"),
                    ..Finding::default()
                });
            } else if mixed_seqcst {
                let weaker: Vec<&str> = orderings
                    .iter()
                    .copied()
                    .filter(|o| *o != "SeqCst")
                    .collect();
                out.push(Finding {
                    rule: "CONC002",
                    file: s.file.clone(),
                    line: s.line,
                    message: format!(
                        "mixed atomic orderings on `{field}`: SeqCst here but {} elsewhere \
in the crate",
                        weaker.join("/")
                    ),
                    hint: "pick one ordering discipline per field; if the escalation is \
deliberate, say why in an `// ORDERING: <reason>` comment at the site",
                    key: format!("mixed:{field}"),
                    ..Finding::default()
                });
            }
        }
    }
}

// ---------------------------------------------------------------- CONC003

fn conc003(
    units: &[FileUnit],
    table: &SymbolTable,
    model: &LockModel,
    out: &mut Vec<Finding>,
) {
    let mut seen: BTreeSet<(usize, String, String)> = BTreeSet::new();
    for f in &table.fns {
        if f.is_test {
            continue;
        }
        let unit = &units[f.unit];
        for a in &model.per_fn[f.id].acqs {
            if !a.let_bound {
                continue; // statement temporaries cannot span a later call
            }
            for c in table.calls.iter().filter(|c| c.caller == f.id) {
                if c.tok <= a.tok || c.tok > a.scope_end {
                    continue;
                }
                if unit.analysis.is_test[c.tok] {
                    continue;
                }
                if c.is_method && ORACLE_METHODS.contains(&c.callee.as_str()) {
                    if seen.insert((f.id, a.key.clone(), c.callee.clone())) {
                        out.push(Finding {
                            rule: "CONC003",
                            file: f.file.clone(),
                            line: c.line,
                            message: format!(
                                "guard on `{}` (acquired {}:{}) held across CrowdOracle \
call `{}`",
                                a.key, f.file, a.line, c.callee
                            ),
                            hint: "crowd I/O can block for whole simulated rounds; drop the \
guard (or clone what it protects) before asking the crowd, or a concurrent caller \
needing the same lock stalls behind the crowd's latency",
                            key: format!("held-oracle:{}:{}", a.name, c.callee),
                            ..Finding::default()
                        });
                    }
                    continue;
                }
                let Resolution::Resolved(callee) = c.resolution else {
                    continue;
                };
                if callee == f.id {
                    continue;
                }
                // Only cross-lock hazards: callee re-acquiring the same
                // striped map is CONC001's (cycle) business.
                let acquires: Vec<(&String, &(String, u32))> = model.may_acquire[callee]
                    .iter()
                    .filter(|(k, _)| **k != a.key)
                    .collect();
                let Some((bkey, bsite)) = acquires.first() else {
                    continue;
                };
                if seen.insert((f.id, a.key.clone(), c.callee.clone())) {
                    out.push(Finding {
                        rule: "CONC003",
                        file: f.file.clone(),
                        line: c.line,
                        message: format!(
                            "guard on `{}` (acquired {}:{}) held across call to `{}`, \
which may acquire `{}` ({}:{})",
                            a.key, f.file, a.line, c.callee, bkey, bsite.0, bsite.1
                        ),
                        hint: "nested acquisition through a call is invisible at the outer \
site and is how lock-order cycles are born; shrink the guard scope or document the \
one global order and suppress with a reason",
                        key: format!("held:{}:{}", a.name, c.callee),
                        ..Finding::default()
                    });
                }
            }
        }
    }
}
