pub fn timed() -> u64 {
    let t = crowdkit_obs::WallTimer::start();
    t.elapsed_ns()
}

// Reading recorded wall *fields* out of a trace is analysis, not clock
// access: `wall_ns` / `*_ns` names in data never touch the host clock.
pub fn wall_time_from_trace(fields: &[(String, u64)]) -> u64 {
    fields
        .iter()
        .filter(|(name, _)| name == "wall_ns" || name.ends_with("_ns"))
        .map(|(_, ns)| ns)
        .sum()
}

pub fn attribute_span(plan_ns: u64, exec_ns: u64) -> (u64, u64) {
    let total_ns = plan_ns + exec_ns;
    (total_ns, total_ns.saturating_sub(plan_ns))
}
