pub fn timed() -> u64 {
    let t = crowdkit_obs::WallTimer::start();
    t.elapsed_ns()
}
