// Known-bad: wall-clock laundered through two calls. The per-site rule
// sees only line 3; the taint pass must flag the relay and the consumer
// with a witness chain down to the seed.
fn stamp() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

fn jitter() -> u64 {
    stamp() / 3
}

fn schedule() -> u64 {
    jitter() + 1
}
