pub fn elapsed() -> u64 {
    let start = std::time::Instant::now();
    start.elapsed().as_nanos() as u64
}

pub fn epoch() -> u64 {
    std::time::SystemTime::now().elapsed().map_or(0, |d| d.as_secs())
}
