// Known-good: the guard is scoped to a block (or explicitly dropped)
// before the oracle call / the lock-acquiring helper runs.
struct S {
    state: Mutex<u32>,
    other: Mutex<u32>,
}

impl S {
    fn helper(&self) -> u32 {
        let g = self.other.lock();
        *g
    }

    fn good(&self, oracle: &dyn CrowdOracle, tasks: &[Task]) -> u32 {
        let snapshot = {
            let g = self.state.lock();
            *g
        };
        let answers = oracle.ask_batch(tasks);
        let g2 = self.state.lock();
        let base = *g2;
        drop(g2);
        let nested = self.helper();
        snapshot + base + answers.len() as u32 + nested
    }
}
