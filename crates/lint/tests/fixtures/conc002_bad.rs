// Known-bad: the same atomic field is read Relaxed but bumped SeqCst with
// no `// ORDERING:` justification — either the weak read is wrong or the
// strong write is waste.
fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::SeqCst);
}

fn read_it(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Relaxed)
}
