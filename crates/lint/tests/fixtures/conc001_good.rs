// Known-good: both paths honour one global order (alpha before beta), so
// the acquisition graph is acyclic.
struct S {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl S {
    fn forward(&self) -> u32 {
        let ga = self.alpha.lock();
        let gb = self.beta.lock();
        *ga + *gb
    }

    fn also_forward(&self) -> u32 {
        let ga = self.alpha.lock();
        let gb = self.beta.lock();
        *gb - *ga
    }
}
