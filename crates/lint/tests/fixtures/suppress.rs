pub fn trailing(xs: &[u64]) -> u64 {
    *xs.first().unwrap() // crowdkit-lint: allow(PANIC001) — caller checks non-empty
}

// crowdkit-lint: allow(PANIC001) — fixture: a standalone allow covers the whole block below
pub fn block(xs: &[u64]) -> u64 {
    let a = xs.first().unwrap();
    let b = xs.last().unwrap();
    *a + *b
}

pub fn reasonless(xs: &[u64]) -> u64 {
    *xs.first().unwrap() // crowdkit-lint: allow(PANIC001)
}
