//! A crate root missing the standard lint header.

pub fn x() {}
