// Bin targets live under src/ too: an undocumented main must be flagged.

fn main() {}
