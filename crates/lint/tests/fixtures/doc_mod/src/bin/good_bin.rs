// crowdkit-lint: allow-file(PANIC001) — fixture: the suppression header the real bench binaries open with
//! A documented bin target: the `//!` after an allow-file line counts.

fn main() {}
