// crowdkit-lint fixture: a leading plain comment does not satisfy the
// module-doc requirement on its own…
//! …but this `//!` header does.

pub fn documented() {}
