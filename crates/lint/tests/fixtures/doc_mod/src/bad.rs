// A plain comment is not a module doc: this file must be flagged.

pub fn undocumented() {}
