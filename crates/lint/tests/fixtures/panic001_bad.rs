pub fn first(xs: &[u64]) -> u64 {
    let head = xs.first().unwrap();
    let tail = xs.last().expect("non-empty");
    if *head > *tail {
        panic!("unsorted");
    }
    *head
}
