pub fn lib_code(xs: &[u64]) -> u64 {
    xs.iter().copied().max().unwrap()
}

#[cfg(test)]
mod tests {
    pub fn helper(xs: &[u64]) -> u64 {
        xs.first().copied().unwrap()
    }

    #[test]
    fn uses_helper() {
        assert_eq!(helper(&[1]), 1);
    }
}
