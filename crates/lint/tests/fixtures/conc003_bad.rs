// Known-bad: a guard held across crowd I/O (the oracle can block for whole
// simulated rounds) and across a call into a function that takes another
// lock (a nested acquisition invisible at this site).
struct S {
    state: Mutex<u32>,
    other: Mutex<u32>,
}

impl S {
    fn helper(&self) -> u32 {
        let g = self.other.lock();
        *g
    }

    fn bad(&self, oracle: &dyn CrowdOracle, tasks: &[Task]) -> u32 {
        let g = self.state.lock();
        let answers = oracle.ask_batch(tasks);
        let nested = self.helper();
        *g + answers.len() as u32 + nested
    }
}
