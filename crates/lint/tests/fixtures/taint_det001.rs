// Known-bad: hash-ordered iteration escapes through a return value and is
// folded into a float two calls later. No single function here trips the
// per-site DET001 (the iterating fn does not accumulate floats; the
// accumulating fn never touches the map) — only the chain is wrong.
use std::collections::HashMap;

fn leak_order(m: &HashMap<u32, f64>) -> Vec<f64> {
    m.values().cloned().collect()
}

fn relay(m: &HashMap<u32, f64>) -> Vec<f64> {
    leak_order(m)
}

fn total(m: &HashMap<u32, f64>) -> f64 {
    let mut acc = 0.0;
    for v in relay(m) {
        acc += v;
    }
    acc
}
