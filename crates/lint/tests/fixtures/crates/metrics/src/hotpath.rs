// Known-bad: any unjustified SeqCst under crates/metrics/src violates the
// documented Relaxed-shards + merge-on-read policy, mixed or not.
fn bump(shard: &AtomicU64) {
    shard.fetch_add(1, Ordering::SeqCst);
}
