//! A crate root carrying the standard lint header.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub fn x() {}
