// crowdkit-lint: allow-file(PANIC001) — fixture: whole-file exemption demo
pub fn a(xs: &[u64]) -> u64 {
    *xs.first().unwrap()
}

pub fn b(xs: &[u64]) -> u64 {
    *xs.last().unwrap()
}
