pub fn read_first(xs: &[u8]) -> u8 {
    // SAFETY: the caller guarantees `xs` is non-empty.
    unsafe { *xs.as_ptr() }
}
