// Known-bad: two functions acquire the same two locks in opposite orders —
// a classic AB/BA deadlock. CONC001 must report the cycle with both
// acquisition sites.
struct S {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl S {
    fn forward(&self) -> u32 {
        let ga = self.alpha.lock();
        let gb = self.beta.lock();
        *ga + *gb
    }

    fn backward(&self) -> u32 {
        let gb = self.beta.lock();
        let ga = self.alpha.lock();
        *gb - *ga
    }
}
