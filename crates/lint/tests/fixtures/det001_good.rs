use std::collections::{BTreeMap, HashMap};

pub fn sum_scores(scores: &BTreeMap<u64, f64>) -> f64 {
    let mut total = 0.0f64;
    for (_, v) in scores.iter() {
        total += *v;
    }
    total
}

pub fn keyed_lookups(index: &HashMap<u64, f64>, keys: &[u64]) -> f64 {
    let mut total = 0.0f64;
    for k in keys {
        total += index.get(k).copied().unwrap_or(0.0);
    }
    total
}
