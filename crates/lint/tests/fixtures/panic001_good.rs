pub struct Cursor {
    pos: usize,
}

impl Cursor {
    fn expect(&mut self, want: u8, what: &str) -> Result<(), String> {
        let _ = (want, what);
        self.pos += 1;
        Ok(())
    }

    pub fn parse(&mut self) -> Result<(), String> {
        self.expect(b'(', "'('")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
