use std::collections::HashMap;

pub fn sum_scores(scores: &HashMap<u64, f64>) -> f64 {
    let mut total = 0.0f64;
    for (_, v) in scores.iter() {
        total += *v;
    }
    total
}

pub fn dump(m: &HashMap<String, u64>, out: &mut String) {
    for (k, v) in m {
        out.push_str(&format!("{k}={v}\n"));
    }
}
