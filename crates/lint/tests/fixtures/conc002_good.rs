// Known-good: one field is uniformly Relaxed; the other mixes orderings
// but says why, which the audit accepts.
fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

fn read_it(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Relaxed)
}

fn publish(flag: &AtomicU64) {
    // ORDERING: release-publishes the config snapshot readers acquire-load
    flag.store(1, Ordering::SeqCst);
}

fn observe(flag: &AtomicU64) -> u64 {
    flag.load(Ordering::Acquire)
}
