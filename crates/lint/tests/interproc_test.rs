//! Integration tests for the workspace-level passes: interprocedural
//! DET001/DET002 taint with witness chains, the CONC rule family on
//! known-bad / known-good fixture pairs, fingerprint stability, and the
//! ratcheted baseline (library and CLI).

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use crowdkit_lint::engine::{apply_baseline, scan_paths};
use crowdkit_lint::{baseline, scan_file, Report};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Scans a set of fixtures as one workspace with one rule active.
fn scan_workspace(files: &[&str], rule: &str) -> Report {
    let root = fixtures_root();
    let paths: Vec<PathBuf> = files.iter().map(|f| root.join(f)).collect();
    let only: BTreeSet<String> = [rule.to_owned()].into();
    scan_paths(&root, &paths, &only)
}

#[test]
fn det002_taint_flags_a_two_hop_chain_the_per_site_rule_misses() {
    let report = scan_workspace(&["taint_det002.rs"], "DET002");
    // Per-site: the Instant::now() in `stamp`. Taint: the relay (`jitter`
    // calls `stamp`) and the two-hop consumer (`schedule` calls `jitter`).
    let lines: Vec<(u32, bool)> = report
        .findings
        .iter()
        .map(|f| (f.line, f.chain.is_empty()))
        .collect();
    assert_eq!(
        lines,
        vec![(5, true), (10, false), (14, false)],
        "findings: {:#?}",
        report.findings
    );
    // The consumer's witness chain walks both hops down to the seed.
    let chain = &report.findings[2].chain;
    assert!(chain[0].starts_with("schedule "), "{chain:?}");
    assert!(chain[1].starts_with("jitter "), "{chain:?}");
    assert!(chain[2].starts_with("stamp "), "{chain:?}");
    assert!(chain[3].starts_with("Instant::now()"), "{chain:?}");
    // The per-site scanner alone sees only the seed.
    let root = fixtures_root();
    let only: BTreeSet<String> = ["DET002".to_owned()].into();
    let (per_site, _) = scan_file(&root, &root.join("taint_det002.rs"), &only);
    assert_eq!(per_site.len(), 1);
    assert_eq!(per_site[0].line, 5);
}

#[test]
fn det001_taint_requires_an_order_sensitive_consumer() {
    let report = scan_workspace(&["taint_det001.rs"], "DET001");
    // Only `total` (accumulates floats) is flagged, at its call into the
    // relay; `relay` itself neither folds nor serializes.
    assert_eq!(report.findings.len(), 1, "{:#?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, "DET001");
    assert!(f.scope == "total", "scope: {}", f.scope);
    assert!(f.chain.iter().any(|l| l.starts_with("leak_order ")), "{:?}", f.chain);
    assert!(
        f.chain.last().is_some_and(|l| l.contains("m.values()")),
        "{:?}",
        f.chain
    );
    // No per-site DET001 exists anywhere in this fixture: the defect is
    // only visible interprocedurally.
    let root = fixtures_root();
    let only: BTreeSet<String> = ["DET001".to_owned()].into();
    let (per_site, _) = scan_file(&root, &root.join("taint_det001.rs"), &only);
    assert!(per_site.is_empty(), "{per_site:#?}");
}

#[test]
fn conc001_reports_the_ab_ba_cycle_with_both_acquisition_sites() {
    let report = scan_workspace(&["conc001_bad.rs"], "CONC001");
    assert_eq!(report.findings.len(), 1, "{:#?}", report.findings);
    let f = &report.findings[0];
    assert!(f.message.contains("lock-ordering cycle"), "{}", f.message);
    // Both edges, each with its two acquisition sites.
    assert!(
        f.message
            .contains("local::alpha acquired at conc001_bad.rs:11 then local::beta at conc001_bad.rs:12"),
        "{}",
        f.message
    );
    assert!(
        f.message
            .contains("local::beta acquired at conc001_bad.rs:17 then local::alpha at conc001_bad.rs:18"),
        "{}",
        f.message
    );
    let clean = scan_workspace(&["conc001_good.rs"], "CONC001");
    assert!(clean.findings.is_empty(), "{:#?}", clean.findings);
}

#[test]
fn conc002_flags_unjustified_seqcst_mixing_and_the_metrics_hot_path() {
    let report = scan_workspace(&["conc002_bad.rs"], "CONC002");
    assert_eq!(report.findings.len(), 1, "{:#?}", report.findings);
    assert_eq!(report.findings[0].line, 5);
    assert!(report.findings[0].message.contains("mixed atomic orderings"));

    // An `// ORDERING:` comment justifies deliberate mixing.
    let clean = scan_workspace(&["conc002_good.rs"], "CONC002");
    assert!(clean.findings.is_empty(), "{:#?}", clean.findings);

    // Under crates/metrics/src, SeqCst is flagged even unmixed.
    let metrics = scan_workspace(&["crates/metrics/src/hotpath.rs"], "CONC002");
    assert_eq!(metrics.findings.len(), 1, "{:#?}", metrics.findings);
    assert!(
        metrics.findings[0].message.contains("metrics hot path"),
        "{}",
        metrics.findings[0].message
    );
}

#[test]
fn conc003_flags_guards_held_across_oracle_calls_and_nested_locks() {
    let report = scan_workspace(&["conc003_bad.rs"], "CONC003");
    let msgs: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert_eq!(report.findings.len(), 2, "{msgs:#?}");
    assert!(
        msgs[0].contains("held across CrowdOracle call `ask_batch`"),
        "{msgs:#?}"
    );
    assert!(
        msgs[1].contains("held across call to `helper`") && msgs[1].contains("local::other"),
        "{msgs:#?}"
    );
    // Block-scoping the guard / dropping it first is clean.
    let clean = scan_workspace(&["conc003_good.rs"], "CONC003");
    assert!(clean.findings.is_empty(), "{:#?}", clean.findings);
}

#[test]
fn fingerprints_are_stable_across_unrelated_line_drift() {
    let report = scan_workspace(&["conc003_bad.rs"], "CONC003");
    let fp: Vec<&str> = report.findings.iter().map(|f| f.fingerprint.as_str()).collect();
    assert!(fp.iter().all(|f| f.len() == 16), "{fp:?}");
    // Same file scanned from a copy with lines shifted: the fingerprint
    // must not move (it hashes rule|file|scope|key|ordinal, not the line).
    let src = std::fs::read_to_string(fixtures_root().join("conc003_bad.rs")).expect("fixture");
    let shifted = format!("// shim\n// shim\n// shim\n{src}");
    let dir = std::env::temp_dir().join("crowdkit_lint_fp_test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    std::fs::write(dir.join("conc003_bad.rs"), shifted).expect("write shifted copy");
    let only: BTreeSet<String> = ["CONC003".to_owned()].into();
    let report2 = scan_paths(&dir, &[dir.join("conc003_bad.rs")], &only);
    let fp2: Vec<String> = report2.findings.iter().map(|f| f.fingerprint.clone()).collect();
    assert_eq!(fp, fp2, "fingerprints moved under pure line drift");
}

#[test]
fn baseline_ratchet_absorbs_known_debt_and_fails_on_stale_entries() {
    let mut report = scan_workspace(&["conc003_bad.rs"], "CONC003");
    assert_eq!(report.findings.len(), 2);
    let rows: Vec<(String, String, String, String)> = report
        .findings
        .iter()
        .map(|f| {
            (
                f.fingerprint.clone(),
                f.rule.to_owned(),
                f.file.clone(),
                "acknowledged for the ratchet test".to_owned(),
            )
        })
        .collect();
    let b = baseline::parse(&baseline::render(&rows)).expect("roundtrip");
    apply_baseline(&mut report, &b);
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
    assert_eq!(report.baselined.len(), 2);
    assert!(report.stale_baseline.is_empty());

    // A baseline entry nothing matches is stale debt: the ratchet fails.
    let mut report = scan_workspace(&["conc003_good.rs"], "CONC003");
    let b = baseline::parse(&baseline::render(&rows)).expect("roundtrip");
    apply_baseline(&mut report, &b);
    assert_eq!(report.stale_baseline.len(), 2);
}

#[test]
fn cli_ratchet_writes_and_enforces_a_baseline() {
    let bin = env!("CARGO_BIN_EXE_crowdkit-lint");
    let root = fixtures_root().join("doc_bad");
    let dir = std::env::temp_dir().join("crowdkit_lint_cli_ratchet");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let bl = dir.join("baseline.json");

    // Plain scan fails; --write-baseline records the debt.
    let out = std::process::Command::new(bin)
        .args(["--root"])
        .arg(&root)
        .arg("--write-baseline")
        .arg(&bl)
        .output()
        .expect("run crowdkit-lint");
    assert!(!out.status.success(), "doc_bad has findings");

    // Reasons start as PLACEHOLDER; a human must write real ones.
    let text = std::fs::read_to_string(&bl).expect("baseline written");
    assert!(text.contains("PLACEHOLDER"));
    let text = text.replace(
        "PLACEHOLDER — write why this debt is acknowledged",
        "legacy crate predating the header rule",
    );
    std::fs::write(&bl, &text).expect("edit reasons");

    // With the baseline the same tree passes: no NEW debt.
    let out = std::process::Command::new(bin)
        .args(["--root"])
        .arg(&root)
        .arg("--baseline")
        .arg(&bl)
        .output()
        .expect("run crowdkit-lint");
    assert!(
        out.status.success(),
        "baselined tree must pass: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    // A stale entry (fixed finding still listed) fails the ratchet.
    let stale = text.replace(
        "\"entries\": [",
        "\"entries\": [\n    {\"fingerprint\": \"00000000deadbeef\", \"rule\": \"DOC001\", \
\"file\": \"src/lib.rs\", \"reason\": \"was fixed long ago\"},",
    );
    let stale = stale.replace(
        &format!("\"burn_down\": {}", baseline_len(&text)),
        &format!("\"burn_down\": {}", baseline_len(&text) + 1),
    );
    std::fs::write(&bl, stale).expect("write stale baseline");
    let out = std::process::Command::new(bin)
        .args(["--root"])
        .arg(&root)
        .arg("--baseline")
        .arg(&bl)
        .output()
        .expect("run crowdkit-lint");
    assert!(
        !out.status.success(),
        "stale baseline entries must fail the ratchet: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("STALE"));
}

fn baseline_len(text: &str) -> usize {
    baseline::parse(text).expect("valid baseline").entries.len()
}

#[test]
fn callgraph_stats_are_reported_and_plausible() {
    let report = scan_workspace(&["taint_det002.rs", "taint_det001.rs"], "DET002");
    assert_eq!(report.functions, 6);
    assert!(report.resolution.resolved >= 3, "{:?}", report.resolution);
    // `collect`/`values`/`cloned` etc. land in the extern bucket, never on
    // workspace functions.
    assert!(report.resolution.unresolved_names.contains("values"));
}
