//! Integration tests pinning each rule's behaviour on known-bad and
//! known-good fixture files, the suppression protocol, `#[cfg(test)]`
//! scoping — and the big one: the workspace itself must scan clean.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use crowdkit_lint::{scan, scan_file, Config, Finding};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Scans one fixture with one rule active; returns (kept, suppressed-count).
fn scan_fixture(file: &str, rule: &str) -> (Vec<Finding>, usize) {
    let root = fixtures_root();
    let only: BTreeSet<String> = [rule.to_owned()].into();
    let (kept, suppressed) = scan_file(&root, &root.join(file), &only);
    (kept, suppressed.values().sum())
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn det001_flags_hash_iteration_with_float_accumulation_and_output() {
    let (kept, _) = scan_fixture("det001_bad.rs", "DET001");
    assert_eq!(rules_of(&kept), vec!["DET001", "DET001"]);
    assert_eq!(kept[0].line, 5, "scores.iter() in the float-accumulating fn");
    assert_eq!(kept[1].line, 12, "for … in m in the serializing fn");
}

#[test]
fn det001_accepts_btreemap_and_keyed_lookups() {
    let (kept, _) = scan_fixture("det001_good.rs", "DET001");
    assert!(kept.is_empty(), "unexpected: {kept:?}");
}

#[test]
fn det002_flags_instant_and_systemtime() {
    let (kept, _) = scan_fixture("det002_bad.rs", "DET002");
    assert_eq!(rules_of(&kept), vec!["DET002", "DET002"]);
    assert_eq!((kept[0].line, kept[1].line), (2, 7));
}

#[test]
fn det002_accepts_walltimer_and_wall_field_readers() {
    // WallTimer is the sanctioned clock wrapper, and trace-analysis code
    // that reads recorded `wall_ns` / `*_ns` *fields* (crowdkit-trace's
    // replay attribution) never touches the host clock — neither may trip
    // the rule.
    let (kept, _) = scan_fixture("det002_good.rs", "DET002");
    assert!(kept.is_empty(), "unexpected: {kept:?}");
}

#[test]
fn panic001_flags_unwrap_expect_and_panic() {
    let (kept, _) = scan_fixture("panic001_bad.rs", "PANIC001");
    assert_eq!(rules_of(&kept), vec!["PANIC001", "PANIC001", "PANIC001"]);
    assert_eq!(
        kept.iter().map(|f| f.line).collect::<Vec<_>>(),
        vec![2, 3, 5]
    );
}

#[test]
fn panic001_skips_multiarg_expect_methods_and_test_modules() {
    let (kept, _) = scan_fixture("panic001_good.rs", "PANIC001");
    assert!(kept.is_empty(), "unexpected: {kept:?}");
}

#[test]
fn safety001_requires_a_safety_comment() {
    let (kept, _) = scan_fixture("safety001_bad.rs", "SAFETY001");
    assert_eq!(rules_of(&kept), vec!["SAFETY001"]);
    let (kept, _) = scan_fixture("safety001_good.rs", "SAFETY001");
    assert!(kept.is_empty(), "unexpected: {kept:?}");
}

#[test]
fn doc001_requires_the_crate_root_header() {
    let root = fixtures_root();
    let only: BTreeSet<String> = ["DOC001".to_owned()].into();
    let (kept, _) = scan_file(&root, &root.join("doc_bad/src/lib.rs"), &only);
    assert_eq!(rules_of(&kept), vec!["DOC001", "DOC001", "DOC001"]);
    let (kept, _) = scan_file(&root, &root.join("doc_good/src/lib.rs"), &only);
    assert!(kept.is_empty(), "unexpected: {kept:?}");
}

#[test]
fn doc001_requires_module_docs_on_src_modules() {
    let (kept, _) = scan_fixture("doc_mod/src/bad.rs", "DOC001");
    assert_eq!(rules_of(&kept), vec!["DOC001"]);
    assert!(kept[0].message.contains("module doc"), "{kept:?}");
    let (kept, _) = scan_fixture("doc_mod/src/good.rs", "DOC001");
    assert!(kept.is_empty(), "unexpected: {kept:?}");
    // Files outside src/ trees (tests, fixtures themselves) are exempt.
    let (kept, _) = scan_fixture("det001_good.rs", "DOC001");
    assert!(kept.is_empty(), "unexpected: {kept:?}");
}

#[test]
fn doc001_covers_bin_targets_under_src() {
    // Bench binaries (`src/bin/*.rs`) are src modules like any other: an
    // undocumented main is flagged, and a `//!` header still counts when it
    // follows the `allow-file` suppression line the real binaries open with.
    let (kept, _) = scan_fixture("doc_mod/src/bin/bad_bin.rs", "DOC001");
    assert_eq!(rules_of(&kept), vec!["DOC001"]);
    assert!(kept[0].message.contains("module doc"), "{kept:?}");
    let (kept, _) = scan_fixture("doc_mod/src/bin/good_bin.rs", "DOC001");
    assert!(kept.is_empty(), "unexpected: {kept:?}");
}

#[test]
fn suppressions_need_reasons_and_standalone_covers_the_block() {
    let (kept, suppressed) = scan_fixture("suppress.rs", "PANIC001");
    // Trailing allow (1) + standalone block allow (2 sites) are honoured.
    assert_eq!(suppressed, 3);
    // The reasonless allow suppresses nothing: the unwrap survives and the
    // malformed suppression itself is reported.
    assert_eq!(rules_of(&kept), vec!["PANIC001", "LINT000"]);
    assert_eq!(kept[0].line, 13);
}

#[test]
fn allow_file_covers_every_line() {
    let (kept, suppressed) = scan_fixture("allow_file.rs", "PANIC001");
    assert!(kept.is_empty(), "unexpected: {kept:?}");
    assert_eq!(suppressed, 2);
}

#[test]
fn cfg_test_items_are_exempt_but_library_code_is_not() {
    let (kept, _) = scan_fixture("cfg_test_scope.rs", "PANIC001");
    assert_eq!(rules_of(&kept), vec!["PANIC001"]);
    assert_eq!(kept[0].line, 2, "only the non-test fn is flagged");
}

#[test]
fn binary_exits_nonzero_on_known_bad_sources() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_crowdkit-lint"))
        .arg("--root")
        .arg(fixtures_root().join("doc_bad"))
        .output()
        .expect("run crowdkit-lint");
    assert!(
        !out.status.success(),
        "a tree with findings must fail the scan"
    );
}

/// The acceptance gate: the workspace scans clean modulo the checked-in
/// ratcheted baseline. Any new finding must be fixed, carry a reasoned
/// suppression, or be consciously added to `LINT_BASELINE.json` before
/// this passes again — and fixed debt must be deleted from the baseline
/// (stale entries fail too), as must suppressions that stopped earning
/// their keep.
#[test]
fn workspace_scans_clean() {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the repo root")
        .to_path_buf();
    let mut report = scan(&Config {
        root: repo_root.clone(),
        only_rules: BTreeSet::new(),
    });
    assert!(report.files_scanned > 100, "scan walked the real workspace");
    let baseline_text = std::fs::read_to_string(repo_root.join("LINT_BASELINE.json"))
        .expect("LINT_BASELINE.json is checked in at the repo root");
    let baseline = crowdkit_lint::baseline::parse(&baseline_text).expect("valid baseline");
    crowdkit_lint::engine::apply_baseline(&mut report, &baseline);
    let rendered: Vec<String> = report
        .findings
        .iter()
        .map(|f| format!("{}:{} {} {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(
        report.findings.is_empty(),
        "unsuppressed lint findings:\n{}",
        rendered.join("\n")
    );
    assert!(
        report.stale_baseline.is_empty(),
        "stale baseline entries (delete them and decrement burn_down): {:#?}",
        report.stale_baseline
    );
    let stale: Vec<String> = report
        .stale_suppressions()
        .iter()
        .map(|s| format!("{}:{} — {}", s.file, s.line, s.reason))
        .collect();
    assert!(
        stale.is_empty(),
        "suppressions that no longer suppress anything:\n{}",
        stale.join("\n")
    );
}
