//! Property-based tests for assignment policies: every policy must pick
//! only open tasks, stop exactly when everything is capped, and (for the
//! quality-aware ones) honour its selection criterion.

use crowdkit_assign::{
    AssignState, AssignmentPolicy, EntropyGreedy, ExpectedAccuracyGain, RandomAssign, RoundRobin,
};
use crowdkit_core::metrics::entropy;
use proptest::prelude::*;

/// Builds a state from arbitrary per-task votes under a common cap.
fn state_from(votes: Vec<(u32, u32)>, cap: u32) -> AssignState {
    let mut s = AssignState::new(votes.len(), 2, cap);
    for (t, (no, yes)) in votes.iter().enumerate() {
        for _ in 0..(*no).min(cap) {
            s.record(t, 0);
        }
        for _ in 0..(*yes).min(cap.saturating_sub(*no)) {
            s.record(t, 1);
        }
    }
    s
}

fn policies(seed: u64) -> Vec<Box<dyn AssignmentPolicy>> {
    vec![
        Box::new(RandomAssign::new(seed)),
        Box::new(RoundRobin),
        Box::new(EntropyGreedy),
        Box::new(ExpectedAccuracyGain::default()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Policies only ever select open tasks, and return None exactly when
    /// every task is at its cap.
    #[test]
    fn policies_respect_caps(
        votes in prop::collection::vec((0u32..6, 0u32..6), 1..12),
        cap in 1u32..8,
        seed in 0u64..100,
    ) {
        let s = state_from(votes, cap);
        let any_open = s.open_tasks().next().is_some();
        for mut p in policies(seed) {
            match p.next_task(&s) {
                Some(t) => {
                    prop_assert!(any_open, "{} picked from a fully-capped state", p.name());
                    prop_assert!(t < s.votes.len());
                    prop_assert!(
                        s.count(t) < cap,
                        "{} picked capped task {t}", p.name()
                    );
                }
                None => prop_assert!(!any_open, "{} gave up with open tasks", p.name()),
            }
        }
    }

    /// EntropyGreedy always picks a task whose posterior entropy is maximal
    /// among open tasks.
    #[test]
    fn entropy_greedy_picks_a_max_entropy_task(
        votes in prop::collection::vec((0u32..5, 0u32..5), 1..10),
    ) {
        let s = state_from(votes, 20);
        let mut p = EntropyGreedy;
        if let Some(t) = p.next_task(&s) {
            let chosen = entropy(&s.posterior(t));
            for other in s.open_tasks() {
                prop_assert!(
                    chosen >= entropy(&s.posterior(other)) - 1e-9,
                    "task {t} (H={chosen:.4}) is not maximal"
                );
            }
        }
    }

    /// Round-robin keeps the vote counts balanced: after any number of
    /// steps, max and min task counts differ by at most one.
    #[test]
    fn round_robin_balances_counts(n_tasks in 1usize..10, steps in 0usize..40) {
        let mut s = AssignState::new(n_tasks, 2, u32::MAX);
        let mut p = RoundRobin;
        for _ in 0..steps {
            let t = p.next_task(&s).expect("uncapped tasks stay open");
            s.record(t, 0);
        }
        let counts: Vec<u32> = (0..n_tasks).map(|t| s.count(t)).collect();
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        prop_assert!(max - min <= 1, "unbalanced counts {counts:?}");
    }

    /// RandomAssign with the same seed replays the same choices.
    #[test]
    fn random_assign_is_reproducible(
        votes in prop::collection::vec((0u32..4, 0u32..4), 1..8),
        seed in 0u64..50,
    ) {
        let s = state_from(votes, 10);
        let picks = |seed: u64| -> Vec<Option<usize>> {
            let mut p = RandomAssign::new(seed);
            (0..10).map(|_| p.next_task(&s)).collect()
        };
        prop_assert_eq!(picks(seed), picks(seed));
    }
}
