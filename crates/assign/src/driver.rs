//! Executes an assignment policy against a crowd oracle under a question
//! budget.

use crowdkit_core::error::Result;
use crowdkit_core::response::ResponseMatrix;
use crowdkit_core::task::Task;
use crowdkit_core::traits::CrowdOracle;

use crate::policy::{AssignState, AssignmentPolicy};

/// The result of a budgeted assignment run.
#[derive(Debug, Clone)]
pub struct AssignmentOutcome {
    /// Collected responses, ready for truth inference.
    pub matrix: ResponseMatrix,
    /// Final per-task vote counts (aligned with the input task slice).
    pub votes: Vec<Vec<u32>>,
    /// Answers actually purchased (≤ `budget_questions`).
    pub questions_asked: usize,
}

/// Runs `policy` over `tasks`, buying at most `budget_questions` answers
/// total and at most `max_per_task` per task.
///
/// All tasks must be single-choice over label spaces of the same size.
/// Collection ends when the budget is spent, the policy returns `None`, or
/// the oracle's own budget/pool is exhausted.
pub fn run_assignment<O, P>(
    oracle: &mut O,
    tasks: &[Task],
    policy: &mut P,
    budget_questions: usize,
    max_per_task: u32,
) -> Result<AssignmentOutcome>
where
    O: CrowdOracle + ?Sized,
    P: AssignmentPolicy + ?Sized,
{
    let k = tasks
        .iter()
        .filter_map(Task::num_labels)
        .max()
        .unwrap_or(2);
    let mut state = AssignState::new(tasks.len(), k, max_per_task);
    let mut matrix = ResponseMatrix::new(k);
    let mut asked = 0usize;

    while asked < budget_questions {
        let Some(t) = policy.next_task(&state) else {
            break;
        };
        match oracle.ask_one(&tasks[t]) {
            Ok(answer) => {
                if let Some(label) = answer.value.as_choice() {
                    matrix.push(answer.task, answer.worker, label)?;
                    state.record(t, label);
                    asked += 1;
                }
            }
            Err(e) if e.is_resource_exhaustion() => break,
            Err(e) => return Err(e),
        }
    }

    Ok(AssignmentOutcome {
        matrix,
        votes: state.votes,
        questions_asked: asked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{EntropyGreedy, RoundRobin};
    use crowdkit_core::answer::{Answer, AnswerValue};
    use crowdkit_core::error::CrowdError;
    use crowdkit_core::ids::{TaskId, WorkerId};

    struct TruthfulOracle {
        next_worker: u64,
        cap: u64,
        delivered: u64,
    }

    impl CrowdOracle for TruthfulOracle {
        fn ask_one(&mut self, task: &Task) -> Result<Answer> {
            if self.delivered >= self.cap {
                return Err(CrowdError::BudgetExhausted {
                    requested: 1.0,
                    remaining: 0.0,
                });
            }
            self.delivered += 1;
            let w = WorkerId::new(self.next_worker);
            self.next_worker += 1;
            Ok(Answer::bare(
                task.id,
                w,
                task.truth.clone().expect("tasks carry truth"),
            ))
        }
        fn remaining_budget(&self) -> Option<f64> {
            Some((self.cap - self.delivered) as f64)
        }
        fn answers_delivered(&self) -> u64 {
            self.delivered
        }
    }

    fn tasks(n: usize) -> Vec<Task> {
        (0..n)
            .map(|i| {
                Task::binary(TaskId::new(i as u64), format!("t{i}"))
                    .with_truth(AnswerValue::Choice(1))
            })
            .collect()
    }

    #[test]
    fn budget_caps_total_questions() {
        let ts = tasks(5);
        let mut oracle = TruthfulOracle {
            next_worker: 0,
            cap: 1000,
            delivered: 0,
        };
        let out = run_assignment(&mut oracle, &ts, &mut RoundRobin, 7, 10).unwrap();
        assert_eq!(out.questions_asked, 7);
        assert_eq!(out.matrix.num_observations(), 7);
    }

    #[test]
    fn per_task_cap_is_respected() {
        let ts = tasks(2);
        let mut oracle = TruthfulOracle {
            next_worker: 0,
            cap: 1000,
            delivered: 0,
        };
        let out = run_assignment(&mut oracle, &ts, &mut RoundRobin, 100, 3).unwrap();
        // 2 tasks × cap 3 = 6 questions, then the policy returns None.
        assert_eq!(out.questions_asked, 6);
        assert!(out.votes.iter().all(|v| v.iter().sum::<u32>() == 3));
    }

    #[test]
    fn oracle_exhaustion_ends_gracefully() {
        let ts = tasks(5);
        let mut oracle = TruthfulOracle {
            next_worker: 0,
            cap: 3,
            delivered: 0,
        };
        let out = run_assignment(&mut oracle, &ts, &mut EntropyGreedy, 100, 10).unwrap();
        assert_eq!(out.questions_asked, 3);
    }

    #[test]
    fn votes_align_with_task_slice_order() {
        let ts = tasks(3);
        let mut oracle = TruthfulOracle {
            next_worker: 0,
            cap: 1000,
            delivered: 0,
        };
        let out = run_assignment(&mut oracle, &ts, &mut RoundRobin, 6, 10).unwrap();
        for v in &out.votes {
            assert_eq!(v[1], 2, "each task got two truthful '1' votes");
        }
    }
}
