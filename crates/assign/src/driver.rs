//! Executes an assignment policy against a crowd oracle under a question
//! budget.

use crowdkit_core::ask::AskRequest;
use crowdkit_core::error::Result;
use crowdkit_core::response::ResponseMatrix;
use crowdkit_core::task::Task;
use crowdkit_core::traits::CrowdOracle;
use crowdkit_metrics as metrics;
use crowdkit_obs::{self as obs, Event};
use crowdkit_provenance as prov;

use crate::policy::{AssignState, AssignmentPolicy};

/// The result of a budgeted assignment run.
#[derive(Debug, Clone)]
pub struct AssignmentOutcome {
    /// Collected responses, ready for truth inference.
    pub matrix: ResponseMatrix,
    /// Final per-task vote counts (aligned with the input task slice).
    pub votes: Vec<Vec<u32>>,
    /// Answers actually purchased (≤ `budget_questions`).
    pub questions_asked: usize,
}

/// Runs `policy` over `tasks`, buying at most `budget_questions` answers
/// total and at most `max_per_task` per task.
///
/// All tasks must be single-choice over label spaces of the same size.
/// Collection ends when the budget is spent, the policy returns `None`, or
/// the oracle's own budget/pool is exhausted.
///
/// Assignments are bought in waves: the policy is consulted repeatedly
/// (with in-flight asks visible via [`AssignState::count`]) to build a
/// wave of at most `tasks.len()` independent assignments, which goes to
/// the platform as one batched request. A wave costs one round of crowd
/// latency instead of one per question, and the policy's adaptivity is
/// preserved between waves.
pub fn run_assignment<O, P>(
    oracle: &O,
    tasks: &[Task],
    policy: &mut P,
    budget_questions: usize,
    max_per_task: u32,
) -> Result<AssignmentOutcome>
where
    O: CrowdOracle + ?Sized,
    P: AssignmentPolicy + ?Sized,
{
    let k = tasks
        .iter()
        .filter_map(Task::num_labels)
        .max()
        .unwrap_or(2);
    let mut state = AssignState::new(tasks.len(), k, max_per_task);
    let mut matrix = ResponseMatrix::new(k);
    let mut asked = 0usize;
    let rec = obs::current();
    let m = metrics::current();
    let mut waves = 0u64;
    // Cost ledger: per-task / per-worker spend attribution, booked from
    // this sequential delivery loop and flushed after the run. Only kept
    // while a provenance scope wants detail events.
    let mut ledger = prov::capture_detail().then(prov::SpendLedger::new);

    while asked < budget_questions {
        let wave_cap = (budget_questions - asked).min(tasks.len().max(1));
        let mut wave: Vec<usize> = Vec::with_capacity(wave_cap);
        while wave.len() < wave_cap {
            let Some(t) = policy.next_task(&state) else {
                break;
            };
            state.note_pending(t);
            wave.push(t);
        }
        if wave.is_empty() {
            break;
        }
        let reqs: Vec<AskRequest<'_>> =
            wave.iter().map(|&t| AskRequest::new(&tasks[t])).collect();
        let outcomes = oracle.ask_batch(&reqs)?;
        state.clear_pending();
        let asked_before = asked;
        let mut exhausted = false;
        for (&t, out) in wave.iter().zip(&outcomes) {
            match &out.shortfall {
                Some(e) if e.is_resource_exhaustion() => exhausted = true,
                Some(e) => return Err(e.clone()),
                None => {}
            }
            for answer in &out.answers {
                if let Some(label) = answer.value.as_choice() {
                    matrix.push(answer.task, answer.worker, label)?;
                    state.record(t, label);
                    asked += 1;
                    if let Some(ledger) = &mut ledger {
                        ledger.note(answer.task.0, answer.worker.0, answer.cost);
                    }
                }
            }
        }
        m.assign.waves.inc();
        m.assign.wave_size.record(wave.len() as u64);
        m.assign.questions.add((asked - asked_before) as u64);
        if exhausted {
            m.assign.exhausted.inc();
        }
        if rec.enabled() {
            rec.record(
                Event::new("assign.wave")
                    .u64("wave", waves)
                    .u64("requested", wave.len() as u64)
                    .u64("delivered", (asked - asked_before) as u64)
                    .u64("exhausted", u64::from(exhausted)),
            );
        }
        waves += 1;
        if exhausted {
            break;
        }
    }
    if rec.enabled() {
        rec.record(
            Event::new("assign.run")
                .u64("tasks", tasks.len() as u64)
                .u64("waves", waves)
                .u64("questions", asked as u64),
        );
    }
    if let Some(ledger) = &ledger {
        ledger.emit();
    }

    Ok(AssignmentOutcome {
        matrix,
        votes: state.votes,
        questions_asked: asked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{EntropyGreedy, RoundRobin};
    use crowdkit_core::answer::{Answer, AnswerValue};
    use crowdkit_core::error::CrowdError;
    use crowdkit_core::ids::{TaskId, WorkerId};

    struct TruthfulOracle {
        cap: u64,
        delivered: std::cell::Cell<u64>,
    }

    impl TruthfulOracle {
        fn new(cap: u64) -> Self {
            Self {
                cap,
                delivered: std::cell::Cell::new(0),
            }
        }
    }

    impl CrowdOracle for TruthfulOracle {
        fn ask_one(&self, task: &Task) -> Result<Answer> {
            if self.delivered.get() >= self.cap {
                return Err(CrowdError::BudgetExhausted {
                    requested: 1.0,
                    remaining: 0.0,
                });
            }
            let w = WorkerId::new(self.delivered.get());
            self.delivered.set(self.delivered.get() + 1);
            Ok(Answer::bare(
                task.id,
                w,
                task.truth.clone().expect("tasks carry truth"),
            ))
        }
        fn remaining_budget(&self) -> Option<f64> {
            Some((self.cap - self.delivered.get()) as f64)
        }
        fn answers_delivered(&self) -> u64 {
            self.delivered.get()
        }
    }

    fn tasks(n: usize) -> Vec<Task> {
        (0..n)
            .map(|i| {
                Task::binary(TaskId::new(i as u64), format!("t{i}"))
                    .with_truth(AnswerValue::Choice(1))
            })
            .collect()
    }

    #[test]
    fn budget_caps_total_questions() {
        let ts = tasks(5);
        let oracle = TruthfulOracle::new(1000);
        let out = run_assignment(&oracle, &ts, &mut RoundRobin, 7, 10).unwrap();
        assert_eq!(out.questions_asked, 7);
        assert_eq!(out.matrix.num_observations(), 7);
    }

    #[test]
    fn per_task_cap_is_respected() {
        let ts = tasks(2);
        let oracle = TruthfulOracle::new(1000);
        let out = run_assignment(&oracle, &ts, &mut RoundRobin, 100, 3).unwrap();
        // 2 tasks × cap 3 = 6 questions, then the policy returns None.
        assert_eq!(out.questions_asked, 6);
        assert!(out.votes.iter().all(|v| v.iter().sum::<u32>() == 3));
    }

    #[test]
    fn oracle_exhaustion_ends_gracefully() {
        let ts = tasks(5);
        let oracle = TruthfulOracle::new(3);
        let out = run_assignment(&oracle, &ts, &mut EntropyGreedy, 100, 10).unwrap();
        assert_eq!(out.questions_asked, 3);
    }

    #[test]
    fn votes_align_with_task_slice_order() {
        let ts = tasks(3);
        let oracle = TruthfulOracle::new(1000);
        let out = run_assignment(&oracle, &ts, &mut RoundRobin, 6, 10).unwrap();
        for v in &out.votes {
            assert_eq!(v[1], 2, "each task got two truthful '1' votes");
        }
    }
}
