//! # crowdkit-assign
//!
//! Task assignment and budget allocation: *which task should the next
//! answer be bought for?*
//!
//! Under a fixed budget, accuracy is decided by where the answers go.
//! The tutorial's task-assignment axis contrasts static redundancy
//! (everything gets `k` answers) with quality-aware policies that spend the
//! marginal answer where it most improves expected accuracy (QASCA-style).
//! This crate implements:
//!
//! * [`policy::RandomAssign`] — uniform random among unfinished tasks (the
//!   platform default, the baseline in every comparison);
//! * [`policy::RoundRobin`] — equalized redundancy;
//! * [`policy::EntropyGreedy`] — uncertainty sampling: buy for the task
//!   whose current vote posterior has the highest entropy;
//! * [`policy::ExpectedAccuracyGain`] — QASCA-flavoured: buy for the task
//!   with the largest expected gain in posterior accuracy from one more
//!   answer under an assumed worker accuracy.
//!
//! [`driver::run_assignment`] executes any policy against a
//! [`crowdkit_core::traits::CrowdOracle`] under a question budget and
//! returns the collected matrix, ready for truth inference. Experiment E8
//! sweeps the policies under identical budgets.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod driver;
pub mod policy;

pub use driver::{run_assignment, AssignmentOutcome};
pub use policy::{
    AssignState, AssignmentPolicy, EntropyGreedy, ExpectedAccuracyGain, RandomAssign, RoundRobin,
};
