//! Assignment policies.

use crowdkit_core::metrics::entropy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The observable state a policy decides from: per-task vote counts plus
/// the per-task answer cap.
#[derive(Debug, Clone)]
pub struct AssignState {
    /// `votes[t][l]` = answers so far labelling task `t` as `l`.
    pub votes: Vec<Vec<u32>>,
    /// Answers requested but not yet received, per task. The batched
    /// driver marks a task pending while assembling a wave so a policy
    /// called repeatedly does not pile the whole wave onto one task.
    pub pending: Vec<u32>,
    /// Hard per-task cap on answers (platforms bound assignments per HIT).
    pub max_answers_per_task: u32,
}

impl AssignState {
    /// Fresh state for `n_tasks` tasks over `k` labels.
    pub fn new(n_tasks: usize, k: usize, max_answers_per_task: u32) -> Self {
        Self {
            votes: vec![vec![0u32; k]; n_tasks],
            pending: vec![0u32; n_tasks],
            max_answers_per_task,
        }
    }

    /// Total answers task `t` has received or has in flight.
    pub fn count(&self, t: usize) -> u32 {
        self.votes[t].iter().sum::<u32>() + self.pending[t]
    }

    /// Tasks that can still receive answers.
    pub fn open_tasks(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.votes.len()).filter(move |&t| self.count(t) < self.max_answers_per_task)
    }

    /// Records an answer.
    pub fn record(&mut self, t: usize, label: u32) {
        self.votes[t][label as usize] += 1;
    }

    /// Marks one in-flight ask for task `t`.
    pub fn note_pending(&mut self, t: usize) {
        self.pending[t] += 1;
    }

    /// Clears all in-flight marks (the wave came back).
    pub fn clear_pending(&mut self) {
        self.pending.iter_mut().for_each(|p| *p = 0);
    }

    /// Smoothed posterior over labels for task `t` (votes + 1 Laplace).
    pub fn posterior(&self, t: usize) -> Vec<f64> {
        let total: u32 = self.votes[t].iter().sum();
        let k = self.votes[t].len() as f64;
        self.votes[t]
            .iter()
            .map(|&v| (v as f64 + 1.0) / (total as f64 + k))
            .collect()
    }
}

/// Chooses the next task to buy an answer for.
pub trait AssignmentPolicy {
    /// Short name for experiment tables.
    fn name(&self) -> &'static str;

    /// The task index to ask about next, or `None` when every task is at
    /// its cap (or the policy decides to stop).
    fn next_task(&mut self, state: &AssignState) -> Option<usize>;
}

/// Uniform random among open tasks.
#[derive(Debug)]
pub struct RandomAssign {
    rng: StdRng,
}

impl RandomAssign {
    /// Creates the policy with a fixed seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl AssignmentPolicy for RandomAssign {
    fn name(&self) -> &'static str {
        "random"
    }

    fn next_task(&mut self, state: &AssignState) -> Option<usize> {
        let open: Vec<usize> = state.open_tasks().collect();
        if open.is_empty() {
            None
        } else {
            Some(open[self.rng.gen_range(0..open.len())])
        }
    }
}

/// Evens out redundancy: always the open task with the fewest answers
/// (ties → smallest index).
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin;

impl AssignmentPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round_robin"
    }

    fn next_task(&mut self, state: &AssignState) -> Option<usize> {
        state.open_tasks().min_by_key(|&t| (state.count(t), t))
    }
}

/// Uncertainty sampling: the open task with the highest posterior entropy.
///
/// Unanswered tasks have maximal entropy and get served first; once every
/// task has one answer, budget flows to the contested ones.
#[derive(Debug, Clone, Copy, Default)]
pub struct EntropyGreedy;

impl AssignmentPolicy for EntropyGreedy {
    fn name(&self) -> &'static str {
        "entropy"
    }

    fn next_task(&mut self, state: &AssignState) -> Option<usize> {
        state
            .open_tasks()
            .map(|t| (t, entropy(&state.posterior(t))))
            // Ties → fewest answers, then smallest index, for determinism.
            .max_by(|(ta, ea), (tb, eb)| {
                ea.total_cmp(eb)
                    .then_with(|| state.count(*tb).cmp(&state.count(*ta)))
                    .then_with(|| tb.cmp(ta))
            })
            .map(|(t, _)| t)
    }
}

/// QASCA-flavoured expected accuracy gain.
///
/// For each open task compute the current max-posterior `p` and the
/// *expected* max-posterior after one more answer, where the next answer is
/// simulated under the assumed worker accuracy: with probability derived
/// from the current posterior the answer supports each label, and the
/// posterior is updated by Bayes with the one-coin likelihood. The policy
/// buys for the task with the largest expected improvement.
#[derive(Debug, Clone, Copy)]
pub struct ExpectedAccuracyGain {
    /// Assumed worker accuracy (one-coin), e.g. 0.75.
    pub worker_accuracy: f64,
}

impl Default for ExpectedAccuracyGain {
    fn default() -> Self {
        Self {
            worker_accuracy: 0.75,
        }
    }
}

impl ExpectedAccuracyGain {
    /// Expected max-posterior after one more simulated answer on a task
    /// with the given posterior.
    fn expected_after_one(&self, post: &[f64]) -> f64 {
        let k = post.len();
        let p = self.worker_accuracy.clamp(1e-6, 1.0 - 1e-6);
        let wrong = (1.0 - p) / (k as f64 - 1.0).max(1.0);
        let mut expected = 0.0;
        // The next answer is `a` with probability Σ_t post[t]·P(a|t).
        for a in 0..k {
            let mut prob_a = 0.0;
            let mut updated: Vec<f64> = Vec::with_capacity(k);
            for (t, &pt) in post.iter().enumerate() {
                let like = if t == a { p } else { wrong };
                prob_a += pt * like;
                updated.push(pt * like);
            }
            if prob_a <= 0.0 {
                continue;
            }
            let max_updated = updated.iter().cloned().fold(0.0, f64::max) / prob_a;
            expected += prob_a * max_updated;
        }
        expected
    }
}

impl AssignmentPolicy for ExpectedAccuracyGain {
    fn name(&self) -> &'static str {
        "expected_gain"
    }

    fn next_task(&mut self, state: &AssignState) -> Option<usize> {
        state
            .open_tasks()
            .map(|t| {
                let post = state.posterior(t);
                let current = post.iter().cloned().fold(0.0, f64::max);
                let gain = self.expected_after_one(&post) - current;
                (t, gain)
            })
            .max_by(|(ta, ga), (tb, gb)| {
                ga.total_cmp(gb)
                    .then_with(|| state.count(*tb).cmp(&state.count(*ta)))
                    .then_with(|| tb.cmp(ta))
            })
            .map(|(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_tracks_counts_and_caps() {
        let mut s = AssignState::new(3, 2, 2);
        assert_eq!(s.open_tasks().count(), 3);
        s.record(0, 1);
        s.record(0, 1);
        assert_eq!(s.count(0), 2);
        assert_eq!(s.open_tasks().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn posterior_is_laplace_smoothed() {
        let mut s = AssignState::new(1, 2, 10);
        assert_eq!(s.posterior(0), vec![0.5, 0.5]);
        s.record(0, 1);
        let p = s.posterior(0);
        assert!((p[1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn round_robin_equalizes() {
        let mut s = AssignState::new(3, 2, 5);
        let mut p = RoundRobin;
        let mut order = Vec::new();
        for _ in 0..6 {
            let t = p.next_task(&s).unwrap();
            order.push(t);
            s.record(t, 0);
        }
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_stops_when_everything_capped() {
        let mut s = AssignState::new(2, 2, 1);
        let mut p = RoundRobin;
        s.record(0, 0);
        s.record(1, 0);
        assert_eq!(p.next_task(&s), None);
    }

    #[test]
    fn entropy_greedy_prefers_the_contested_task() {
        let mut s = AssignState::new(2, 2, 10);
        // Task 0: 3-0 (confident). Task 1: 2-2 (contested).
        s.record(0, 0);
        s.record(0, 0);
        s.record(0, 0);
        s.record(1, 0);
        s.record(1, 1);
        s.record(1, 0);
        s.record(1, 1);
        let mut p = EntropyGreedy;
        assert_eq!(p.next_task(&s), Some(1));
    }

    #[test]
    fn entropy_greedy_serves_unanswered_tasks_first() {
        let mut s = AssignState::new(3, 2, 10);
        s.record(0, 0);
        s.record(2, 1);
        let mut p = EntropyGreedy;
        assert_eq!(p.next_task(&s), Some(1), "fresh task has max entropy");
    }

    #[test]
    fn expected_gain_prefers_contested_over_settled() {
        let mut s = AssignState::new(2, 2, 10);
        // Task 0 settled 4-0; task 1 split 2-2.
        for _ in 0..4 {
            s.record(0, 0);
        }
        s.record(1, 0);
        s.record(1, 1);
        s.record(1, 0);
        s.record(1, 1);
        let mut p = ExpectedAccuracyGain::default();
        assert_eq!(p.next_task(&s), Some(1));
    }

    #[test]
    fn expected_gain_is_nonnegative_math() {
        let p = ExpectedAccuracyGain {
            worker_accuracy: 0.8,
        };
        for post in [vec![0.5, 0.5], vec![0.9, 0.1], vec![0.34, 0.33, 0.33]] {
            let before = post.iter().cloned().fold(0.0, f64::max);
            let after = p.expected_after_one(&post);
            assert!(
                after >= before - 1e-9,
                "one more informative answer cannot reduce expected max-posterior: {before} → {after}"
            );
        }
    }

    #[test]
    fn random_assign_is_deterministic_per_seed_and_respects_caps() {
        let s = AssignState::new(5, 2, 3);
        let pick = |seed: u64| -> Vec<usize> {
            let mut p = RandomAssign::new(seed);
            (0..10).filter_map(|_| p.next_task(&s)).collect()
        };
        assert_eq!(pick(1), pick(1));
        let mut s2 = AssignState::new(2, 2, 1);
        s2.record(0, 0);
        let mut p = RandomAssign::new(0);
        for _ in 0..10 {
            assert_eq!(p.next_task(&s2), Some(1), "task 0 is capped");
        }
    }
}
