//! Property-based tests for crowdkit-core invariants.

use crowdkit_core::budget::{Budget, CostLedger};
use crowdkit_core::ids::{TaskId, WorkerId};
use crowdkit_core::metrics::{
    accuracy, entropy, js_divergence, kendall_tau, majority, median, pairwise_cluster_f1,
};
use crowdkit_core::response::ResponseMatrix;
use crowdkit_core::traits::InferenceResult;
use proptest::prelude::*;

/// A synthetic result whose per-task confidence is exactly `confs[t]`
/// (chosen label 0, remaining mass on label 1).
fn result_with_confidences(confs: &[f64]) -> InferenceResult {
    InferenceResult {
        labels: vec![0; confs.len()],
        posteriors: confs.iter().map(|&c| vec![c, 1.0 - c]).collect(),
        worker_quality: None,
        iterations: 1,
        converged: true,
    }
}

proptest! {
    #[test]
    fn accuracy_is_a_probability(pairs in prop::collection::vec((0u8..4, 0u8..4), 1..100)) {
        let (pred, truth): (Vec<u8>, Vec<u8>) = pairs.into_iter().unzip();
        let a = accuracy(&pred, &truth);
        prop_assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn accuracy_of_identical_slices_is_one(xs in prop::collection::vec(0u8..10, 1..100)) {
        prop_assert_eq!(accuracy(&xs, &xs), 1.0);
    }

    #[test]
    fn kendall_tau_bounded_and_symmetric_under_reversal(
        scores in prop::collection::vec(-1000i32..1000, 2..40)
    ) {
        let a: Vec<f64> = scores.iter().map(|&x| x as f64).collect();
        let rev: Vec<f64> = a.iter().map(|x| -x).collect();
        let tau = kendall_tau(&a, &a);
        let tau_rev = kendall_tau(&a, &rev);
        prop_assert!((-1.0..=1.0).contains(&tau));
        prop_assert!((-1.0..=1.0).contains(&tau_rev));
        // tau(a, a) = 1 unless everything ties; reversal negates.
        prop_assert!((tau + tau_rev).abs() < 1e-9, "tau {tau} vs reversed {tau_rev}");
    }

    #[test]
    fn cluster_f1_perfect_for_identical_labelings(
        labels in prop::collection::vec(0usize..5, 2..30)
    ) {
        let pr = pairwise_cluster_f1(&labels, &labels);
        prop_assert_eq!(pr.fp, 0);
        prop_assert_eq!(pr.fn_, 0);
    }

    #[test]
    fn entropy_nonnegative_and_maximal_for_uniform(k in 2usize..12) {
        let uniform = vec![1.0; k];
        let h_uniform = entropy(&uniform);
        prop_assert!((h_uniform - (k as f64).ln()).abs() < 1e-9);
        let mut peaked = vec![0.01; k];
        peaked[0] = 10.0;
        let h_peaked = entropy(&peaked);
        prop_assert!(h_peaked >= 0.0);
        prop_assert!(h_peaked < h_uniform);
    }

    #[test]
    fn js_divergence_symmetric_nonnegative_bounded(
        p in prop::collection::vec(0.001f64..10.0, 2..8),
    ) {
        let q: Vec<f64> = p.iter().rev().cloned().collect();
        let d1 = js_divergence(&p, &q);
        let d2 = js_divergence(&q, &p);
        prop_assert!((d1 - d2).abs() < 1e-9);
        prop_assert!(d1 >= -1e-12);
        prop_assert!(d1 <= (2.0f64).ln() + 1e-9);
        prop_assert!(js_divergence(&p, &p).abs() < 1e-12);
    }

    #[test]
    fn majority_returns_an_element_with_max_count(xs in prop::collection::vec(0u8..5, 1..60)) {
        let m = majority(&xs).unwrap();
        let count = |v: u8| xs.iter().filter(|&&x| x == v).count();
        let max = (0u8..5).map(count).max().unwrap();
        prop_assert_eq!(count(m), max);
    }

    #[test]
    fn median_lies_within_range(xs in prop::collection::vec(-1e6f64..1e6, 1..80)) {
        let m = median(&xs);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo && m <= hi);
    }

    #[test]
    fn budget_never_overspends(
        limit in 0.0f64..100.0,
        debits in prop::collection::vec(0.0f64..10.0, 0..50)
    ) {
        let mut b = Budget::new(limit);
        for d in debits {
            let _ = b.debit(d);
            prop_assert!(b.spent() <= b.limit() + 1e-6, "spent {} limit {}", b.spent(), b.limit());
            prop_assert!(b.remaining() >= 0.0);
        }
    }

    #[test]
    fn ledger_totals_are_sums(
        entries in prop::collection::vec((0usize..4, 0.0f64..10.0), 0..60)
    ) {
        let cats = ["a", "b", "c", "d"];
        let mut l = CostLedger::new();
        let mut expect_total = 0.0;
        for (c, amt) in &entries {
            l.record(cats[*c], *amt);
            expect_total += amt;
        }
        prop_assert!((l.grand_total() - expect_total).abs() < 1e-9);
        prop_assert_eq!(l.grand_count(), entries.len() as u64);
    }

    #[test]
    fn response_matrix_groupings_are_consistent(
        obs in prop::collection::vec((0u64..20, 0u64..10, 0u32..3), 1..200)
    ) {
        let mut m = ResponseMatrix::new(3);
        for (t, w, l) in &obs {
            m.push(TaskId::new(*t), WorkerId::new(*w), *l).unwrap();
        }
        prop_assert_eq!(m.num_observations(), obs.len());
        // Per-task and per-worker partitions cover every observation once.
        let by_task: usize = (0..m.num_tasks()).map(|t| m.observations_for_task(t).count()).sum();
        let by_worker: usize = (0..m.num_workers()).map(|w| m.observations_by_worker(w).count()).sum();
        prop_assert_eq!(by_task, obs.len());
        prop_assert_eq!(by_worker, obs.len());
        // Vote counts tally to the observation count.
        let votes: u32 = m.vote_counts().iter().flatten().sum();
        prop_assert_eq!(votes as usize, obs.len());
        // Ids round-trip through dense indices.
        for t in 0..m.num_tasks() {
            prop_assert_eq!(m.task_index(m.task_id(t)), Some(t));
        }
    }

    #[test]
    fn select_confident_at_tau_zero_selects_everything(
        confs in prop::collection::vec(0.0f64..=1.0, 1..60)
    ) {
        let r = result_with_confidences(&confs);
        // Every posterior entry is >= 0, so tau = 0 can exclude nothing.
        prop_assert_eq!(r.select_confident(0.0).len(), confs.len());
        prop_assert_eq!(r.coverage(0.0), 1.0);
    }

    #[test]
    fn coverage_is_monotone_in_tau_and_matches_selection(
        confs in prop::collection::vec(0.0f64..=1.0, 1..60),
        taus in prop::collection::vec(0.0f64..=1.0, 2..10)
    ) {
        let r = result_with_confidences(&confs);
        let mut taus = taus;
        taus.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev_cov = f64::INFINITY;
        for &tau in &taus {
            let sel = r.select_confident(tau);
            let cov = r.coverage(tau);
            prop_assert!((cov - sel.len() as f64 / confs.len() as f64).abs() < 1e-12);
            prop_assert!(cov <= prev_cov, "coverage must not grow as tau rises");
            // Selection is exactly the >= tau set, indices in order.
            let expect: Vec<usize> =
                (0..confs.len()).filter(|&t| confs[t] >= tau).collect();
            prop_assert_eq!(sel, expect);
            prev_cov = cov;
        }
    }

    #[test]
    fn posteriors_stay_nan_free_under_selection(
        confs in prop::collection::vec(0.0f64..=1.0, 1..60),
        tau in 0.0f64..=1.0
    ) {
        let r = result_with_confidences(&confs);
        for &t in &r.select_confident(tau) {
            prop_assert!(r.confidence(t).is_finite());
            prop_assert!(r.posteriors[t].iter().all(|p| p.is_finite()));
        }
    }
}

#[test]
fn select_confident_keeps_exact_boundary_ties() {
    // Confidence exactly equal to tau must be selected (>=, not >).
    let r = result_with_confidences(&[0.5, 0.5 - 1e-12, 0.5 + 1e-12, 0.9]);
    assert_eq!(r.select_confident(0.5), vec![0, 2, 3]);
    assert_eq!(r.coverage(0.5), 0.75);
    // tau = 1.0 keeps only fully-certain tasks.
    let certain = result_with_confidences(&[1.0, 0.999, 1.0]);
    assert_eq!(certain.select_confident(1.0), vec![0, 2]);
}

#[test]
fn coverage_of_empty_result_is_zero_not_nan() {
    let r = result_with_confidences(&[]);
    assert_eq!(r.coverage(0.0), 0.0);
    assert_eq!(r.coverage(1.0), 0.0);
    assert!(r.select_confident(0.0).is_empty());
}
