//! The task model.
//!
//! A [`Task`] is one question posed to the crowd. Its [`TaskKind`] dictates
//! the shape of valid answers and how simulated workers generate them.
//!
//! ## Ground truth
//!
//! For *simulation and evaluation*, a task may carry its latent ground truth
//! in [`Task::truth`]. Algorithms must never read it (they receive tasks
//! through interfaces that do not expose it); the platform simulator uses it
//! to generate realistic worker answers, and the experiment harness uses it
//! to score results. This is the standard device for reproducing published
//! crowdsourcing evaluations without live workers.

use crate::answer::AnswerValue;
use crate::ids::{ItemId, TaskId};
use crate::label::LabelSpace;

/// The kind of question a task asks, which constrains answer values.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskKind {
    /// Pick one label from a categorical space ("is this spam?", "which
    /// category?"). Answers are [`AnswerValue::Choice`].
    SingleChoice {
        /// The labels to choose from.
        labels: LabelSpace,
    },
    /// Provide a number within `[min, max]` ("how many people are in this
    /// photo?"). Answers are [`AnswerValue::Number`].
    Numeric {
        /// Smallest admissible value.
        min: f64,
        /// Largest admissible value.
        max: f64,
    },
    /// Provide free text ("what is the CEO's name?"). Answers are
    /// [`AnswerValue::Text`].
    OpenText,
    /// Compare two items and say which ranks higher ("which photo is
    /// clearer?"). Answers are [`AnswerValue::Prefer`].
    Pairwise {
        /// Left item under comparison.
        left: ItemId,
        /// Right item under comparison.
        right: ItemId,
    },
    /// Enumerate items from an open world ("name US states"). Answers are
    /// [`AnswerValue::Items`].
    Collection,
    /// Fill one missing cell of a record ("the capital of France is ___").
    /// Answers are [`AnswerValue::Text`].
    Fill {
        /// The attribute (column) being filled.
        attribute: String,
    },
}

impl TaskKind {
    /// Short, stable name used in cost models and logs.
    pub fn name(&self) -> &'static str {
        match self {
            TaskKind::SingleChoice { .. } => "single_choice",
            TaskKind::Numeric { .. } => "numeric",
            TaskKind::OpenText => "open_text",
            TaskKind::Pairwise { .. } => "pairwise",
            TaskKind::Collection => "collection",
            TaskKind::Fill { .. } => "fill",
        }
    }

    /// True if `value` is a structurally valid answer for this kind
    /// (variant matches and any range/label constraints hold).
    pub fn accepts(&self, value: &AnswerValue) -> bool {
        match (self, value) {
            (TaskKind::SingleChoice { labels }, AnswerValue::Choice(c)) => labels.contains(*c),
            (TaskKind::Numeric { min, max }, AnswerValue::Number(x)) => {
                x.is_finite() && *x >= *min && *x <= *max
            }
            (TaskKind::OpenText, AnswerValue::Text(_)) => true,
            (TaskKind::Pairwise { .. }, AnswerValue::Prefer(_)) => true,
            (TaskKind::Collection, AnswerValue::Items(_)) => true,
            (TaskKind::Fill { .. }, AnswerValue::Text(_)) => true,
            _ => false,
        }
    }
}

/// One question posed to the crowd.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Unique identifier.
    pub id: TaskId,
    /// What is being asked.
    pub kind: TaskKind,
    /// Human-readable prompt shown to workers (and useful in logs).
    pub prompt: String,
    /// Intrinsic difficulty in `[0, 1]`; `0` = trivially easy, `1` = very
    /// hard. Difficulty-sensitive worker models (GLAD-style) use this; flat
    /// models ignore it.
    pub difficulty: f64,
    /// Latent ground truth for simulation/evaluation; see module docs.
    pub truth: Option<AnswerValue>,
}

impl Task {
    /// Creates a task with default difficulty (0.5) and no ground truth.
    pub fn new(id: TaskId, kind: TaskKind, prompt: impl Into<String>) -> Self {
        Self {
            id,
            kind,
            prompt: prompt.into(),
            difficulty: 0.5,
            truth: None,
        }
    }

    /// Sets the latent ground truth (builder style).
    ///
    /// # Panics
    /// Panics in debug builds if `truth` is not a valid answer for the
    /// task's kind; a simulation seeded with ill-typed truth would produce
    /// ill-typed answers everywhere downstream.
    pub fn with_truth(mut self, truth: AnswerValue) -> Self {
        debug_assert!(
            self.kind.accepts(&truth),
            "ground truth {truth:?} is not a valid answer for task kind {}",
            self.kind.name()
        );
        self.truth = Some(truth);
        self
    }

    /// Sets the difficulty (builder style), clamped to `[0, 1]`.
    pub fn with_difficulty(mut self, difficulty: f64) -> Self {
        self.difficulty = difficulty.clamp(0.0, 1.0);
        self
    }

    /// Number of labels if this is a single-choice task, else `None`.
    pub fn num_labels(&self) -> Option<usize> {
        match &self.kind {
            TaskKind::SingleChoice { labels } => Some(labels.len()),
            _ => None,
        }
    }
}

/// Convenience constructors for the common task shapes.
impl Task {
    /// A binary yes/no task.
    pub fn binary(id: TaskId, prompt: impl Into<String>) -> Self {
        Task::new(
            id,
            TaskKind::SingleChoice {
                labels: LabelSpace::binary(),
            },
            prompt,
        )
    }

    /// A k-way classification task over an anonymous label space.
    pub fn multiclass(id: TaskId, k: usize, prompt: impl Into<String>) -> Self {
        Task::new(
            id,
            TaskKind::SingleChoice {
                labels: LabelSpace::anonymous(k),
            },
            prompt,
        )
    }

    /// A pairwise comparison task between two items.
    pub fn pairwise(id: TaskId, left: ItemId, right: ItemId) -> Self {
        Task::new(
            id,
            TaskKind::Pairwise { left, right },
            format!("compare {left} vs {right}"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::Preference;

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(
            TaskKind::SingleChoice {
                labels: LabelSpace::binary()
            }
            .name(),
            "single_choice"
        );
        assert_eq!(TaskKind::OpenText.name(), "open_text");
        assert_eq!(TaskKind::Collection.name(), "collection");
    }

    #[test]
    fn accepts_checks_variant_and_constraints() {
        let sc = TaskKind::SingleChoice {
            labels: LabelSpace::binary(),
        };
        assert!(sc.accepts(&AnswerValue::Choice(1)));
        assert!(!sc.accepts(&AnswerValue::Choice(2)), "out-of-range label");
        assert!(!sc.accepts(&AnswerValue::Number(1.0)), "wrong variant");

        let num = TaskKind::Numeric { min: 0.0, max: 10.0 };
        assert!(num.accepts(&AnswerValue::Number(5.0)));
        assert!(!num.accepts(&AnswerValue::Number(11.0)));
        assert!(!num.accepts(&AnswerValue::Number(f64::NAN)));

        let pw = TaskKind::Pairwise {
            left: ItemId::new(0),
            right: ItemId::new(1),
        };
        assert!(pw.accepts(&AnswerValue::Prefer(Preference::Left)));
        assert!(!pw.accepts(&AnswerValue::Text("left".into())));
    }

    #[test]
    fn builder_clamps_difficulty() {
        let t = Task::binary(TaskId::new(0), "spam?").with_difficulty(1.7);
        assert_eq!(t.difficulty, 1.0);
        let t = t.with_difficulty(-0.3);
        assert_eq!(t.difficulty, 0.0);
    }

    #[test]
    fn with_truth_stores_value() {
        let t = Task::binary(TaskId::new(0), "spam?").with_truth(AnswerValue::Choice(1));
        assert_eq!(t.truth, Some(AnswerValue::Choice(1)));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn with_truth_rejects_ill_typed_value() {
        let _ = Task::binary(TaskId::new(0), "spam?").with_truth(AnswerValue::Number(3.0));
    }

    #[test]
    fn num_labels_only_for_single_choice() {
        assert_eq!(Task::multiclass(TaskId::new(0), 4, "which?").num_labels(), Some(4));
        assert_eq!(
            Task::pairwise(TaskId::new(1), ItemId::new(0), ItemId::new(1)).num_labels(),
            None
        );
    }
}
