//! Evaluation metrics used by the experiment harness and tests.
//!
//! Everything here is a pure function over slices; no allocation beyond what
//! the result requires. Metrics follow the standard definitions used in the
//! crowdsourcing evaluation literature: label accuracy and F1 for
//! classification/filtering, pairwise cluster F1 for entity resolution,
//! Kendall tau and NDCG for ranking, MAE/RMSE and relative error for numeric
//! estimation, and entropy/JS divergence for uncertainty-driven task
//! assignment.

use std::collections::BTreeMap;

/// Fraction of positions where `predicted[i] == truth[i]`.
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn accuracy<T: PartialEq>(predicted: &[T], truth: &[T]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    assert!(!predicted.is_empty(), "accuracy of empty slices is undefined");
    let correct = predicted
        .iter()
        .zip(truth)
        .filter(|(p, t)| p == t)
        .count();
    correct as f64 / predicted.len() as f64
}

/// Binary precision / recall / F1 with respect to a designated positive
/// label.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRecall {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// False negatives.
    pub fn_: u64,
    /// True negatives.
    pub tn: u64,
}

impl PrecisionRecall {
    /// Computes the confusion counts of `predicted` vs `truth`, treating
    /// `positive` as the positive class.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn from_labels<T: PartialEq>(predicted: &[T], truth: &[T], positive: &T) -> Self {
        assert_eq!(predicted.len(), truth.len(), "length mismatch");
        let mut c = PrecisionRecall {
            tp: 0,
            fp: 0,
            fn_: 0,
            tn: 0,
        };
        for (p, t) in predicted.iter().zip(truth) {
            match (p == positive, t == positive) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, true) => c.fn_ += 1,
                (false, false) => c.tn += 1,
            }
        }
        c
    }

    /// Precision = TP / (TP + FP); 0 when the denominator is 0.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Recall = TP / (TP + FN); 0 when the denominator is 0.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// F1 = harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Mean absolute error between two numeric series.
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn mae(predicted: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    assert!(!predicted.is_empty(), "mae of empty slices is undefined");
    predicted
        .iter()
        .zip(truth)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / predicted.len() as f64
}

/// Root mean squared error between two numeric series.
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn rmse(predicted: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    assert!(!predicted.is_empty(), "rmse of empty slices is undefined");
    let mse = predicted
        .iter()
        .zip(truth)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / predicted.len() as f64;
    mse.sqrt()
}

/// Relative error `|estimate - truth| / |truth|`; `truth` must be non-zero.
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    assert!(truth != 0.0, "relative error undefined for zero truth");
    (estimate - truth).abs() / truth.abs()
}

/// Kendall rank correlation coefficient (tau-a) between two rankings.
///
/// `ranking_a[i]` and `ranking_b[i]` are the *positions* (or scores) of item
/// `i` under the two orders; higher means ranked higher. Returns a value in
/// `[-1, 1]`: 1 for identical orderings, -1 for reversed.
///
/// Ties contribute zero to the numerator (tau-a convention). O(n²), which is
/// fine for the ranking experiments (n ≤ a few hundred).
///
/// # Panics
/// Panics on length mismatch or fewer than 2 items.
pub fn kendall_tau(ranking_a: &[f64], ranking_b: &[f64]) -> f64 {
    assert_eq!(ranking_a.len(), ranking_b.len(), "length mismatch");
    let n = ranking_a.len();
    assert!(n >= 2, "kendall tau needs at least two items");
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = ranking_a[i] - ranking_a[j];
            let db = ranking_b[i] - ranking_b[j];
            let s = da * db;
            if s > 0.0 {
                concordant += 1;
            } else if s < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

/// Normalized discounted cumulative gain at `k` for a predicted ordering.
///
/// `predicted_order` lists item indices best-first; `relevance[i]` is the
/// true relevance of item `i` (higher = better). Returns `NDCG@k ∈ [0, 1]`.
///
/// # Panics
/// Panics if `k == 0`, or any index in `predicted_order` is out of range.
pub fn ndcg_at_k(predicted_order: &[usize], relevance: &[f64], k: usize) -> f64 {
    assert!(k > 0, "ndcg@0 is undefined");
    let k = k.min(predicted_order.len());
    let dcg: f64 = predicted_order[..k]
        .iter()
        .enumerate()
        .map(|(rank, &item)| relevance[item] / ((rank + 2) as f64).log2())
        .sum();
    let mut ideal: Vec<f64> = relevance.to_vec();
    ideal.sort_by(|a, b| b.total_cmp(a));
    let idcg: f64 = ideal
        .iter()
        .take(k)
        .enumerate()
        .map(|(rank, rel)| rel / ((rank + 2) as f64).log2())
        .sum();
    if idcg == 0.0 {
        0.0
    } else {
        dcg / idcg
    }
}

/// Pairwise precision/recall/F1 of a clustering against ground truth —
/// the standard entity-resolution metric: a pair of items counts as positive
/// if both clusterings place the two items in the same cluster.
///
/// `predicted[i]` and `truth[i]` are cluster ids of item `i` (any hashable
/// type).
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn pairwise_cluster_f1<A, B>(predicted: &[A], truth: &[B]) -> PrecisionRecall
where
    A: PartialEq,
    B: PartialEq,
{
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    assert!(!predicted.is_empty(), "cluster F1 of empty input is undefined");
    let n = predicted.len();
    let mut c = PrecisionRecall {
        tp: 0,
        fp: 0,
        fn_: 0,
        tn: 0,
    };
    for i in 0..n {
        for j in (i + 1)..n {
            let same_pred = predicted[i] == predicted[j];
            let same_true = truth[i] == truth[j];
            match (same_pred, same_true) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, true) => c.fn_ += 1,
                (false, false) => c.tn += 1,
            }
        }
    }
    c
}

/// Shannon entropy (nats) of a discrete distribution. Zero-probability
/// entries contribute zero. Input need not be normalized; it is normalized
/// internally.
///
/// # Panics
/// Panics if the distribution is empty, has negative entries, or sums to 0.
pub fn entropy(dist: &[f64]) -> f64 {
    assert!(!dist.is_empty(), "entropy of empty distribution is undefined");
    let sum: f64 = dist.iter().sum();
    assert!(
        sum > 0.0 && dist.iter().all(|&p| p >= 0.0),
        "distribution must be non-negative with positive mass"
    );
    -dist
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| {
            let q = p / sum;
            q * q.ln()
        })
        .sum::<f64>()
}

/// Jensen–Shannon divergence (nats) between two distributions of equal
/// length. Symmetric, bounded by `ln 2`.
///
/// # Panics
/// Panics on length mismatch or invalid distributions.
pub fn js_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "length mismatch");
    let sp: f64 = p.iter().sum();
    let sq: f64 = q.iter().sum();
    assert!(sp > 0.0 && sq > 0.0, "distributions need positive mass");
    let kl = |a: &[f64], sa: f64, b: &[f64], sb: f64| -> f64 {
        a.iter()
            .zip(b)
            .filter(|(&x, _)| x > 0.0)
            .map(|(&x, &y)| {
                let px = x / sa;
                let my = 0.5 * (x / sa + y / sb);
                px * (px / my).ln()
            })
            .sum::<f64>()
    };
    0.5 * kl(p, sp, q, sq) + 0.5 * kl(q, sq, p, sp)
}

/// Majority element of a slice with deterministic tie-breaking (smallest
/// value wins among the most frequent). Returns `None` for empty input.
pub fn majority<T: Eq + Ord + Clone>(values: &[T]) -> Option<T> {
    if values.is_empty() {
        return None;
    }
    let mut counts: BTreeMap<&T, usize> = BTreeMap::new();
    for v in values {
        *counts.entry(v).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by(|(va, ca), (vb, cb)| ca.cmp(cb).then_with(|| vb.cmp(va)))
        .map(|(v, _)| v.clone())
}

/// Mean of a non-empty slice.
///
/// # Panics
/// Panics on empty input.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty slice is undefined");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n-1 denominator) of a slice with ≥ 2 entries.
///
/// # Panics
/// Panics with fewer than two values.
pub fn std_dev(xs: &[f64]) -> f64 {
    assert!(xs.len() >= 2, "std dev needs at least two values");
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Median of a slice (average of middle two for even lengths).
///
/// # Panics
/// Panics on empty input. NaN entries sort to a deterministic position
/// under IEEE total order rather than panicking.
pub fn median(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "median of empty slice is undefined");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 4]), 2.0 / 3.0);
        assert_eq!(accuracy(&["a"], &["a"]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_rejects_mismatched_lengths() {
        let _ = accuracy(&[1], &[1, 2]);
    }

    #[test]
    fn precision_recall_f1_textbook_example() {
        // pred:  + + - -   truth: + - + -
        let pr = PrecisionRecall::from_labels(&[1, 1, 0, 0], &[1, 0, 1, 0], &1);
        assert_eq!((pr.tp, pr.fp, pr.fn_, pr.tn), (1, 1, 1, 1));
        assert_eq!(pr.precision(), 0.5);
        assert_eq!(pr.recall(), 0.5);
        assert_eq!(pr.f1(), 0.5);
    }

    #[test]
    fn f1_zero_when_no_positives_predicted_or_present() {
        let pr = PrecisionRecall::from_labels(&[0, 0], &[0, 0], &1);
        assert_eq!(pr.precision(), 0.0);
        assert_eq!(pr.recall(), 0.0);
        assert_eq!(pr.f1(), 0.0);
    }

    #[test]
    fn mae_rmse_basic() {
        let p = [1.0, 2.0, 3.0];
        let t = [1.0, 4.0, 3.0];
        assert!((mae(&p, &t) - 2.0 / 3.0).abs() < 1e-12);
        assert!((rmse(&p, &t) - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn relative_error_scales_by_truth() {
        assert!((relative_error(110.0, 100.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(90.0, 100.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn kendall_tau_extremes_and_middle() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let rev = [4.0, 3.0, 2.0, 1.0];
        assert_eq!(kendall_tau(&a, &a), 1.0);
        assert_eq!(kendall_tau(&a, &rev), -1.0);
        // One swapped adjacent pair out of 6 pairs: 5 concordant,
        // 1 discordant → (5-1)/6.
        let b = [1.0, 2.0, 4.0, 3.0];
        assert!((kendall_tau(&a, &b) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_tau_ties_shrink_magnitude() {
        let a = [1.0, 2.0, 3.0];
        let tied = [1.0, 1.0, 2.0];
        let tau = kendall_tau(&a, &tied);
        assert!(tau > 0.0 && tau < 1.0);
    }

    #[test]
    fn ndcg_perfect_and_reversed() {
        let rel = [3.0, 2.0, 1.0];
        assert!((ndcg_at_k(&[0, 1, 2], &rel, 3) - 1.0).abs() < 1e-12);
        let rev = ndcg_at_k(&[2, 1, 0], &rel, 3);
        assert!(rev < 1.0 && rev > 0.0);
    }

    #[test]
    fn cluster_f1_perfect_and_split() {
        // Two clusters {0,1}, {2,3}.
        let truth = [0, 0, 1, 1];
        let perfect = pairwise_cluster_f1(&[5, 5, 9, 9], &truth);
        assert_eq!(perfect.f1(), 1.0);
        // Splitting one cluster loses recall but keeps precision.
        let split = pairwise_cluster_f1(&[5, 6, 9, 9], &truth);
        assert_eq!(split.precision(), 1.0);
        assert!(split.recall() < 1.0);
    }

    #[test]
    fn entropy_uniform_is_ln_k_and_point_mass_zero() {
        assert!((entropy(&[0.5, 0.5]) - (2.0f64).ln()).abs() < 1e-12);
        assert_eq!(entropy(&[1.0, 0.0]), 0.0);
        // Unnormalized input is normalized.
        assert!((entropy(&[2.0, 2.0]) - (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn js_divergence_symmetric_and_bounded() {
        let p = [0.9, 0.1];
        let q = [0.1, 0.9];
        let d1 = js_divergence(&p, &q);
        let d2 = js_divergence(&q, &p);
        assert!((d1 - d2).abs() < 1e-12);
        assert!(d1 > 0.0 && d1 <= (2.0f64).ln() + 1e-12);
        assert!(js_divergence(&p, &p).abs() < 1e-12);
    }

    #[test]
    fn majority_breaks_ties_deterministically() {
        assert_eq!(majority(&[1, 2, 2, 3]), Some(2));
        assert_eq!(majority(&[2, 1]), Some(1), "tie → smallest value");
        assert_eq!(majority::<u32>(&[]), None);
    }

    #[test]
    fn summary_stats() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((std_dev(&[2.0, 4.0]) - (2.0f64).sqrt()).abs() < 1e-12);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }
}

/// Cohen's kappa: chance-corrected agreement between two raters who each
/// labelled the same items. 1 = perfect agreement, 0 = chance-level,
/// negative = worse than chance. The classic inter-annotator quality
/// metric of crowdsourcing quality control.
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn cohens_kappa(rater_a: &[u32], rater_b: &[u32]) -> f64 {
    assert_eq!(rater_a.len(), rater_b.len(), "length mismatch");
    assert!(!rater_a.is_empty(), "kappa of empty ratings is undefined");
    let n = rater_a.len() as f64;
    let k = rater_a
        .iter()
        .chain(rater_b)
        .copied()
        .max()
        .expect("non-empty") as usize // crowdkit-lint: allow(PANIC001) — rater_a asserted non-empty above, so the chain has a max
        + 1;
    let observed = rater_a
        .iter()
        .zip(rater_b)
        .filter(|(a, b)| a == b)
        .count() as f64
        / n;
    let mut pa = vec![0.0f64; k];
    let mut pb = vec![0.0f64; k];
    for (&a, &b) in rater_a.iter().zip(rater_b) {
        pa[a as usize] += 1.0 / n;
        pb[b as usize] += 1.0 / n;
    }
    let expected: f64 = pa.iter().zip(&pb).map(|(x, y)| x * y).sum();
    if (1.0 - expected).abs() < 1e-12 {
        // Both raters constant and identical: define as perfect agreement.
        if observed >= 1.0 {
            1.0
        } else {
            0.0
        }
    } else {
        (observed - expected) / (1.0 - expected)
    }
}

/// Fleiss' kappa: chance-corrected agreement for many raters, given the
/// per-item label counts `counts[item][label]`. Every item must have the
/// same number of ratings `r ≥ 2`.
///
/// # Panics
/// Panics on empty input, ragged rows, or items with fewer than 2 ratings.
pub fn fleiss_kappa(counts: &[Vec<u32>]) -> f64 {
    assert!(!counts.is_empty(), "fleiss kappa needs at least one item");
    let k = counts[0].len();
    let r: u32 = counts[0].iter().sum();
    assert!(r >= 2, "fleiss kappa needs at least two ratings per item");
    let n = counts.len() as f64;
    let rf = r as f64;
    let mut p_item_sum = 0.0;
    let mut label_share = vec![0.0f64; k];
    for row in counts {
        assert_eq!(row.len(), k, "ragged label counts");
        assert_eq!(row.iter().sum::<u32>(), r, "items must have equal rating counts");
        let agree: f64 = row.iter().map(|&c| (c as f64) * (c as f64 - 1.0)).sum();
        p_item_sum += agree / (rf * (rf - 1.0));
        for (l, &c) in row.iter().enumerate() {
            label_share[l] += c as f64 / (n * rf);
        }
    }
    let p_bar = p_item_sum / n;
    let p_e: f64 = label_share.iter().map(|p| p * p).sum();
    if (1.0 - p_e).abs() < 1e-12 {
        if p_bar >= 1.0 {
            1.0
        } else {
            0.0
        }
    } else {
        (p_bar - p_e) / (1.0 - p_e)
    }
}

#[cfg(test)]
mod kappa_tests {
    use super::*;

    #[test]
    fn cohens_kappa_extremes() {
        assert_eq!(cohens_kappa(&[0, 1, 0, 1], &[0, 1, 0, 1]), 1.0);
        // Systematic disagreement on a balanced binary task → −1.
        let k = cohens_kappa(&[0, 1, 0, 1], &[1, 0, 1, 0]);
        assert!((k + 1.0).abs() < 1e-12, "kappa {k}");
    }

    #[test]
    fn cohens_kappa_textbook_value() {
        // Classic 2x2 example: observed 0.7, expected 0.5 → kappa 0.4.
        // Raters: A says 0 half the time, B says 0 half the time, they
        // agree on 7 of 10 items.
        let a = [0, 0, 0, 0, 0, 1, 1, 1, 1, 1];
        let b = [0, 0, 0, 0, 1, 0, 1, 1, 1, 1];
        let k = cohens_kappa(&a, &b);
        assert!((k - 0.6).abs() < 1e-9, "kappa {k}");
    }

    #[test]
    fn cohens_kappa_chance_is_zero() {
        // Rater B constant: agreement is exactly chance.
        let a = [0, 1, 0, 1];
        let b = [0, 0, 0, 0];
        let k = cohens_kappa(&a, &b);
        assert!(k.abs() < 1e-12, "kappa {k}");
    }

    #[test]
    fn cohens_kappa_constant_identical_raters() {
        assert_eq!(cohens_kappa(&[1, 1, 1], &[1, 1, 1]), 1.0);
    }

    #[test]
    fn fleiss_kappa_perfect_and_split() {
        // 3 raters, unanimous on every item.
        let unanimous = vec![vec![3, 0], vec![0, 3], vec![3, 0]];
        assert!((fleiss_kappa(&unanimous) - 1.0).abs() < 1e-12);
        // Maximal per-item disagreement with 4 raters.
        let split = vec![vec![2, 2], vec![2, 2]];
        assert!(fleiss_kappa(&split) < 0.0);
    }

    #[test]
    fn fleiss_kappa_is_bounded_above_by_one() {
        let counts = vec![vec![4, 1], vec![3, 2], vec![0, 5], vec![5, 0]];
        let k = fleiss_kappa(&counts);
        assert!(k <= 1.0 && k > -1.0, "kappa {k}");
    }

    #[test]
    #[should_panic(expected = "equal rating counts")]
    fn fleiss_kappa_rejects_unequal_rating_counts() {
        let _ = fleiss_kappa(&[vec![3, 0], vec![1, 1]]);
    }
}
