//! Cost models and budget accounting.
//!
//! Cost control is one of the tutorial's central axes: every crowd question
//! costs money, so operators and optimizers compete on *crowd questions
//! asked*, not CPU time. [`CostModel`] prices each task kind; [`Budget`]
//! enforces a spend ceiling; [`CostLedger`] records where money went so
//! experiments can report per-operator breakdowns.

use std::collections::BTreeMap;

use crate::error::{CrowdError, Result};
use crate::task::TaskKind;

/// Prices per task kind, in abstract budget units.
///
/// The defaults mirror common micro-task pricing ratios: simple binary
/// judgements are cheapest; open-ended generation is priciest.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Price of a single-choice judgement.
    pub single_choice: f64,
    /// Price of a numeric estimate.
    pub numeric: f64,
    /// Price of an open-text answer.
    pub open_text: f64,
    /// Price of a pairwise comparison.
    pub pairwise: f64,
    /// Price of one collection contribution.
    pub collection: f64,
    /// Price of filling one cell.
    pub fill: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            single_choice: 1.0,
            numeric: 1.0,
            open_text: 3.0,
            pairwise: 1.0,
            collection: 2.0,
            fill: 2.0,
        }
    }
}

impl CostModel {
    /// A model where every task kind costs exactly one unit; convenient
    /// when experiments report "number of questions" rather than money.
    pub fn unit() -> Self {
        Self {
            single_choice: 1.0,
            numeric: 1.0,
            open_text: 1.0,
            pairwise: 1.0,
            collection: 1.0,
            fill: 1.0,
        }
    }

    /// Price of one answer to a task of the given kind.
    pub fn price(&self, kind: &TaskKind) -> f64 {
        match kind {
            TaskKind::SingleChoice { .. } => self.single_choice,
            TaskKind::Numeric { .. } => self.numeric,
            TaskKind::OpenText => self.open_text,
            TaskKind::Pairwise { .. } => self.pairwise,
            TaskKind::Collection => self.collection,
            TaskKind::Fill { .. } => self.fill,
        }
    }
}

/// A spend ceiling with precise tracking of what has been consumed.
#[derive(Debug, Clone, PartialEq)]
pub struct Budget {
    limit: f64,
    spent: f64,
}

impl Budget {
    /// Creates a budget with the given limit.
    ///
    /// # Panics
    /// Panics if `limit` is negative or not finite.
    pub fn new(limit: f64) -> Self {
        assert!(
            limit.is_finite() && limit >= 0.0,
            "budget limit must be a non-negative finite number, got {limit}"
        );
        Self { limit, spent: 0.0 }
    }

    /// An effectively unlimited budget (`f64::MAX` limit).
    pub fn unlimited() -> Self {
        Self {
            limit: f64::MAX,
            spent: 0.0,
        }
    }

    /// The configured limit.
    #[inline]
    pub fn limit(&self) -> f64 {
        self.limit
    }

    /// Total spent so far.
    #[inline]
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Budget still available.
    #[inline]
    pub fn remaining(&self) -> f64 {
        (self.limit - self.spent).max(0.0)
    }

    /// True if at least `amount` can still be spent.
    #[inline]
    pub fn can_afford(&self, amount: f64) -> bool {
        // Small epsilon guards against accumulated floating-point drift
        // denying the final affordable question of a long run.
        amount <= self.remaining() + 1e-9
    }

    /// Debits `amount`, or fails with [`CrowdError::BudgetExhausted`]
    /// without changing state.
    pub fn debit(&mut self, amount: f64) -> Result<()> {
        debug_assert!(amount >= 0.0, "cannot debit a negative amount");
        if !self.can_afford(amount) {
            return Err(CrowdError::BudgetExhausted {
                requested: amount,
                remaining: self.remaining(),
            });
        }
        self.spent += amount;
        Ok(())
    }
}

/// Records spend per category so experiments can report breakdowns such as
/// "crowd join verification: 412 questions, 412.0 units".
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostLedger {
    entries: BTreeMap<String, LedgerEntry>,
}

/// Aggregated spend for one ledger category.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LedgerEntry {
    /// Number of debits recorded.
    pub count: u64,
    /// Total units spent.
    pub total: f64,
}

impl CostLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a debit under `category`.
    pub fn record(&mut self, category: &str, amount: f64) {
        let e = self.entries.entry(category.to_owned()).or_default();
        e.count += 1;
        e.total += amount;
    }

    /// The entry for `category`, if anything was recorded there.
    pub fn entry(&self, category: &str) -> Option<LedgerEntry> {
        self.entries.get(category).copied()
    }

    /// Total units spent across all categories.
    pub fn grand_total(&self) -> f64 {
        self.entries.values().map(|e| e.total).sum()
    }

    /// Total number of debits across all categories.
    pub fn grand_count(&self) -> u64 {
        self.entries.values().map(|e| e.count).sum()
    }

    /// Iterates categories in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, LedgerEntry)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &CostLedger) {
        for (k, v) in &other.entries {
            let e = self.entries.entry(k.clone()).or_default();
            e.count += v.count;
            e.total += v.total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelSpace;

    #[test]
    fn cost_model_prices_by_kind() {
        let m = CostModel::default();
        let sc = TaskKind::SingleChoice {
            labels: LabelSpace::binary(),
        };
        assert_eq!(m.price(&sc), 1.0);
        assert_eq!(m.price(&TaskKind::OpenText), 3.0);
        let u = CostModel::unit();
        assert_eq!(u.price(&TaskKind::OpenText), 1.0);
    }

    #[test]
    fn budget_debits_until_exhausted() {
        let mut b = Budget::new(2.5);
        assert!(b.debit(1.0).is_ok());
        assert!(b.debit(1.0).is_ok());
        assert_eq!(b.spent(), 2.0);
        assert!((b.remaining() - 0.5).abs() < 1e-12);
        let err = b.debit(1.0).unwrap_err();
        assert!(matches!(err, CrowdError::BudgetExhausted { .. }));
        // Failed debit must not change state.
        assert_eq!(b.spent(), 2.0);
        assert!(b.debit(0.5).is_ok());
        assert_eq!(b.remaining(), 0.0);
    }

    #[test]
    fn budget_epsilon_allows_final_question_despite_fp_drift() {
        let mut b = Budget::new(1.0);
        // Spend in ten 0.1 debits — naive comparison would fail the tenth.
        for _ in 0..10 {
            b.debit(0.1).expect("all ten debits affordable");
        }
        assert!(b.remaining() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative finite")]
    fn negative_budget_rejected() {
        let _ = Budget::new(-1.0);
    }

    #[test]
    fn unlimited_budget_never_exhausts() {
        let mut b = Budget::unlimited();
        for _ in 0..1000 {
            b.debit(1e12).unwrap();
        }
        assert!(b.remaining() > 0.0);
    }

    #[test]
    fn ledger_accumulates_and_merges() {
        let mut a = CostLedger::new();
        a.record("filter", 1.0);
        a.record("filter", 1.0);
        a.record("join", 2.0);
        assert_eq!(a.entry("filter").unwrap().count, 2);
        assert_eq!(a.entry("filter").unwrap().total, 2.0);
        assert_eq!(a.grand_total(), 4.0);
        assert_eq!(a.grand_count(), 3);

        let mut b = CostLedger::new();
        b.record("join", 1.0);
        a.merge(&b);
        assert_eq!(a.entry("join").unwrap().count, 2);
        assert_eq!(a.entry("join").unwrap().total, 3.0);
    }

    #[test]
    fn ledger_iterates_in_sorted_order() {
        let mut l = CostLedger::new();
        l.record("z", 1.0);
        l.record("a", 1.0);
        let cats: Vec<&str> = l.iter().map(|(k, _)| k).collect();
        assert_eq!(cats, vec!["a", "z"]);
    }
}
