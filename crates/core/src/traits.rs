//! Extension-point traits wiring the stack together.
//!
//! * [`CrowdOracle`] — how operators and query engines *ask the crowd*.
//!   The platform simulator (`crowdkit-sim`) implements it; tests implement
//!   tiny deterministic oracles.
//! * [`TruthInferencer`] — how noisy answers become one estimated truth per
//!   task. All algorithms in `crowdkit-truth` implement it.
//! * [`StoppingRule`] — when to stop buying more answers for a task.

use crate::answer::Answer;
use crate::error::Result;
use crate::response::ResponseMatrix;
use crate::task::Task;

/// The interface through which crowd answers are obtained.
///
/// An oracle owns the economics: it debits the budget per answer, picks the
/// responding worker, and timestamps the result. Implementations must be
/// deterministic for a fixed seed so experiments are reproducible.
pub trait CrowdOracle {
    /// Asks one (implementation-chosen) worker to answer `task`.
    ///
    /// Fails with a resource-exhaustion error when the budget is spent or no
    /// worker is available; callers typically stop gracefully on those.
    fn ask_one(&mut self, task: &Task) -> Result<Answer>;

    /// Asks `k` *distinct* workers to answer `task`. The default loops over
    /// [`CrowdOracle::ask_one`]; platforms with smarter assignment override
    /// it. On resource exhaustion mid-way, returns the answers obtained so
    /// far if any, otherwise the error.
    fn ask_many(&mut self, task: &Task, k: usize) -> Result<Vec<Answer>> {
        let mut answers = Vec::with_capacity(k);
        for _ in 0..k {
            match self.ask_one(task) {
                Ok(a) => answers.push(a),
                Err(e) if e.is_resource_exhaustion() && !answers.is_empty() => break,
                Err(e) => return Err(e),
            }
        }
        Ok(answers)
    }

    /// Remaining budget in units, or `None` if unbounded.
    fn remaining_budget(&self) -> Option<f64>;

    /// Total number of answers delivered so far (for cost reporting).
    fn answers_delivered(&self) -> u64;
}

/// The output of a truth-inference run over a [`ResponseMatrix`].
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceResult {
    /// Estimated label per dense task index.
    pub labels: Vec<u32>,
    /// Posterior probability distribution per dense task index; each inner
    /// vector has `num_labels` entries summing to 1. Algorithms that do not
    /// produce calibrated posteriors return one-hot or normalized-vote
    /// distributions.
    pub posteriors: Vec<Vec<f64>>,
    /// Estimated per-worker quality in `[0, 1]` per dense worker index
    /// (probability of answering correctly). Algorithms that do not model
    /// workers return `None`.
    pub worker_quality: Option<Vec<f64>>,
    /// Number of iterations the algorithm ran (1 for non-iterative ones).
    pub iterations: usize,
    /// Whether the algorithm converged within its iteration cap.
    pub converged: bool,
}

impl InferenceResult {
    /// The posterior confidence of the chosen label for dense task `t`.
    pub fn confidence(&self, t: usize) -> f64 {
        self.posteriors[t][self.labels[t] as usize]
    }

    /// Dense task indices whose chosen-label confidence is at least `tau`
    /// — the *selective output* of quality control: return only what the
    /// posterior supports, route the rest back for more answers or to
    /// experts. Experiment E15 sweeps the coverage/accuracy trade-off.
    pub fn select_confident(&self, tau: f64) -> Vec<usize> {
        (0..self.labels.len())
            .filter(|&t| self.confidence(t) >= tau)
            .collect()
    }

    /// Fraction of tasks whose confidence clears `tau`.
    pub fn coverage(&self, tau: f64) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.select_confident(tau).len() as f64 / self.labels.len() as f64
    }
}

/// An algorithm that estimates per-task truth from a response matrix.
pub trait TruthInferencer {
    /// Short, stable name used in experiment tables ("mv", "ds", "glad"…).
    fn name(&self) -> &'static str;

    /// Runs inference. Fails on an empty matrix.
    fn infer(&self, matrix: &ResponseMatrix) -> Result<InferenceResult>;
}

/// Decides whether a task needs more answers given those collected so far.
///
/// Stopping rules drive the cost/accuracy trade-off in crowd filtering
/// (tutorial: cost control via task pruning and early termination).
pub trait StoppingRule {
    /// Short name for experiment tables.
    fn name(&self) -> &'static str;

    /// Returns `true` if answer collection for this task should stop.
    ///
    /// `votes` are per-label counts for the task so far; implementations
    /// must be monotone in total count reaching `max_answers` (i.e. they
    /// must eventually stop).
    fn should_stop(&self, votes: &[u32], max_answers: u32) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::AnswerValue;
    use crate::error::CrowdError;
    use crate::ids::{TaskId, WorkerId};

    /// A tiny oracle that always answers Choice(1) from successive workers,
    /// with a hard cap on total answers.
    struct FixedOracle {
        next_worker: u64,
        cap: u64,
        delivered: u64,
    }

    impl CrowdOracle for FixedOracle {
        fn ask_one(&mut self, task: &Task) -> Result<Answer> {
            if self.delivered >= self.cap {
                return Err(CrowdError::BudgetExhausted {
                    requested: 1.0,
                    remaining: 0.0,
                });
            }
            self.delivered += 1;
            let w = WorkerId::new(self.next_worker);
            self.next_worker += 1;
            Ok(Answer::bare(task.id, w, AnswerValue::Choice(1)))
        }

        fn remaining_budget(&self) -> Option<f64> {
            Some((self.cap - self.delivered) as f64)
        }

        fn answers_delivered(&self) -> u64 {
            self.delivered
        }
    }

    #[test]
    fn ask_many_default_collects_k_answers() {
        let mut o = FixedOracle {
            next_worker: 0,
            cap: 10,
            delivered: 0,
        };
        let task = Task::binary(TaskId::new(0), "q");
        let answers = o.ask_many(&task, 3).unwrap();
        assert_eq!(answers.len(), 3);
        let workers: Vec<u64> = answers.iter().map(|a| a.worker.raw()).collect();
        assert_eq!(workers, vec![0, 1, 2]);
    }

    #[test]
    fn ask_many_partial_on_exhaustion() {
        let mut o = FixedOracle {
            next_worker: 0,
            cap: 2,
            delivered: 0,
        };
        let task = Task::binary(TaskId::new(0), "q");
        let answers = o.ask_many(&task, 5).unwrap();
        assert_eq!(answers.len(), 2, "returns partial results when budget dies");
        // Next call starts already exhausted → propagates the error.
        let err = o.ask_many(&task, 1).unwrap_err();
        assert!(err.is_resource_exhaustion());
    }

    #[test]
    fn inference_result_confidence_reads_chosen_label() {
        let r = InferenceResult {
            labels: vec![1, 0],
            posteriors: vec![vec![0.2, 0.8], vec![0.6, 0.4]],
            worker_quality: None,
            iterations: 1,
            converged: true,
        };
        assert!((r.confidence(0) - 0.8).abs() < 1e-12);
        assert!((r.confidence(1) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn selective_output_filters_by_confidence() {
        let r = InferenceResult {
            labels: vec![1, 0, 1],
            posteriors: vec![vec![0.2, 0.8], vec![0.55, 0.45], vec![0.05, 0.95]],
            worker_quality: None,
            iterations: 1,
            converged: true,
        };
        assert_eq!(r.select_confident(0.7), vec![0, 2]);
        assert_eq!(r.select_confident(0.9), vec![2]);
        assert_eq!(r.select_confident(0.0), vec![0, 1, 2]);
        assert!((r.coverage(0.7) - 2.0 / 3.0).abs() < 1e-12);
        let empty = InferenceResult {
            labels: vec![],
            posteriors: vec![],
            worker_quality: None,
            iterations: 1,
            converged: true,
        };
        assert_eq!(empty.coverage(0.5), 0.0);
    }
}
