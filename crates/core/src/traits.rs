//! Extension-point traits wiring the stack together.
//!
//! * [`CrowdOracle`] — how operators and query engines *ask the crowd*.
//!   The platform simulator (`crowdkit-sim`) implements it; tests implement
//!   tiny deterministic oracles.
//! * [`TruthInferencer`] — how noisy answers become one estimated truth per
//!   task. All algorithms in `crowdkit-truth` implement it.
//! * [`StoppingRule`] — when to stop buying more answers for a task.

use crate::answer::Answer;
use crate::ask::{AskOutcome, AskRequest};
use crate::error::Result;
use crate::response::ResponseMatrix;
use crate::task::Task;

/// The interface through which crowd answers are obtained.
///
/// An oracle owns the economics: it debits the budget per answer, picks the
/// responding worker, and timestamps the result. Implementations must be
/// deterministic for a fixed seed so experiments are reproducible.
///
/// # Concurrency model
///
/// All methods take `&self`: an oracle is a *shared service*, like the
/// platform it models, and implementations use interior mutability (the
/// simulator stripes its state behind locks). This lets operators hold one
/// oracle reference across fan-out call sites and lets batch
/// implementations overlap independent assignments. Implementations must
/// keep the determinism contract **per logical call sequence**: the same
/// seed and the same sequence of `ask*` calls produce the same answers,
/// regardless of how many threads the implementation uses internally.
///
/// # Requests, outcomes and partial delivery
///
/// The primary entry points are [`ask`](CrowdOracle::ask) (one
/// [`AskRequest`]) and [`ask_batch`](CrowdOracle::ask_batch) (many, which
/// platforms overlap in latency). Both report delivery through
/// [`AskOutcome`], which makes partial delivery explicit: answers already
/// purchased are always returned (they were paid for) and the
/// [`shortfall`](AskOutcome::shortfall) field records why delivery stopped.
/// [`ask_many`](CrowdOracle::ask_many) remains as a thin convenience that
/// discards the shortfall detail.
pub trait CrowdOracle {
    /// Asks one (implementation-chosen) worker to answer `task`.
    ///
    /// Fails with a resource-exhaustion error when the budget is spent or no
    /// worker is available; callers typically stop gracefully on those.
    fn ask_one(&self, task: &Task) -> Result<Answer>;

    /// Executes one request: asks `redundancy` *distinct* workers.
    ///
    /// The default loops over [`CrowdOracle::ask_one`]; platforms with
    /// smarter assignment (exclusion handling, latency overlap) override
    /// it.
    ///
    /// Errors are only returned when *nothing* was purchased and the error
    /// is not a resource-exhaustion condition. In every other case the
    /// answers bought so far are delivered in the outcome with the stop
    /// reason in [`AskOutcome::shortfall`] — a mid-batch failure must not
    /// discard answers the budget already paid for.
    fn ask(&self, req: &AskRequest<'_>) -> Result<AskOutcome> {
        let want = req.redundancy.max(1);
        let mut answers = Vec::with_capacity(want);
        let mut shortfall = None;
        for _ in 0..want {
            match self.ask_one(req.task) {
                Ok(a) => answers.push(a),
                Err(e) if answers.is_empty() && !e.is_resource_exhaustion() => return Err(e),
                Err(e) => {
                    shortfall = Some(e);
                    break;
                }
            }
        }
        Ok(AskOutcome {
            task: req.task.id,
            requested: want,
            answers,
            shortfall,
        })
    }

    /// Executes a batch of requests, returning one outcome per request in
    /// input order.
    ///
    /// The default runs requests sequentially through
    /// [`CrowdOracle::ask`]; once the budget is drained, later requests
    /// are starved without further platform calls. Platform
    /// implementations override this to overlap the assignments of the
    /// whole batch in (simulated) latency — batching is the dominant
    /// latency lever of crowd execution. Budget, when contended, is always
    /// awarded in request order so batch funding is deterministic.
    fn ask_batch(&self, reqs: &[AskRequest<'_>]) -> Result<Vec<AskOutcome>> {
        let mut outcomes = Vec::with_capacity(reqs.len());
        let mut drained: Option<crate::error::CrowdError> = None;
        for req in reqs {
            if let Some(e) = &drained {
                outcomes.push(AskOutcome::starved(
                    req.task.id,
                    req.redundancy.max(1),
                    e.clone(),
                ));
                continue;
            }
            let out = self.ask(req)?;
            if out.stopped_by_budget() {
                drained = out.shortfall.clone();
            }
            outcomes.push(out);
        }
        Ok(outcomes)
    }

    /// Asks `k` *distinct* workers to answer `task`, without exclusions.
    ///
    /// Convenience over [`CrowdOracle::ask`]. On resource exhaustion
    /// mid-way, returns the answers obtained so far if any, otherwise the
    /// error; use `ask` directly when the caller needs to distinguish
    /// partial from full delivery.
    fn ask_many(&self, task: &Task, k: usize) -> Result<Vec<Answer>> {
        let out = self.ask(&AskRequest::new(task).with_redundancy(k))?;
        match out.shortfall {
            Some(e) if out.answers.is_empty() => Err(e),
            _ => Ok(out.answers),
        }
    }

    /// Remaining budget in units, or `None` if unbounded.
    fn remaining_budget(&self) -> Option<f64>;

    /// Total number of answers delivered so far (for cost reporting).
    fn answers_delivered(&self) -> u64;
}

/// The output of a truth-inference run over a [`ResponseMatrix`].
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceResult {
    /// Estimated label per dense task index.
    pub labels: Vec<u32>,
    /// Posterior probability distribution per dense task index; each inner
    /// vector has `num_labels` entries summing to 1. Algorithms that do not
    /// produce calibrated posteriors return one-hot or normalized-vote
    /// distributions.
    pub posteriors: Vec<Vec<f64>>,
    /// Estimated per-worker quality in `[0, 1]` per dense worker index
    /// (probability of answering correctly). Algorithms that do not model
    /// workers return `None`.
    pub worker_quality: Option<Vec<f64>>,
    /// Number of iterations the algorithm ran (1 for non-iterative ones).
    pub iterations: usize,
    /// Whether the algorithm converged within its iteration cap.
    pub converged: bool,
}

impl InferenceResult {
    /// The posterior confidence of the chosen label for dense task `t`.
    pub fn confidence(&self, t: usize) -> f64 {
        self.posteriors[t][self.labels[t] as usize]
    }

    /// Dense task indices whose chosen-label confidence is at least `tau`
    /// — the *selective output* of quality control: return only what the
    /// posterior supports, route the rest back for more answers or to
    /// experts. Experiment E15 sweeps the coverage/accuracy trade-off.
    pub fn select_confident(&self, tau: f64) -> Vec<usize> {
        (0..self.labels.len())
            .filter(|&t| self.confidence(t) >= tau)
            .collect()
    }

    /// Fraction of tasks whose confidence clears `tau`.
    pub fn coverage(&self, tau: f64) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.select_confident(tau).len() as f64 / self.labels.len() as f64
    }
}

/// An algorithm that estimates per-task truth from a response matrix.
pub trait TruthInferencer {
    /// Short, stable name used in experiment tables ("mv", "ds", "glad"…).
    fn name(&self) -> &'static str;

    /// Runs inference. Fails on an empty matrix.
    fn infer(&self, matrix: &ResponseMatrix) -> Result<InferenceResult>;
}

/// Decides whether a task needs more answers given those collected so far.
///
/// Stopping rules drive the cost/accuracy trade-off in crowd filtering
/// (tutorial: cost control via task pruning and early termination).
pub trait StoppingRule {
    /// Short name for experiment tables.
    fn name(&self) -> &'static str;

    /// Returns `true` if answer collection for this task should stop.
    ///
    /// `votes` are per-label counts for the task so far; implementations
    /// must be monotone in total count reaching `max_answers` (i.e. they
    /// must eventually stop).
    fn should_stop(&self, votes: &[u32], max_answers: u32) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::AnswerValue;
    use crate::error::CrowdError;
    use crate::ids::{TaskId, WorkerId};
    use std::cell::Cell;

    /// A tiny oracle that always answers Choice(1) from successive workers,
    /// with a hard cap on total answers.
    struct FixedOracle {
        next_worker: Cell<u64>,
        cap: u64,
        delivered: Cell<u64>,
    }

    impl FixedOracle {
        fn new(cap: u64) -> Self {
            Self {
                next_worker: Cell::new(0),
                cap,
                delivered: Cell::new(0),
            }
        }
    }

    impl CrowdOracle for FixedOracle {
        fn ask_one(&self, task: &Task) -> Result<Answer> {
            if self.delivered.get() >= self.cap {
                return Err(CrowdError::BudgetExhausted {
                    requested: 1.0,
                    remaining: 0.0,
                });
            }
            self.delivered.set(self.delivered.get() + 1);
            let w = WorkerId::new(self.next_worker.get());
            self.next_worker.set(self.next_worker.get() + 1);
            Ok(Answer::bare(task.id, w, AnswerValue::Choice(1)))
        }

        fn remaining_budget(&self) -> Option<f64> {
            Some((self.cap - self.delivered.get()) as f64)
        }

        fn answers_delivered(&self) -> u64 {
            self.delivered.get()
        }
    }

    #[test]
    fn ask_many_default_collects_k_answers() {
        let o = FixedOracle::new(10);
        let task = Task::binary(TaskId::new(0), "q");
        let answers = o.ask_many(&task, 3).unwrap();
        assert_eq!(answers.len(), 3);
        let workers: Vec<u64> = answers.iter().map(|a| a.worker.raw()).collect();
        assert_eq!(workers, vec![0, 1, 2]);
    }

    #[test]
    fn ask_many_partial_on_exhaustion() {
        let o = FixedOracle::new(2);
        let task = Task::binary(TaskId::new(0), "q");
        let answers = o.ask_many(&task, 5).unwrap();
        assert_eq!(answers.len(), 2, "returns partial results when budget dies");
        // Next call starts already exhausted → propagates the error.
        let err = o.ask_many(&task, 1).unwrap_err();
        assert!(err.is_resource_exhaustion());
    }

    #[test]
    fn ask_reports_shortfall_with_purchased_answers() {
        let o = FixedOracle::new(2);
        let task = Task::binary(TaskId::new(0), "q");
        let req = crate::ask::AskRequest::new(&task).with_redundancy(5);
        let out = o.ask(&req).unwrap();
        assert_eq!(out.delivered(), 2);
        assert_eq!(out.missing(), 3);
        assert!(out.stopped_by_budget());
        assert!(!out.is_complete());
    }

    #[test]
    fn ask_batch_funds_in_request_order_and_starves_the_rest() {
        let o = FixedOracle::new(3);
        let t0 = Task::binary(TaskId::new(0), "a");
        let t1 = Task::binary(TaskId::new(1), "b");
        let t2 = Task::binary(TaskId::new(2), "c");
        let reqs = vec![
            crate::ask::AskRequest::new(&t0).with_redundancy(2),
            crate::ask::AskRequest::new(&t1).with_redundancy(2),
            crate::ask::AskRequest::new(&t2).with_redundancy(2),
        ];
        let outs = o.ask_batch(&reqs).unwrap();
        assert_eq!(outs.len(), 3);
        assert!(outs[0].is_complete());
        assert_eq!(outs[1].delivered(), 1);
        assert!(outs[1].stopped_by_budget());
        assert_eq!(outs[2].delivered(), 0, "drained budget starves request 3");
        assert!(outs[2].stopped_by_budget());
        assert_eq!(o.answers_delivered(), 3);
    }

    /// A mid-batch non-exhaustion failure keeps already-purchased answers
    /// in the outcome so cost accounting stays consistent — the old
    /// `ask_many` default discarded them.
    #[test]
    fn mid_batch_failure_does_not_discard_purchased_answers() {
        struct FlakyOracle {
            calls: Cell<u64>,
        }
        impl CrowdOracle for FlakyOracle {
            fn ask_one(&self, task: &Task) -> Result<Answer> {
                let n = self.calls.get();
                self.calls.set(n + 1);
                if n >= 2 {
                    return Err(CrowdError::Execution("wire fault".into()));
                }
                Ok(Answer::bare(task.id, WorkerId::new(n), AnswerValue::Choice(1)))
            }
            fn remaining_budget(&self) -> Option<f64> {
                None
            }
            fn answers_delivered(&self) -> u64 {
                self.calls.get()
            }
        }
        let o = FlakyOracle { calls: Cell::new(0) };
        let task = Task::binary(TaskId::new(0), "q");
        let out = o.ask(&crate::ask::AskRequest::new(&task).with_redundancy(5)).unwrap();
        assert_eq!(out.delivered(), 2, "purchased answers survive the failure");
        assert!(matches!(out.shortfall, Some(CrowdError::Execution(_))));
        // A failure before anything was purchased still propagates.
        let err = o.ask(&crate::ask::AskRequest::new(&task)).unwrap_err();
        assert!(matches!(err, CrowdError::Execution(_)));
        // ask_many now returns the partial purchase instead of dropping it.
        let o2 = FlakyOracle { calls: Cell::new(0) };
        assert_eq!(o2.ask_many(&task, 5).unwrap().len(), 2);
    }

    #[test]
    fn inference_result_confidence_reads_chosen_label() {
        let r = InferenceResult {
            labels: vec![1, 0],
            posteriors: vec![vec![0.2, 0.8], vec![0.6, 0.4]],
            worker_quality: None,
            iterations: 1,
            converged: true,
        };
        assert!((r.confidence(0) - 0.8).abs() < 1e-12);
        assert!((r.confidence(1) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn selective_output_filters_by_confidence() {
        let r = InferenceResult {
            labels: vec![1, 0, 1],
            posteriors: vec![vec![0.2, 0.8], vec![0.55, 0.45], vec![0.05, 0.95]],
            worker_quality: None,
            iterations: 1,
            converged: true,
        };
        assert_eq!(r.select_confident(0.7), vec![0, 2]);
        assert_eq!(r.select_confident(0.9), vec![2]);
        assert_eq!(r.select_confident(0.0), vec![0, 1, 2]);
        assert!((r.coverage(0.7) - 2.0 / 3.0).abs() < 1e-12);
        let empty = InferenceResult {
            labels: vec![],
            posteriors: vec![],
            worker_quality: None,
            iterations: 1,
            converged: true,
        };
        assert_eq!(empty.coverage(0.5), 0.0);
    }
}
