//! Strongly-typed identifiers.
//!
//! All entities in crowdkit are identified by newtype wrappers around `u64`.
//! The wrappers prevent the classic bug of passing a worker id where a task
//! id was expected, cost nothing at runtime, and provide dense-index helpers
//! for algorithm crates that pack entities into vectors.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u64);

        impl $name {
            /// Creates an id from a raw integer.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw integer value.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Returns the id as a `usize`, for indexing into dense arrays.
            ///
            /// **Footgun**: this casts the *raw* id. It is only safe when
            /// the producer assigned ids densely from zero (e.g. an
            /// [`IdGen`]); sparse real-platform ids silently alias or
            /// overrun the array. Kernel-facing code should map ids
            /// through a [`crate::intern::IdInterner`] (or a
            /// [`crate::response::ResponseMatrix`], which embeds two)
            /// instead, or use [`Self::dense_index`] which debug-asserts
            /// the density assumption against the array length.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// [`Self::index`] with the density assumption checked: the
            /// raw id must lie inside `0..len` (the dense array being
            /// indexed). Debug builds panic on violation instead of
            /// corrupting a CSR lookup; release builds defer to the
            /// caller's own bounds check.
            #[inline]
            #[track_caller]
            pub fn dense_index(self, len: usize) -> usize {
                debug_assert!(
                    (self.0 as usize) < len,
                    concat!(
                        "sparse ", stringify!($name), " {} used as a dense index into an \
                         array of length {}; intern it through an IdInterner instead"
                    ),
                    self.0,
                    len
                );
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(id: $name) -> u64 {
                id.0
            }
        }
    };
}

define_id!(
    /// Identifies a single crowdsourcing task (one question posed to workers).
    TaskId,
    "t"
);
define_id!(
    /// Identifies a crowd worker.
    WorkerId,
    "w"
);
define_id!(
    /// Identifies a data item (a row, an entity, an element being sorted…).
    ///
    /// Items are the subjects tasks are about: a pairwise comparison task
    /// references two `ItemId`s, a filter task references one.
    ItemId,
    "i"
);

/// A monotonically increasing id generator.
///
/// Platforms and operators use one generator per id type so ids are dense
/// and deterministic for a given run.
#[derive(Debug, Default, Clone)]
pub struct IdGen {
    next: u64,
}

impl IdGen {
    /// Creates a generator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a generator starting at `start`.
    pub fn starting_at(start: u64) -> Self {
        Self { next: start }
    }

    /// Returns the next raw id and advances the generator.
    pub fn next_raw(&mut self) -> u64 {
        let id = self.next;
        self.next += 1;
        id
    }

    /// Returns the next [`TaskId`].
    pub fn next_task(&mut self) -> TaskId {
        TaskId::new(self.next_raw())
    }

    /// Returns the next [`WorkerId`].
    pub fn next_worker(&mut self) -> WorkerId {
        WorkerId::new(self.next_raw())
    }

    /// Returns the next [`ItemId`].
    pub fn next_item(&mut self) -> ItemId {
        ItemId::new(self.next_raw())
    }

    /// Number of ids handed out so far.
    pub fn count(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_distinct_types_with_round_trip() {
        let t = TaskId::new(7);
        assert_eq!(t.raw(), 7);
        assert_eq!(t.index(), 7);
        assert_eq!(u64::from(t), 7);
        assert_eq!(TaskId::from(7u64), t);
    }

    #[test]
    fn display_uses_prefixes() {
        assert_eq!(TaskId::new(3).to_string(), "t3");
        assert_eq!(WorkerId::new(4).to_string(), "w4");
        assert_eq!(ItemId::new(5).to_string(), "i5");
    }

    #[test]
    fn dense_index_passes_in_range() {
        assert_eq!(TaskId::new(3).dense_index(4), 3);
    }

    #[test]
    #[should_panic(expected = "dense index")]
    #[cfg(debug_assertions)]
    fn dense_index_rejects_sparse_ids_in_debug() {
        let _ = WorkerId::new(10).dense_index(4);
    }

    #[test]
    fn idgen_is_dense_and_unique() {
        let mut g = IdGen::new();
        let ids: Vec<u64> = (0..100).map(|_| g.next_raw()).collect();
        assert_eq!(ids, (0..100).collect::<Vec<_>>());
        let set: HashSet<u64> = ids.into_iter().collect();
        assert_eq!(set.len(), 100);
        assert_eq!(g.count(), 100);
    }

    #[test]
    fn idgen_starting_at_offsets() {
        let mut g = IdGen::starting_at(10);
        assert_eq!(g.next_task(), TaskId::new(10));
        assert_eq!(g.next_task(), TaskId::new(11));
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(TaskId::new(1) < TaskId::new(2));
        let mut v = vec![ItemId::new(3), ItemId::new(1), ItemId::new(2)];
        v.sort();
        assert_eq!(v, vec![ItemId::new(1), ItemId::new(2), ItemId::new(3)]);
    }
}
