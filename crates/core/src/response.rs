//! The response matrix: the canonical input to truth-inference algorithms.
//!
//! A [`ResponseMatrix`] packs a set of `(task, worker, label)` observations
//! into dense indices so EM-style algorithms can run over flat vectors.
//! It keeps bidirectional maps between external [`TaskId`]/[`WorkerId`]s
//! and internal dense indices via two [`IdInterner`]s — the sanctioned
//! route from sparse platform ids to flat-array slots.
//!
//! # Memory layout
//!
//! Observations are stored twice:
//!
//! * the **insertion-order log** (`observations`) — the audit trail that
//!   concurrency tests and gold scoring iterate;
//! * a **CSR (compressed sparse row) index** — contiguous `(worker, label)`
//!   pairs grouped by task and `(task, label)` pairs grouped by worker,
//!   each with an offsets array, built lazily in one counting-sort pass and
//!   cached until the next `push`. EM hot loops iterate these flat entry
//!   slices with zero indirection instead of chasing
//!   `Vec<Vec<usize>> → observations[i]`.
//!
//! Offsets and entries are `u32` end to end: at the million-scale workload
//! (1M tasks / 10M observations) the CSR is the dominant resident
//! structure, and `u32` halves it relative to `usize` on 64-bit hosts. A
//! matrix therefore holds at most `u32::MAX` observations — beyond that
//! the counting-sort offsets would wrap — and `push` enforces the cap.

use std::sync::OnceLock;

use crate::answer::Answer;
use crate::error::{CrowdError, Result};
use crate::ids::{TaskId, WorkerId};
use crate::intern::IdInterner;

/// One categorical observation: worker `w` labelled task `t` as `label`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// Dense task index.
    pub task: usize,
    /// Dense worker index.
    pub worker: usize,
    /// Label index in `0..num_labels`.
    pub label: u32,
}

/// The cached CSR groupings of a [`ResponseMatrix`].
///
/// `task_entries[task_offsets[t]..task_offsets[t + 1]]` holds task `t`'s
/// `(worker, label)` pairs in insertion order; the worker side mirrors it
/// with `(task, label)` pairs. Entries are `u32` pairs so a grouping row
/// is one contiguous 8-byte-stride scan, and offsets are `u32` so the
/// index arrays stay half the width of a `usize` layout.
#[derive(Debug, Clone, Default)]
struct CsrIndex {
    /// `task_entries` offsets, one per task plus a trailing total.
    task_offsets: Vec<u32>,
    /// `(worker, label)` pairs grouped by task.
    task_entries: Vec<(u32, u32)>,
    /// `worker_entries` offsets, one per worker plus a trailing total.
    worker_offsets: Vec<u32>,
    /// `(task, label)` pairs grouped by worker.
    worker_entries: Vec<(u32, u32)>,
}

/// A dense-indexed view over categorical crowd answers.
#[derive(Debug, Clone, Default)]
pub struct ResponseMatrix {
    num_labels: usize,
    observations: Vec<Observation>,
    tasks: IdInterner<TaskId>,
    workers: IdInterner<WorkerId>,
    /// Lazily built CSR groupings; invalidated by `push`.
    csr: OnceLock<CsrIndex>,
}

impl ResponseMatrix {
    /// Creates an empty matrix over a label space of size `num_labels`.
    ///
    /// # Panics
    /// Panics if `num_labels == 0`.
    pub fn new(num_labels: usize) -> Self {
        assert!(num_labels > 0, "response matrix needs at least one label");
        Self {
            num_labels,
            ..Default::default()
        }
    }

    /// Creates an empty matrix preallocated for roughly `observations`
    /// pushes, avoiding incremental growth of the observation log and the
    /// id-interning maps.
    pub fn with_capacity(num_labels: usize, observations: usize) -> Self {
        let mut m = Self::new(num_labels);
        m.observations.reserve(observations);
        m.tasks.reserve(observations.min(1024));
        m.workers.reserve(observations.min(1024));
        m
    }

    /// Builds a matrix from [`Answer`]s, using each answer's `Choice` value.
    ///
    /// Fails if any answer is not a `Choice` or its label is out of range.
    pub fn from_answers<'a, I>(num_labels: usize, answers: I) -> Result<Self>
    where
        I: IntoIterator<Item = &'a Answer>,
    {
        let answers = answers.into_iter();
        let mut m = Self::with_capacity(num_labels, answers.size_hint().0);
        for a in answers {
            let label = a.value.as_choice().ok_or(CrowdError::AnswerTypeMismatch {
                expected: "choice",
                found: a.value.type_name(),
            })?;
            m.push(a.task, a.worker, label)?;
        }
        Ok(m)
    }

    /// Records that `worker` labelled `task` as `label`.
    ///
    /// # Panics
    /// Panics when the matrix already holds `u32::MAX` observations — the
    /// `u32` CSR offsets cannot index past that.
    pub fn push(&mut self, task: TaskId, worker: WorkerId, label: u32) -> Result<()> {
        if label as usize >= self.num_labels {
            return Err(CrowdError::LabelOutOfRange {
                label,
                space: self.num_labels as u32,
            });
        }
        assert!(
            self.observations.len() < u32::MAX as usize,
            "response matrix full: u32 CSR offsets cap observations at u32::MAX"
        );
        let t = self.tasks.intern(task) as usize;
        let w = self.workers.intern(worker) as usize;
        self.observations.push(Observation {
            task: t,
            worker: w,
            label,
        });
        // The cached groupings are stale now; the next accessor rebuilds
        // them in one pass.
        if self.csr.get().is_some() {
            self.csr = OnceLock::new();
        }
        Ok(())
    }

    /// The CSR groupings, building them on first access after a mutation.
    ///
    /// One counting-sort pass over the observation log: per-group order is
    /// insertion order (the sort is stable), so downstream reductions see a
    /// deterministic entry order regardless of when the index was built.
    fn csr(&self) -> &CsrIndex {
        self.csr.get_or_init(|| {
            let n_obs = self.observations.len();
            let mut task_offsets = vec![0u32; self.tasks.len() + 1];
            let mut worker_offsets = vec![0u32; self.workers.len() + 1];
            for o in &self.observations {
                task_offsets[o.task + 1] += 1;
                worker_offsets[o.worker + 1] += 1;
            }
            for i in 1..task_offsets.len() {
                task_offsets[i] += task_offsets[i - 1];
            }
            for i in 1..worker_offsets.len() {
                worker_offsets[i] += worker_offsets[i - 1];
            }
            let mut task_entries = vec![(0u32, 0u32); n_obs];
            let mut worker_entries = vec![(0u32, 0u32); n_obs];
            let mut task_cursor = task_offsets.clone();
            let mut worker_cursor = worker_offsets.clone();
            for o in &self.observations {
                task_entries[task_cursor[o.task] as usize] = (o.worker as u32, o.label);
                task_cursor[o.task] += 1;
                worker_entries[worker_cursor[o.worker] as usize] = (o.task as u32, o.label);
                worker_cursor[o.worker] += 1;
            }
            CsrIndex {
                task_offsets,
                task_entries,
                worker_offsets,
                worker_entries,
            }
        })
    }

    /// Number of labels in the space.
    #[inline]
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// Number of distinct tasks seen.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of distinct workers seen.
    #[inline]
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Total number of observations.
    #[inline]
    pub fn num_observations(&self) -> usize {
        self.observations.len()
    }

    /// True if no observations were recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// All observations, in insertion order.
    #[inline]
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// The task-id interner: dense index ↔ external [`TaskId`].
    #[inline]
    pub fn task_interner(&self) -> &IdInterner<TaskId> {
        &self.tasks
    }

    /// The worker-id interner: dense index ↔ external [`WorkerId`].
    #[inline]
    pub fn worker_interner(&self) -> &IdInterner<WorkerId> {
        &self.workers
    }

    /// The external id of dense task index `t`.
    pub fn task_id(&self, t: usize) -> TaskId {
        self.tasks.ids()[t]
    }

    /// The external id of dense worker index `w`.
    pub fn worker_id(&self, w: usize) -> WorkerId {
        self.workers.ids()[w]
    }

    /// The dense index of an external task id, if present.
    pub fn task_index(&self, task: TaskId) -> Option<usize> {
        self.tasks.dense(task).map(|d| d as usize)
    }

    /// The dense index of an external worker id, if present.
    pub fn worker_index(&self, worker: WorkerId) -> Option<usize> {
        self.workers.dense(worker).map(|d| d as usize)
    }

    /// The flat task grouping: `(offsets, entries)` where the slice
    /// `entries[offsets[t] as usize..offsets[t + 1] as usize]` holds task
    /// `t`'s `(worker, label)` pairs in insertion order.
    ///
    /// This is the hot-path view: EM E-steps walk one contiguous entry
    /// slice per task. Prefer it over [`Self::observations_for_task`] in
    /// inner loops.
    pub fn task_csr(&self) -> (&[u32], &[(u32, u32)]) {
        let csr = self.csr();
        (&csr.task_offsets, &csr.task_entries)
    }

    /// The flat worker grouping: `(offsets, entries)` where the slice
    /// `entries[offsets[w] as usize..offsets[w + 1] as usize]` holds worker
    /// `w`'s `(task, label)` pairs in insertion order.
    ///
    /// The hot-path view for M-step soft-count accumulation over workers.
    pub fn worker_csr(&self) -> (&[u32], &[(u32, u32)]) {
        let csr = self.csr();
        (&csr.worker_offsets, &csr.worker_entries)
    }

    /// Task `t`'s `(worker, label)` pairs as one contiguous slice.
    pub fn task_entries(&self, t: usize) -> &[(u32, u32)] {
        let csr = self.csr();
        &csr.task_entries[csr.task_offsets[t] as usize..csr.task_offsets[t + 1] as usize]
    }

    /// Worker `w`'s `(task, label)` pairs as one contiguous slice.
    pub fn worker_entries(&self, w: usize) -> &[(u32, u32)] {
        let csr = self.csr();
        &csr.worker_entries[csr.worker_offsets[w] as usize..csr.worker_offsets[w + 1] as usize]
    }

    /// Observations on dense task index `t`, in insertion order.
    pub fn observations_for_task(&self, t: usize) -> impl Iterator<Item = Observation> + '_ {
        self.task_entries(t).iter().map(move |&(w, label)| Observation {
            task: t,
            worker: w as usize,
            label,
        })
    }

    /// Observations by dense worker index `w`, in insertion order.
    pub fn observations_by_worker(&self, w: usize) -> impl Iterator<Item = Observation> + '_ {
        self.worker_entries(w).iter().map(move |&(t, label)| Observation {
            task: t as usize,
            worker: w,
            label,
        })
    }

    /// Number of answers each worker gave, indexed densely.
    pub fn answers_per_worker(&self) -> Vec<usize> {
        let offsets = &self.csr().worker_offsets;
        offsets.windows(2).map(|w| (w[1] - w[0]) as usize).collect()
    }

    /// Number of answers each task received, indexed densely.
    pub fn answers_per_task(&self) -> Vec<usize> {
        let offsets = &self.csr().task_offsets;
        offsets.windows(2).map(|w| (w[1] - w[0]) as usize).collect()
    }

    /// Per-task vote counts: `counts[t][l]` = how many workers labelled
    /// task `t` as `l`.
    pub fn vote_counts(&self) -> Vec<Vec<u32>> {
        let (offsets, entries) = self.task_csr();
        (0..self.num_tasks())
            .map(|t| {
                let mut row = vec![0u32; self.num_labels];
                for &(_, l) in &entries[offsets[t] as usize..offsets[t + 1] as usize] {
                    row[l as usize] += 1;
                }
                row
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::AnswerValue;

    fn tid(i: u64) -> TaskId {
        TaskId::new(i)
    }
    fn wid(i: u64) -> WorkerId {
        WorkerId::new(i)
    }

    #[test]
    fn push_interns_ids_densely() {
        let mut m = ResponseMatrix::new(2);
        m.push(tid(100), wid(7), 1).unwrap();
        m.push(tid(200), wid(7), 0).unwrap();
        m.push(tid(100), wid(9), 1).unwrap();
        assert_eq!(m.num_tasks(), 2);
        assert_eq!(m.num_workers(), 2);
        assert_eq!(m.num_observations(), 3);
        assert_eq!(m.task_index(tid(100)), Some(0));
        assert_eq!(m.task_index(tid(200)), Some(1));
        assert_eq!(m.task_id(0), tid(100));
        assert_eq!(m.worker_index(wid(9)), Some(1));
        assert_eq!(m.worker_id(0), wid(7));
        assert_eq!(m.task_index(tid(999)), None);
    }

    #[test]
    fn interners_expose_the_dense_maps() {
        let mut m = ResponseMatrix::new(2);
        m.push(tid(500), wid(42), 0).unwrap();
        assert_eq!(m.task_interner().dense(tid(500)), Some(0));
        assert_eq!(m.worker_interner().id(0), wid(42));
        assert!(!m.task_interner().is_identity(), "sparse ids detected");
    }

    #[test]
    fn out_of_range_label_rejected() {
        let mut m = ResponseMatrix::new(2);
        let err = m.push(tid(0), wid(0), 2).unwrap_err();
        assert!(matches!(err, CrowdError::LabelOutOfRange { label: 2, space: 2 }));
        assert!(m.is_empty());
    }

    #[test]
    fn groupings_are_consistent() {
        let mut m = ResponseMatrix::new(3);
        m.push(tid(0), wid(0), 0).unwrap();
        m.push(tid(0), wid(1), 1).unwrap();
        m.push(tid(1), wid(0), 2).unwrap();
        assert_eq!(m.answers_per_task(), vec![2, 1]);
        assert_eq!(m.answers_per_worker(), vec![2, 1]);
        let labels_t0: Vec<u32> = m.observations_for_task(0).map(|o| o.label).collect();
        assert_eq!(labels_t0, vec![0, 1]);
        let tasks_w0: Vec<usize> = m.observations_by_worker(0).map(|o| o.task).collect();
        assert_eq!(tasks_w0, vec![0, 1]);
    }

    #[test]
    fn vote_counts_tally_labels() {
        let mut m = ResponseMatrix::new(2);
        m.push(tid(0), wid(0), 1).unwrap();
        m.push(tid(0), wid(1), 1).unwrap();
        m.push(tid(0), wid(2), 0).unwrap();
        let counts = m.vote_counts();
        assert_eq!(counts, vec![vec![1, 2]]);
    }

    #[test]
    fn from_answers_requires_choices() {
        let good = vec![
            Answer::bare(tid(0), wid(0), AnswerValue::Choice(1)),
            Answer::bare(tid(0), wid(1), AnswerValue::Choice(0)),
        ];
        let m = ResponseMatrix::from_answers(2, &good).unwrap();
        assert_eq!(m.num_observations(), 2);

        let bad = vec![Answer::bare(tid(0), wid(0), AnswerValue::Number(0.5))];
        let err = ResponseMatrix::from_answers(2, &bad).unwrap_err();
        assert!(matches!(err, CrowdError::AnswerTypeMismatch { .. }));
    }

    #[test]
    #[should_panic(expected = "at least one label")]
    fn zero_labels_panics() {
        let _ = ResponseMatrix::new(0);
    }

    #[test]
    fn csr_entries_group_in_insertion_order() {
        let mut m = ResponseMatrix::new(3);
        m.push(tid(0), wid(0), 0).unwrap();
        m.push(tid(1), wid(0), 2).unwrap();
        m.push(tid(0), wid(1), 1).unwrap();
        let (t_off, t_entries) = m.task_csr();
        assert_eq!(t_off, &[0, 2, 3]);
        assert_eq!(t_entries, &[(0, 0), (1, 1), (0, 2)]);
        let (w_off, w_entries) = m.worker_csr();
        assert_eq!(w_off, &[0, 2, 3]);
        assert_eq!(w_entries, &[(0, 0), (1, 2), (0, 1)]);
        assert_eq!(m.task_entries(0), &[(0, 0), (1, 1)]);
        assert_eq!(m.worker_entries(1), &[(0, 1)]);
    }

    #[test]
    fn csr_rebuilds_after_interleaved_push() {
        let mut m = ResponseMatrix::new(2);
        m.push(tid(0), wid(0), 1).unwrap();
        assert_eq!(m.task_entries(0), &[(0, 1)]);
        // Push after a read: the cached index must be invalidated.
        m.push(tid(0), wid(1), 0).unwrap();
        m.push(tid(1), wid(0), 0).unwrap();
        assert_eq!(m.task_entries(0), &[(0, 1), (1, 0)]);
        assert_eq!(m.answers_per_task(), vec![2, 1]);
        assert_eq!(m.answers_per_worker(), vec![2, 1]);
    }
}
