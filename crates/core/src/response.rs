//! The response matrix: the canonical input to truth-inference algorithms.
//!
//! A [`ResponseMatrix`] packs a set of `(task, worker, label)` observations
//! into dense indices so EM-style algorithms can run over flat vectors.
//! It keeps bidirectional maps between external [`TaskId`]/[`WorkerId`]s and
//! internal dense indices.

use std::collections::HashMap;

use crate::answer::Answer;
use crate::error::{CrowdError, Result};
use crate::ids::{TaskId, WorkerId};

/// One categorical observation: worker `w` labelled task `t` as `label`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// Dense task index.
    pub task: usize,
    /// Dense worker index.
    pub worker: usize,
    /// Label index in `0..num_labels`.
    pub label: u32,
}

/// A dense-indexed view over categorical crowd answers.
#[derive(Debug, Clone, Default)]
pub struct ResponseMatrix {
    num_labels: usize,
    observations: Vec<Observation>,
    task_ids: Vec<TaskId>,
    worker_ids: Vec<WorkerId>,
    task_index: HashMap<TaskId, usize>,
    worker_index: HashMap<WorkerId, usize>,
    /// Observation indices grouped by task, for per-task iteration.
    by_task: Vec<Vec<usize>>,
    /// Observation indices grouped by worker, for per-worker iteration.
    by_worker: Vec<Vec<usize>>,
}

impl ResponseMatrix {
    /// Creates an empty matrix over a label space of size `num_labels`.
    ///
    /// # Panics
    /// Panics if `num_labels == 0`.
    pub fn new(num_labels: usize) -> Self {
        assert!(num_labels > 0, "response matrix needs at least one label");
        Self {
            num_labels,
            ..Default::default()
        }
    }

    /// Builds a matrix from [`Answer`]s, using each answer's `Choice` value.
    ///
    /// Fails if any answer is not a `Choice` or its label is out of range.
    pub fn from_answers<'a, I>(num_labels: usize, answers: I) -> Result<Self>
    where
        I: IntoIterator<Item = &'a Answer>,
    {
        let mut m = Self::new(num_labels);
        for a in answers {
            let label = a.value.as_choice().ok_or(CrowdError::AnswerTypeMismatch {
                expected: "choice",
                found: a.value.type_name(),
            })?;
            m.push(a.task, a.worker, label)?;
        }
        Ok(m)
    }

    /// Records that `worker` labelled `task` as `label`.
    pub fn push(&mut self, task: TaskId, worker: WorkerId, label: u32) -> Result<()> {
        if label as usize >= self.num_labels {
            return Err(CrowdError::LabelOutOfRange {
                label,
                space: self.num_labels as u32,
            });
        }
        let t = self.intern_task(task);
        let w = self.intern_worker(worker);
        let idx = self.observations.len();
        self.observations.push(Observation {
            task: t,
            worker: w,
            label,
        });
        self.by_task[t].push(idx);
        self.by_worker[w].push(idx);
        Ok(())
    }

    fn intern_task(&mut self, task: TaskId) -> usize {
        if let Some(&i) = self.task_index.get(&task) {
            return i;
        }
        let i = self.task_ids.len();
        self.task_ids.push(task);
        self.task_index.insert(task, i);
        self.by_task.push(Vec::new());
        i
    }

    fn intern_worker(&mut self, worker: WorkerId) -> usize {
        if let Some(&i) = self.worker_index.get(&worker) {
            return i;
        }
        let i = self.worker_ids.len();
        self.worker_ids.push(worker);
        self.worker_index.insert(worker, i);
        self.by_worker.push(Vec::new());
        i
    }

    /// Number of labels in the space.
    #[inline]
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// Number of distinct tasks seen.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.task_ids.len()
    }

    /// Number of distinct workers seen.
    #[inline]
    pub fn num_workers(&self) -> usize {
        self.worker_ids.len()
    }

    /// Total number of observations.
    #[inline]
    pub fn num_observations(&self) -> usize {
        self.observations.len()
    }

    /// True if no observations were recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// All observations, in insertion order.
    #[inline]
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// The external id of dense task index `t`.
    pub fn task_id(&self, t: usize) -> TaskId {
        self.task_ids[t]
    }

    /// The external id of dense worker index `w`.
    pub fn worker_id(&self, w: usize) -> WorkerId {
        self.worker_ids[w]
    }

    /// The dense index of an external task id, if present.
    pub fn task_index(&self, task: TaskId) -> Option<usize> {
        self.task_index.get(&task).copied()
    }

    /// The dense index of an external worker id, if present.
    pub fn worker_index(&self, worker: WorkerId) -> Option<usize> {
        self.worker_index.get(&worker).copied()
    }

    /// Observations on dense task index `t`.
    pub fn observations_for_task(&self, t: usize) -> impl Iterator<Item = &Observation> {
        self.by_task[t].iter().map(move |&i| &self.observations[i])
    }

    /// Observations by dense worker index `w`.
    pub fn observations_by_worker(&self, w: usize) -> impl Iterator<Item = &Observation> {
        self.by_worker[w].iter().map(move |&i| &self.observations[i])
    }

    /// Number of answers each worker gave, indexed densely.
    pub fn answers_per_worker(&self) -> Vec<usize> {
        self.by_worker.iter().map(Vec::len).collect()
    }

    /// Number of answers each task received, indexed densely.
    pub fn answers_per_task(&self) -> Vec<usize> {
        self.by_task.iter().map(Vec::len).collect()
    }

    /// Per-task vote counts: `counts[t][l]` = how many workers labelled
    /// task `t` as `l`.
    pub fn vote_counts(&self) -> Vec<Vec<u32>> {
        let mut counts = vec![vec![0u32; self.num_labels]; self.num_tasks()];
        for o in &self.observations {
            counts[o.task][o.label as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::AnswerValue;

    fn tid(i: u64) -> TaskId {
        TaskId::new(i)
    }
    fn wid(i: u64) -> WorkerId {
        WorkerId::new(i)
    }

    #[test]
    fn push_interns_ids_densely() {
        let mut m = ResponseMatrix::new(2);
        m.push(tid(100), wid(7), 1).unwrap();
        m.push(tid(200), wid(7), 0).unwrap();
        m.push(tid(100), wid(9), 1).unwrap();
        assert_eq!(m.num_tasks(), 2);
        assert_eq!(m.num_workers(), 2);
        assert_eq!(m.num_observations(), 3);
        assert_eq!(m.task_index(tid(100)), Some(0));
        assert_eq!(m.task_index(tid(200)), Some(1));
        assert_eq!(m.task_id(0), tid(100));
        assert_eq!(m.worker_index(wid(9)), Some(1));
        assert_eq!(m.worker_id(0), wid(7));
        assert_eq!(m.task_index(tid(999)), None);
    }

    #[test]
    fn out_of_range_label_rejected() {
        let mut m = ResponseMatrix::new(2);
        let err = m.push(tid(0), wid(0), 2).unwrap_err();
        assert!(matches!(err, CrowdError::LabelOutOfRange { label: 2, space: 2 }));
        assert!(m.is_empty());
    }

    #[test]
    fn groupings_are_consistent() {
        let mut m = ResponseMatrix::new(3);
        m.push(tid(0), wid(0), 0).unwrap();
        m.push(tid(0), wid(1), 1).unwrap();
        m.push(tid(1), wid(0), 2).unwrap();
        assert_eq!(m.answers_per_task(), vec![2, 1]);
        assert_eq!(m.answers_per_worker(), vec![2, 1]);
        let labels_t0: Vec<u32> = m.observations_for_task(0).map(|o| o.label).collect();
        assert_eq!(labels_t0, vec![0, 1]);
        let tasks_w0: Vec<usize> = m.observations_by_worker(0).map(|o| o.task).collect();
        assert_eq!(tasks_w0, vec![0, 1]);
    }

    #[test]
    fn vote_counts_tally_labels() {
        let mut m = ResponseMatrix::new(2);
        m.push(tid(0), wid(0), 1).unwrap();
        m.push(tid(0), wid(1), 1).unwrap();
        m.push(tid(0), wid(2), 0).unwrap();
        let counts = m.vote_counts();
        assert_eq!(counts, vec![vec![1, 2]]);
    }

    #[test]
    fn from_answers_requires_choices() {
        let good = vec![
            Answer::bare(tid(0), wid(0), AnswerValue::Choice(1)),
            Answer::bare(tid(0), wid(1), AnswerValue::Choice(0)),
        ];
        let m = ResponseMatrix::from_answers(2, &good).unwrap();
        assert_eq!(m.num_observations(), 2);

        let bad = vec![Answer::bare(tid(0), wid(0), AnswerValue::Number(0.5))];
        let err = ResponseMatrix::from_answers(2, &bad).unwrap_err();
        assert!(matches!(err, CrowdError::AnswerTypeMismatch { .. }));
    }

    #[test]
    #[should_panic(expected = "at least one label")]
    fn zero_labels_panics() {
        let _ = ResponseMatrix::new(0);
    }
}
