//! Request/outcome types for the [`CrowdOracle`](crate::traits::CrowdOracle)
//! surface.
//!
//! The redesigned oracle API is built around two values:
//!
//! * [`AskRequest`] — *what to buy*: a task, how many redundant answers
//!   (the `k` of "ask `k` distinct workers"), and which workers must not
//!   be assigned. Built with a fluent builder so call sites read like the
//!   HIT they describe.
//! * [`AskOutcome`] — *what was delivered*: the answers purchased plus an
//!   explicit [`shortfall`](AskOutcome::shortfall) when fewer than
//!   `redundancy` arrived. Partial delivery under budget exhaustion is a
//!   first-class state, not a silently short `Vec` — the failure mode of
//!   the old `ask_many` API, where callers could not distinguish "budget
//!   died after two answers" from "full delivery of two".
//!
//! Batches of requests ([`CrowdOracle::ask_batch`](crate::traits::CrowdOracle::ask_batch))
//! are the unit of concurrency: a platform may overlap the simulated (or
//! real) latency of every assignment in a batch, which is the dominant
//! latency lever of crowd execution (HIT batching, Marcus et al.).

use crate::answer::Answer;
use crate::error::CrowdError;
use crate::ids::{TaskId, WorkerId};
use crate::task::Task;

/// A single crowd purchase order: one task, `redundancy` distinct workers.
///
/// Borrowing the task keeps batch construction allocation-free in hot
/// operator loops; requests are cheap to build per wave.
#[derive(Debug, Clone)]
pub struct AskRequest<'a> {
    /// The task to pose.
    pub task: &'a Task,
    /// How many distinct workers to ask (≥ 1; 0 is clamped to 1 by
    /// implementations).
    pub redundancy: usize,
    /// Workers that must not be assigned to this request, on top of the
    /// platform's own "never the same worker twice per task" rule.
    /// Honored by implementations that control worker choice (the
    /// platform simulator); the default trait implementation, built on
    /// `ask_one`, cannot steer assignment and treats this as advisory.
    pub exclude: Vec<WorkerId>,
}

impl<'a> AskRequest<'a> {
    /// A request for one answer to `task` with no exclusions.
    pub fn new(task: &'a Task) -> Self {
        Self {
            task,
            redundancy: 1,
            exclude: Vec::new(),
        }
    }

    /// Sets the number of distinct workers to ask.
    pub fn with_redundancy(mut self, k: usize) -> Self {
        self.redundancy = k;
        self
    }

    /// Excludes one worker from assignment.
    pub fn without_worker(mut self, w: WorkerId) -> Self {
        self.exclude.push(w);
        self
    }

    /// Excludes several workers from assignment.
    pub fn without_workers(mut self, ws: impl IntoIterator<Item = WorkerId>) -> Self {
        self.exclude.extend(ws);
        self
    }

    /// Whether `w` is excluded from this request.
    pub fn excludes(&self, w: WorkerId) -> bool {
        self.exclude.contains(&w)
    }
}

/// What a request actually delivered.
///
/// `answers.len() == requested` and `shortfall == None` is full delivery.
/// Anything else is partial: the answers that *were* purchased are always
/// present (they were paid for — discarding them would corrupt cost
/// accounting), and `shortfall` records why delivery stopped.
#[derive(Debug, Clone, PartialEq)]
pub struct AskOutcome {
    /// The task the request was about.
    pub task: TaskId,
    /// The redundancy that was requested.
    pub requested: usize,
    /// Answers actually delivered, in assignment order.
    pub answers: Vec<Answer>,
    /// Why delivery stopped short of `requested`, if it did. Budget
    /// exhaustion and worker-pool exhaustion are the expected variants;
    /// any other error means the platform failed mid-batch after
    /// purchasing `answers`.
    pub shortfall: Option<CrowdError>,
}

impl AskOutcome {
    /// Full delivery of `answers` for a request.
    pub fn complete(task: TaskId, requested: usize, answers: Vec<Answer>) -> Self {
        Self {
            task,
            requested,
            answers,
            shortfall: None,
        }
    }

    /// An outcome that delivered nothing because the platform was already
    /// exhausted when the request's turn came (e.g. an earlier request in
    /// the batch drained the budget).
    pub fn starved(task: TaskId, requested: usize, why: CrowdError) -> Self {
        Self {
            task,
            requested,
            answers: Vec::new(),
            shortfall: Some(why),
        }
    }

    /// Number of answers delivered.
    #[must_use]
    pub fn delivered(&self) -> usize {
        self.answers.len()
    }

    /// Number of answers requested but not delivered.
    #[must_use]
    pub fn missing(&self) -> usize {
        self.requested.saturating_sub(self.answers.len())
    }

    /// True when every requested answer arrived.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.shortfall.is_none() && self.answers.len() >= self.requested
    }

    /// True when delivery stopped because of budget or worker-pool
    /// exhaustion (the graceful stop conditions callers usually absorb).
    pub fn stopped_by_exhaustion(&self) -> bool {
        matches!(&self.shortfall, Some(e) if e.is_resource_exhaustion())
    }

    /// True when the shortfall is specifically a drained budget — the one
    /// condition that starves every later request in a batch too.
    #[must_use]
    pub fn stopped_by_budget(&self) -> bool {
        matches!(&self.shortfall, Some(CrowdError::BudgetExhausted { .. }))
    }

    /// Consumes the outcome, yielding just the answers.
    pub fn into_answers(self) -> Vec<Answer> {
        self.answers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::AnswerValue;

    fn answer(t: u64, w: u64) -> Answer {
        Answer::bare(TaskId::new(t), WorkerId::new(w), AnswerValue::Choice(1))
    }

    #[test]
    fn builder_accumulates_exclusions_and_redundancy() {
        let task = Task::binary(TaskId::new(7), "q");
        let req = AskRequest::new(&task)
            .with_redundancy(5)
            .without_worker(WorkerId::new(1))
            .without_workers([WorkerId::new(2), WorkerId::new(3)]);
        assert_eq!(req.redundancy, 5);
        assert!(req.excludes(WorkerId::new(1)));
        assert!(req.excludes(WorkerId::new(3)));
        assert!(!req.excludes(WorkerId::new(4)));
    }

    #[test]
    fn outcome_classifies_delivery() {
        let full = AskOutcome::complete(TaskId::new(0), 2, vec![answer(0, 0), answer(0, 1)]);
        assert!(full.is_complete());
        assert_eq!(full.missing(), 0);
        assert!(!full.stopped_by_exhaustion());

        let partial = AskOutcome {
            task: TaskId::new(0),
            requested: 3,
            answers: vec![answer(0, 0)],
            shortfall: Some(CrowdError::BudgetExhausted {
                requested: 1.0,
                remaining: 0.0,
            }),
        };
        assert!(!partial.is_complete());
        assert_eq!(partial.delivered(), 1);
        assert_eq!(partial.missing(), 2);
        assert!(partial.stopped_by_exhaustion());
        assert!(partial.stopped_by_budget());

        let no_pool = AskOutcome::starved(TaskId::new(1), 2, CrowdError::NoWorkerAvailable);
        assert!(no_pool.stopped_by_exhaustion());
        assert!(!no_pool.stopped_by_budget());
        assert_eq!(no_pool.delivered(), 0);
    }
}
