//! Categorical label spaces.
//!
//! A [`LabelSpace`] names the `k` possible answers of a single-choice task
//! ("yes"/"no", "positive"/"neutral"/"negative", …). Algorithms work with
//! dense label indices `0..k`; the space provides the mapping back to names.

use std::fmt;
use std::sync::Arc;

/// An immutable, cheaply-cloneable set of named labels.
///
/// Cloning a `LabelSpace` is an `Arc` bump, so tasks can share one space
/// without duplicating the name table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelSpace {
    names: Arc<[String]>,
}

impl LabelSpace {
    /// Creates a label space from label names.
    ///
    /// # Panics
    /// Panics if `names` is empty — a zero-label classification task is
    /// meaningless and would make every downstream division by `k` unsound.
    pub fn new<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        assert!(!names.is_empty(), "label space must contain at least one label");
        Self {
            names: names.into(),
        }
    }

    /// A binary `{"no", "yes"}` space: index 0 = "no", index 1 = "yes".
    pub fn binary() -> Self {
        Self::new(["no", "yes"])
    }

    /// An anonymous space of `k` labels named `"c0".."c{k-1}"`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn anonymous(k: usize) -> Self {
        assert!(k > 0, "label space must contain at least one label");
        Self::new((0..k).map(|i| format!("c{i}")))
    }

    /// Number of labels in the space.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Always false; spaces are non-empty by construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Name of the label at `index`, or `None` if out of range.
    pub fn name(&self, index: u32) -> Option<&str> {
        self.names.get(index as usize).map(String::as_str)
    }

    /// Index of the label with the given name, or `None` if absent.
    pub fn index_of(&self, name: &str) -> Option<u32> {
        self.names.iter().position(|n| n == name).map(|i| i as u32)
    }

    /// True if `index` is a valid label index for this space.
    #[inline]
    pub fn contains(&self, index: u32) -> bool {
        (index as usize) < self.names.len()
    }

    /// Iterates over `(index, name)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, n.as_str()))
    }
}

impl fmt::Display for LabelSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, name) in self.names.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_space_has_expected_layout() {
        let s = LabelSpace::binary();
        assert_eq!(s.len(), 2);
        assert_eq!(s.name(0), Some("no"));
        assert_eq!(s.name(1), Some("yes"));
        assert_eq!(s.index_of("yes"), Some(1));
        assert_eq!(s.index_of("maybe"), None);
        assert!(s.contains(1));
        assert!(!s.contains(2));
    }

    #[test]
    fn anonymous_space_names() {
        let s = LabelSpace::anonymous(3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.name(2), Some("c2"));
        assert_eq!(s.index_of("c0"), Some(0));
    }

    #[test]
    #[should_panic(expected = "at least one label")]
    fn empty_space_panics() {
        let _ = LabelSpace::new(Vec::<String>::new());
    }

    #[test]
    fn clone_is_shallow_and_equal() {
        let a = LabelSpace::new(["x", "y"]);
        let b = a.clone();
        assert_eq!(a, b);
        // Arc-backed: the names slice is shared.
        assert!(std::ptr::eq(a.names.as_ptr(), b.names.as_ptr()));
    }

    #[test]
    fn display_lists_labels() {
        let s = LabelSpace::new(["cat", "dog"]);
        assert_eq!(s.to_string(), "{cat, dog}");
    }

    #[test]
    fn iter_yields_indexed_names() {
        let s = LabelSpace::new(["a", "b", "c"]);
        let v: Vec<(u32, &str)> = s.iter().collect();
        assert_eq!(v, vec![(0, "a"), (1, "b"), (2, "c")]);
    }
}
