//! Dense interning of sparse external ids.
//!
//! Real crowd platforms hand out sparse, non-contiguous ids (database row
//! keys, UUID-derived integers, per-tenant offsets). The EM kernels, by
//! contrast, want to index flat arrays — posteriors, confusion matrices,
//! CSR offsets — by a *dense* `0..n` integer. [`IdInterner`] is the single
//! sanctioned bridge between the two worlds: it assigns each distinct
//! external id the next dense `u32` slot in first-seen order and keeps the
//! bidirectional mapping.
//!
//! Dense indices are deliberately `u32`, not `usize`: at million-scale the
//! response CSR stores one index per observation, and halving the index
//! width roughly halves the hot working set (see `DESIGN.md` §11). An
//! interner refuses to hand out more than `u32::MAX` slots.
//!
//! The historical footgun this replaces: `TaskId::index()` casts the *raw*
//! id to `usize`, which silently corrupts CSR indexing the moment ids are
//! not dense-from-zero. Kernel-facing code should obtain dense indices
//! from an interner (or a [`crate::response::ResponseMatrix`], which embeds
//! two) and use [`IdInterner::expect_dense`] where density is assumed —
//! that path debug-asserts instead of corrupting.

use std::collections::HashMap;
use std::hash::Hash;

/// Maps sparse external ids to dense `u32` indices in first-seen order.
///
/// Works for any id type that round-trips through `u64` — in this
/// workspace that is [`crate::ids::TaskId`], [`crate::ids::WorkerId`] and
/// [`crate::ids::ItemId`].
///
/// ```
/// use crowdkit_core::ids::TaskId;
/// use crowdkit_core::intern::IdInterner;
///
/// let mut it = IdInterner::new();
/// assert_eq!(it.intern(TaskId::new(900)), 0);
/// assert_eq!(it.intern(TaskId::new(3)), 1);
/// assert_eq!(it.intern(TaskId::new(900)), 0); // idempotent
/// assert_eq!(it.dense(TaskId::new(3)), Some(1));
/// assert_eq!(it.id(1), TaskId::new(3));
/// ```
#[derive(Debug, Clone)]
pub struct IdInterner<I> {
    ids: Vec<I>,
    dense: HashMap<I, u32>,
}

impl<I> Default for IdInterner<I> {
    fn default() -> Self {
        Self {
            ids: Vec::new(),
            dense: HashMap::new(),
        }
    }
}

impl<I: Copy + Eq + Hash> IdInterner<I> {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self {
            ids: Vec::new(),
            dense: HashMap::new(),
        }
    }

    /// Creates an interner preallocated for roughly `capacity` distinct ids.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            ids: Vec::with_capacity(capacity),
            dense: HashMap::with_capacity(capacity),
        }
    }

    /// Returns the dense index of `id`, assigning the next free slot on
    /// first sight.
    ///
    /// # Panics
    /// Panics if the interner already holds `u32::MAX` distinct ids — the
    /// flat-array layouts this feeds are all `u32`-indexed by design.
    pub fn intern(&mut self, id: I) -> u32 {
        if let Some(&d) = self.dense.get(&id) {
            return d;
        }
        let d = u32::try_from(self.ids.len()).expect("IdInterner exceeded u32::MAX dense slots"); // crowdkit-lint: allow(PANIC001) — a 4-billion-entity workload has outgrown u32 CSR indexing; failing loudly beats silent truncation
        self.ids.push(id);
        self.dense.insert(id, d);
        d
    }

    /// The dense index of `id`, if it has been interned.
    #[inline]
    pub fn dense(&self, id: I) -> Option<u32> {
        self.dense.get(&id).copied()
    }

    /// The dense index of an id the caller believes is interned.
    ///
    /// In debug builds an unknown id panics with a pointed message — this
    /// is the guard rail for code that used to assume raw ids were dense
    /// and index arrays with `id.index()` directly. In release builds the
    /// lookup failure still surfaces (as `u32::MAX`, which blows the
    /// downstream bounds check) rather than silently aliasing slot 0.
    #[inline]
    #[track_caller]
    pub fn expect_dense(&self, id: I) -> u32 {
        match self.dense(id) {
            Some(d) => d,
            None => {
                debug_assert!(
                    false,
                    "id was never interned: dense indexing through raw ids is the \
                     TaskId::index() footgun this interner exists to prevent"
                );
                u32::MAX
            }
        }
    }

    /// The external id stored at dense index `d`.
    ///
    /// # Panics
    /// Panics if `d` is out of range.
    #[inline]
    pub fn id(&self, d: u32) -> I {
        self.ids[d as usize]
    }

    /// Number of distinct ids interned.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when nothing has been interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// All interned ids, dense-index order.
    #[inline]
    pub fn ids(&self) -> &[I] {
        &self.ids
    }

    /// Reserves space for `additional` more distinct ids.
    pub fn reserve(&mut self, additional: usize) {
        self.ids.reserve(additional);
        self.dense.reserve(additional);
    }
}

impl<I: Copy + Eq + Hash + Into<u64>> IdInterner<I> {
    /// True when every interned id equals its dense index — i.e. the
    /// external ids happen to be dense-from-zero, so `id.index()`-style
    /// direct indexing *would* have been safe. Diagnostics only; code
    /// should not branch semantics on this.
    pub fn is_identity(&self) -> bool {
        self.ids
            .iter()
            .enumerate()
            .all(|(i, &id)| id.into() == i as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{TaskId, WorkerId};

    #[test]
    fn interns_in_first_seen_order() {
        let mut it = IdInterner::new();
        assert_eq!(it.intern(WorkerId::new(40)), 0);
        assert_eq!(it.intern(WorkerId::new(7)), 1);
        assert_eq!(it.intern(WorkerId::new(40)), 0);
        assert_eq!(it.len(), 2);
        assert_eq!(it.ids(), &[WorkerId::new(40), WorkerId::new(7)]);
        assert_eq!(it.id(1), WorkerId::new(7));
        assert_eq!(it.dense(WorkerId::new(99)), None);
    }

    #[test]
    fn expect_dense_returns_known_ids() {
        let mut it = IdInterner::new();
        it.intern(TaskId::new(123));
        assert_eq!(it.expect_dense(TaskId::new(123)), 0);
    }

    #[test]
    #[should_panic(expected = "never interned")]
    #[cfg(debug_assertions)]
    fn expect_dense_debug_asserts_on_unknown_ids() {
        let it: IdInterner<TaskId> = IdInterner::new();
        let _ = it.expect_dense(TaskId::new(5));
    }

    #[test]
    fn identity_detection() {
        let mut it = IdInterner::new();
        it.intern(TaskId::new(0));
        it.intern(TaskId::new(1));
        assert!(it.is_identity());
        it.intern(TaskId::new(9));
        assert!(!it.is_identity());
    }

    #[test]
    fn with_capacity_and_reserve_do_not_change_semantics() {
        let mut it = IdInterner::with_capacity(8);
        it.reserve(16);
        assert!(it.is_empty());
        assert_eq!(it.intern(TaskId::new(2)), 0);
        assert!(!it.is_empty());
    }
}
