//! # crowdkit-core
//!
//! Shared data model for the `crowdkit` crowdsourced data management system.
//!
//! This crate defines the vocabulary every other crate speaks:
//!
//! * [`ids`] — strongly-typed identifiers for tasks, workers and items.
//! * [`intern`] — dense `u32` interning of sparse external ids (the
//!   bridge from platform ids to flat-array kernel indices).
//! * [`label`] — categorical label spaces for classification tasks.
//! * [`task`] — the task model (`SingleChoice`, `Numeric`, `Pairwise`,
//!   `OpenText`, `Collection`, `Fill`).
//! * [`answer`] — worker answers and answer values.
//! * [`response`] — the dense response matrix consumed by truth-inference
//!   algorithms.
//! * [`traits`] — the extension points: [`traits::CrowdOracle`],
//!   [`traits::TruthInferencer`], [`traits::StoppingRule`].
//! * [`par`] — deterministic data-parallel primitives (the scoped-pool
//!   chunking pattern shared by the simulator and the inference kernels).
//! * [`budget`] — cost models and budget ledgers.
//! * [`metrics`] — evaluation metrics (accuracy, F1, Kendall tau, cluster
//!   F1, MAE/RMSE, NDCG, entropy, …).
//! * [`error`] — the common error type.
//!
//! The crate is dependency-light by design; algorithm crates
//! (`crowdkit-truth`, `crowdkit-ops`, …) and the platform simulator
//! (`crowdkit-sim`) all build on top of it.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod answer;
pub mod ask;
pub mod budget;
pub mod error;
pub mod ids;
pub mod intern;
pub mod label;
pub mod metrics;
pub mod par;
pub mod response;
pub mod task;
pub mod traits;

pub use answer::{Answer, AnswerValue, Preference};
pub use ask::{AskOutcome, AskRequest};
pub use budget::{Budget, CostLedger, CostModel};
pub use error::{CrowdError, Result};
pub use ids::{ItemId, TaskId, WorkerId};
pub use intern::IdInterner;
pub use label::LabelSpace;
pub use response::ResponseMatrix;
pub use task::{Task, TaskKind};
pub use traits::{CrowdOracle, InferenceResult, StoppingRule, TruthInferencer};
