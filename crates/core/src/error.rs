//! The common error type shared across all crowdkit crates.

use std::fmt;

/// Convenience result alias used throughout crowdkit.
pub type Result<T> = std::result::Result<T, CrowdError>;

/// Errors produced by crowdkit components.
#[derive(Debug, Clone, PartialEq)]
pub enum CrowdError {
    /// The budget has been exhausted; no more crowd questions can be asked.
    BudgetExhausted {
        /// Cost of the operation that was attempted.
        requested: f64,
        /// Budget remaining when the operation was attempted.
        remaining: f64,
    },
    /// No worker was available to take the task (empty pool, all busy, or
    /// all excluded for this task).
    NoWorkerAvailable,
    /// An answer had a value type incompatible with the task kind, e.g. a
    /// numeric answer for a single-choice task.
    AnswerTypeMismatch {
        /// Human-readable description of what was expected.
        expected: &'static str,
        /// Human-readable description of what was found.
        found: &'static str,
    },
    /// A label index was outside the task's label space.
    LabelOutOfRange {
        /// The offending label index.
        label: u32,
        /// Number of labels in the space.
        space: u32,
    },
    /// An algorithm received an empty input it cannot work with.
    EmptyInput(&'static str),
    /// An algorithm was given inconsistent dimensions (e.g. a response
    /// matrix whose label count differs from the task's label space).
    DimensionMismatch(String),
    /// Failure parsing a declarative program (SQL or Datalog).
    Parse {
        /// Line number (1-based) where the error was detected.
        line: usize,
        /// Column number (1-based) where the error was detected.
        column: usize,
        /// Description of the problem.
        message: String,
    },
    /// A declarative program was well-formed but semantically invalid
    /// (unknown relation, unbound variable, unstratifiable negation, …).
    Semantic(String),
    /// Name/type resolution against the catalog failed (unknown column or
    /// table, ambiguous reference, predicate type mismatch). Carries the
    /// source position of the offending token so tools can point at it.
    Bind {
        /// Line number (1-based) of the offending reference.
        line: usize,
        /// Column number (1-based) of the offending reference.
        column: usize,
        /// Description of the problem.
        message: String,
    },
    /// Query/plan execution failed.
    Execution(String),
    /// The operation is not supported by this component.
    Unsupported(&'static str),
}

impl fmt::Display for CrowdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrowdError::BudgetExhausted {
                requested,
                remaining,
            } => write!(
                f,
                "budget exhausted: requested {requested:.4} units but only {remaining:.4} remain"
            ),
            CrowdError::NoWorkerAvailable => write!(f, "no worker available for the task"),
            CrowdError::AnswerTypeMismatch { expected, found } => {
                write!(f, "answer type mismatch: expected {expected}, found {found}")
            }
            CrowdError::LabelOutOfRange { label, space } => {
                write!(f, "label {label} out of range for label space of size {space}")
            }
            CrowdError::EmptyInput(what) => write!(f, "empty input: {what}"),
            CrowdError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            CrowdError::Parse {
                line,
                column,
                message,
            } => write!(f, "parse error at {line}:{column}: {message}"),
            CrowdError::Semantic(msg) => write!(f, "semantic error: {msg}"),
            CrowdError::Bind {
                line,
                column,
                message,
            } => write!(f, "bind error at {line}:{column}: {message}"),
            CrowdError::Execution(msg) => write!(f, "execution error: {msg}"),
            CrowdError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
        }
    }
}

impl std::error::Error for CrowdError {}

impl CrowdError {
    /// Constructs a parse error.
    pub fn parse(line: usize, column: usize, message: impl Into<String>) -> Self {
        CrowdError::Parse {
            line,
            column,
            message: message.into(),
        }
    }

    /// Constructs a bind (name/type resolution) error.
    pub fn bind(line: usize, column: usize, message: impl Into<String>) -> Self {
        CrowdError::Bind {
            line,
            column,
            message: message.into(),
        }
    }

    /// True when the error means "stop asking the crowd" (budget exhausted
    /// or no workers) rather than a programming/logic error.
    pub fn is_resource_exhaustion(&self) -> bool {
        matches!(
            self,
            CrowdError::BudgetExhausted { .. } | CrowdError::NoWorkerAvailable
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = CrowdError::BudgetExhausted {
            requested: 1.0,
            remaining: 0.25,
        };
        let s = e.to_string();
        assert!(s.contains("budget exhausted"));
        assert!(s.contains("1.0000"));
        assert!(s.contains("0.2500"));

        let p = CrowdError::parse(3, 14, "unexpected token `FROM`");
        assert_eq!(p.to_string(), "parse error at 3:14: unexpected token `FROM`");

        let b = CrowdError::bind(2, 8, "unknown column `price`");
        assert_eq!(b.to_string(), "bind error at 2:8: unknown column `price`");
        assert!(!b.is_resource_exhaustion());
    }

    #[test]
    fn resource_exhaustion_classification() {
        assert!(CrowdError::NoWorkerAvailable.is_resource_exhaustion());
        assert!(CrowdError::BudgetExhausted {
            requested: 1.0,
            remaining: 0.0
        }
        .is_resource_exhaustion());
        assert!(!CrowdError::EmptyInput("answers").is_resource_exhaustion());
        assert!(!CrowdError::Semantic("bad".into()).is_resource_exhaustion());
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CrowdError::NoWorkerAvailable);
    }
}
