//! Deterministic data-parallel primitives shared across the workspace.
//!
//! Both the platform simulator (`crowdkit-sim`) and the truth-inference
//! kernels (`crowdkit-truth`) parallelize with the same scoped-pool
//! pattern: the input is split into **contiguous, position-determined
//! chunks** (never work-stealing), each chunk is processed by one scoped
//! thread, and outputs are reassembled in chunk order. Because chunking
//! depends only on input length — and every per-item computation is a pure
//! function of its item — results are byte-identical at any thread count.
//! Thread count is a perf knob, not a semantics knob.
//!
//! The rule the helpers enforce (the *deterministic-reduction rule*): a
//! parallel region may only write disjoint, position-assigned outputs.
//! Cross-item floating-point reductions (priors, convergence deltas, RMS
//! norms) stay sequential in a fixed order, or are folded from per-shard
//! partials in shard order with shard boundaries independent of the thread
//! count.

/// Applies `f` to every item, fanning out across `threads` scoped workers,
/// and returns the results **in input order**.
///
/// Items are split into contiguous chunks (one per worker) so the output
/// permutation — and therefore every determinism property downstream — is
/// independent of scheduling. Falls back to a plain sequential map when a
/// single thread is requested or the input is too small to be worth the
/// spawn overhead.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    const MIN_ITEMS_PER_THREAD: usize = 2;
    if threads == 1 || items.len() < MIN_ITEMS_PER_THREAD * 2 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let chunk_len = items.len().div_ceil(threads);
    let chunks: Vec<(usize, &[T])> = items
        .chunks(chunk_len)
        .enumerate()
        .map(|(c, chunk)| (c * chunk_len, chunk))
        .collect();

    let results: Vec<Vec<R>> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|&(base, chunk)| {
                let f = &f;
                s.spawn(move |_| {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(i, t)| f(base + i, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel_map worker panicked")) // crowdkit-lint: allow(PANIC001) — re-raises a child-thread panic; join fails only when the child panicked
            .collect()
    })
    .expect("parallel_map scope panicked"); // crowdkit-lint: allow(PANIC001) — scope errors only report child panics, which must propagate

    let mut out = Vec::with_capacity(items.len());
    for chunk in results {
        out.extend(chunk);
    }
    out
}

/// Splits `data` — a flat buffer of consecutive fixed-size items, each
/// `item_len` elements — into contiguous runs of whole items and applies
/// `f(first_item_index, run)` to each run on its own scoped thread.
///
/// This is the mutable counterpart of [`parallel_map`] for kernels that
/// fill a preallocated flat output (posterior tables, confusion matrices)
/// without per-call allocation. The runs partition `data`, so writes are
/// disjoint by construction; as long as `f` computes each item purely from
/// shared read-only state, the buffer contents are byte-identical at any
/// thread count.
///
/// With `threads <= 1` (or a single item) `f` is invoked once on the whole
/// buffer, making the sequential path zero-overhead.
///
/// # Panics
/// Panics if `item_len == 0` or `data.len()` is not a multiple of
/// `item_len`.
pub fn parallel_items_mut<T, F>(data: &mut [T], item_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(item_len > 0, "item_len must be positive");
    assert!(
        data.len().is_multiple_of(item_len),
        "buffer length {} is not a multiple of item length {}",
        data.len(),
        item_len
    );
    let n_items = data.len() / item_len;
    if n_items == 0 {
        return;
    }
    let threads = threads.max(1).min(n_items);
    if threads == 1 {
        f(0, data);
        return;
    }

    let chunk_items = n_items.div_ceil(threads);
    crossbeam::thread::scope(|s| {
        for (c, chunk) in data.chunks_mut(chunk_items * item_len).enumerate() {
            let f = &f;
            s.spawn(move |_| f(c * chunk_items, chunk));
        }
    })
    .expect("parallel_items_mut scope panicked"); // crowdkit-lint: allow(PANIC001) — scope errors only report child panics, which must propagate
}

/// The active-set counterpart of [`parallel_items_mut`]: processes one
/// item per entry of `active` (a worklist of entity indices), sharding the
/// **worklist** — not the full entity range — into contiguous chunks.
///
/// `scratch` is a compact output buffer with one `item_len`-wide slot per
/// active entry (extra trailing capacity is ignored, so a full-size arena
/// can be reused as the worklist shrinks). `f(slot, entity, item)` fills
/// slot `slot` — which corresponds to entity `active[slot]` — from shared
/// read-only state. Because chunk boundaries depend only on
/// `active.len()`, and each slot is written exactly once, the buffer is
/// byte-identical at any thread count; callers scatter the compact slots
/// back to their full tables in a sequential pass, preserving the
/// deterministic-reduction rule.
///
/// This is the sharding primitive behind the sparse incremental E-steps:
/// late EM iterations hand in a worklist holding only the unconverged
/// frontier, so both the compute *and* the spawn fan-out scale with the
/// active set instead of the full task count.
///
/// # Panics
/// Panics if `item_len == 0` or `scratch` is shorter than
/// `active.len() * item_len`.
pub fn parallel_active_items_mut<T, F>(
    scratch: &mut [T],
    item_len: usize,
    active: &[u32],
    threads: usize,
    f: F,
) where
    T: Send,
    F: Fn(usize, usize, &mut [T]) + Sync,
{
    assert!(item_len > 0, "item_len must be positive");
    let used = active
        .len()
        .checked_mul(item_len)
        .expect("active worklist size overflow"); // crowdkit-lint: allow(PANIC001) — a worklist this size cannot be allocated anyway; overflow here is a caller bug
    assert!(
        scratch.len() >= used,
        "scratch holds {} elements but the worklist needs {used}",
        scratch.len()
    );
    parallel_items_mut(&mut scratch[..used], item_len, threads, |slot0, run| {
        for (i, item) in run.chunks_mut(item_len).enumerate() {
            let slot = slot0 + i;
            f(slot, active[slot] as usize, item);
        }
    });
}

/// Default worker-pool width: the machine's available parallelism, capped
/// to keep spawn overhead negligible for the workloads in this repo.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order_at_any_width() {
        let items: Vec<u64> = (0..103).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = parallel_map(&items, threads, |_, &x| x * x);
            assert_eq!(got, expect, "order broken at {threads} threads");
        }
    }

    #[test]
    fn parallel_map_passes_global_indices() {
        let items = vec!["a"; 37];
        let got = parallel_map(&items, 4, |i, _| i);
        assert_eq!(got, (0..37).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_tiny_inputs() {
        let empty: Vec<u8> = vec![];
        assert!(parallel_map(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[5u8], 8, |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn items_mut_fills_every_item_exactly_once() {
        // 41 items of width 3, processed at several widths: each item is
        // stamped with its global index, so any overlap or gap would show.
        let expect: Vec<usize> = (0..41).flat_map(|i| [i, i, i]).collect();
        for threads in [1, 2, 5, 8, 64] {
            let mut buf = vec![usize::MAX; 41 * 3];
            parallel_items_mut(&mut buf, 3, threads, |first, run| {
                for (j, item) in run.chunks_mut(3).enumerate() {
                    item.fill(first + j);
                }
            });
            assert_eq!(buf, expect, "bad fill at {threads} threads");
        }
    }

    #[test]
    fn items_mut_handles_empty_and_single_item() {
        let mut empty: Vec<u8> = vec![];
        parallel_items_mut(&mut empty, 4, 8, |_, _| panic!("no items to visit"));
        let mut one = vec![0u8; 4];
        parallel_items_mut(&mut one, 4, 8, |first, run| {
            assert_eq!(first, 0);
            run.fill(7);
        });
        assert_eq!(one, vec![7; 4]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn items_mut_rejects_ragged_buffers() {
        let mut buf = vec![0u8; 7];
        parallel_items_mut(&mut buf, 3, 2, |_, _| {});
    }

    #[test]
    fn active_items_fill_only_worklist_slots_at_any_width() {
        // Worklist picks every third entity out of 30; each slot must be
        // stamped (slot, entity) with entity = active[slot], identically
        // at every thread count, and trailing arena capacity untouched.
        let active: Vec<u32> = (0..30).step_by(3).map(|e| e as u32).collect();
        let expect: Vec<usize> = active
            .iter()
            .enumerate()
            .flat_map(|(s, &e)| [s, e as usize])
            .collect();
        for threads in [1, 2, 5, 64] {
            let mut scratch = vec![usize::MAX; 30 * 2]; // full-size arena
            parallel_active_items_mut(&mut scratch, 2, &active, threads, |slot, entity, item| {
                item[0] = slot;
                item[1] = entity;
            });
            assert_eq!(&scratch[..expect.len()], &expect[..], "bad fill at {threads} threads");
            assert!(scratch[expect.len()..].iter().all(|&x| x == usize::MAX));
        }
    }

    #[test]
    fn active_items_handle_an_empty_worklist() {
        let mut scratch = vec![0u8; 8];
        parallel_active_items_mut(&mut scratch, 4, &[], 8, |_, _, _| {
            panic!("no active entities to visit")
        });
        assert_eq!(scratch, vec![0u8; 8]);
    }

    #[test]
    #[should_panic(expected = "scratch holds")]
    fn active_items_reject_undersized_scratch() {
        let mut scratch = vec![0u8; 3];
        parallel_active_items_mut(&mut scratch, 2, &[0, 1], 1, |_, _, _| {});
    }

    #[test]
    fn default_threads_is_positive_and_capped() {
        let n = default_threads();
        assert!((1..=16).contains(&n));
    }
}
