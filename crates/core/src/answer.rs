//! Worker answers.

use crate::ids::{TaskId, WorkerId};

/// Which side of a pairwise comparison the worker preferred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Preference {
    /// The left item ranks higher.
    Left,
    /// The right item ranks higher.
    Right,
}

impl Preference {
    /// The opposite preference.
    #[inline]
    pub fn flip(self) -> Self {
        match self {
            Preference::Left => Preference::Right,
            Preference::Right => Preference::Left,
        }
    }
}

/// The payload of an answer; the valid variant depends on the task kind.
#[derive(Debug, Clone, PartialEq)]
pub enum AnswerValue {
    /// Label index for a single-choice task.
    Choice(u32),
    /// Value for a numeric task.
    Number(f64),
    /// Free text for open-text / fill tasks.
    Text(String),
    /// Preference for a pairwise comparison task.
    Prefer(Preference),
    /// Items contributed to a collection task.
    Items(Vec<String>),
}

impl AnswerValue {
    /// Short name of the variant, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            AnswerValue::Choice(_) => "choice",
            AnswerValue::Number(_) => "number",
            AnswerValue::Text(_) => "text",
            AnswerValue::Prefer(_) => "preference",
            AnswerValue::Items(_) => "items",
        }
    }

    /// The label index, if this is a `Choice`.
    pub fn as_choice(&self) -> Option<u32> {
        match self {
            AnswerValue::Choice(c) => Some(*c),
            _ => None,
        }
    }

    /// The number, if this is a `Number`.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            AnswerValue::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The text, if this is a `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            AnswerValue::Text(t) => Some(t),
            _ => None,
        }
    }

    /// The preference, if this is a `Prefer`.
    pub fn as_preference(&self) -> Option<Preference> {
        match self {
            AnswerValue::Prefer(p) => Some(*p),
            _ => None,
        }
    }

    /// The item list, if this is an `Items`.
    pub fn as_items(&self) -> Option<&[String]> {
        match self {
            AnswerValue::Items(v) => Some(v),
            _ => None,
        }
    }

    /// Semantic equality for scoring: numbers compare with a small epsilon,
    /// texts compare case-insensitively after trimming, items compare as
    /// sets (order-insensitive, deduplicated).
    pub fn matches(&self, other: &AnswerValue) -> bool {
        match (self, other) {
            (AnswerValue::Choice(a), AnswerValue::Choice(b)) => a == b,
            (AnswerValue::Number(a), AnswerValue::Number(b)) => (a - b).abs() < 1e-9,
            (AnswerValue::Text(a), AnswerValue::Text(b)) => {
                a.trim().eq_ignore_ascii_case(b.trim())
            }
            (AnswerValue::Prefer(a), AnswerValue::Prefer(b)) => a == b,
            (AnswerValue::Items(a), AnswerValue::Items(b)) => {
                let norm = |v: &[String]| {
                    let mut s: Vec<String> =
                        v.iter().map(|x| x.trim().to_ascii_lowercase()).collect();
                    s.sort();
                    s.dedup();
                    s
                };
                norm(a) == norm(b)
            }
            _ => false,
        }
    }
}

/// One worker's response to one task.
#[derive(Debug, Clone, PartialEq)]
pub struct Answer {
    /// The task answered.
    pub task: TaskId,
    /// The worker who answered.
    pub worker: WorkerId,
    /// The answer payload.
    pub value: AnswerValue,
    /// Simulation time at which the answer arrived (seconds).
    pub submitted_at: f64,
    /// What this answer cost, in budget units.
    pub cost: f64,
}

impl Answer {
    /// Creates an answer with zero timestamp and cost (useful in tests and
    /// offline datasets where economics don't matter).
    pub fn bare(task: TaskId, worker: WorkerId, value: AnswerValue) -> Self {
        Self {
            task,
            worker,
            value,
            submitted_at: 0.0,
            cost: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preference_flip_is_involutive() {
        assert_eq!(Preference::Left.flip(), Preference::Right);
        assert_eq!(Preference::Left.flip().flip(), Preference::Left);
    }

    #[test]
    fn accessors_return_only_matching_variant() {
        let c = AnswerValue::Choice(2);
        assert_eq!(c.as_choice(), Some(2));
        assert_eq!(c.as_number(), None);
        assert_eq!(c.as_text(), None);

        let t = AnswerValue::Text("hello".into());
        assert_eq!(t.as_text(), Some("hello"));
        assert_eq!(t.as_choice(), None);
    }

    #[test]
    fn matches_is_tolerant_for_numbers_and_text() {
        assert!(AnswerValue::Number(1.0).matches(&AnswerValue::Number(1.0 + 1e-12)));
        assert!(!AnswerValue::Number(1.0).matches(&AnswerValue::Number(1.001)));
        assert!(AnswerValue::Text(" Paris ".into()).matches(&AnswerValue::Text("paris".into())));
        assert!(!AnswerValue::Text("Paris".into()).matches(&AnswerValue::Text("Lyon".into())));
    }

    #[test]
    fn matches_items_as_sets() {
        let a = AnswerValue::Items(vec!["b".into(), "A".into(), "a".into()]);
        let b = AnswerValue::Items(vec!["a".into(), "B".into()]);
        assert!(a.matches(&b));
        let c = AnswerValue::Items(vec!["a".into()]);
        assert!(!a.matches(&c));
    }

    #[test]
    fn matches_rejects_cross_variant() {
        assert!(!AnswerValue::Choice(1).matches(&AnswerValue::Number(1.0)));
        assert!(!AnswerValue::Text("1".into()).matches(&AnswerValue::Choice(1)));
    }

    #[test]
    fn type_names_are_stable() {
        assert_eq!(AnswerValue::Choice(0).type_name(), "choice");
        assert_eq!(AnswerValue::Prefer(Preference::Left).type_name(), "preference");
    }

    #[test]
    fn bare_answer_has_zero_economics() {
        let a = Answer::bare(TaskId::new(1), WorkerId::new(2), AnswerValue::Choice(0));
        assert_eq!(a.cost, 0.0);
        assert_eq!(a.submitted_at, 0.0);
    }
}
