//! Property-based tests for truth-inference invariants.

use crowdkit_core::ids::{TaskId, WorkerId};
use crowdkit_core::response::ResponseMatrix;
use crowdkit_core::traits::{StoppingRule, TruthInferencer};
use crowdkit_truth::sequential::{FixedK, MajorityMargin, Sprt};
use crowdkit_truth::{DawidSkene, Glad, Kos, MajorityVote, OneCoinEm};
use proptest::prelude::*;

/// Arbitrary non-empty response matrices over k labels.
fn matrix_strategy(k: u32) -> impl Strategy<Value = ResponseMatrix> {
    prop::collection::vec((0u64..15, 0u64..8, 0..k), 1..120).prop_map(move |obs| {
        let mut m = ResponseMatrix::new(k as usize);
        for (t, w, l) in obs {
            m.push(TaskId::new(t), WorkerId::new(w), l).unwrap();
        }
        m
    })
}

fn check_result_invariants(
    m: &ResponseMatrix,
    algo: &dyn TruthInferencer,
) -> std::result::Result<(), TestCaseError> {
    let r = algo.infer(m).expect("non-empty matrix infers");
    prop_assert_eq!(r.labels.len(), m.num_tasks());
    prop_assert_eq!(r.posteriors.len(), m.num_tasks());
    for (t, row) in r.posteriors.iter().enumerate() {
        prop_assert_eq!(row.len(), m.num_labels());
        let sum: f64 = row.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "posterior row sums to {sum}");
        prop_assert!(row.iter().all(|&p| (-1e-9..=1.0 + 1e-9).contains(&p)));
        // The chosen label maximizes its posterior row.
        let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(
            row[r.labels[t] as usize] >= max - 1e-9,
            "label {} is not the argmax of {row:?}",
            r.labels[t]
        );
        prop_assert!((r.labels[t] as usize) < m.num_labels());
    }
    if let Some(q) = &r.worker_quality {
        prop_assert_eq!(q.len(), m.num_workers());
        prop_assert!(q.iter().all(|&x| (-1e-9..=1.0 + 1e-9).contains(&x)));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mv_invariants(m in matrix_strategy(3)) {
        check_result_invariants(&m, &MajorityVote)?;
    }

    #[test]
    fn one_coin_invariants(m in matrix_strategy(3)) {
        check_result_invariants(&m, &OneCoinEm::default())?;
    }

    #[test]
    fn dawid_skene_invariants(m in matrix_strategy(3)) {
        check_result_invariants(&m, &DawidSkene::default())?;
    }

    #[test]
    fn glad_invariants(m in matrix_strategy(2)) {
        check_result_invariants(&m, &Glad::default())?;
    }

    #[test]
    fn kos_invariants_binary(m in matrix_strategy(2)) {
        check_result_invariants(&m, &Kos::default())?;
    }

    #[test]
    fn unanimous_answers_are_respected_by_all_algorithms(
        labels in prop::collection::vec(0u32..2, 2..15),
        workers in 2u64..6,
    ) {
        // Every worker gives the same label per task: every algorithm must
        // return exactly those labels.
        let mut m = ResponseMatrix::new(2);
        for (t, &l) in labels.iter().enumerate() {
            for w in 0..workers {
                m.push(TaskId::new(t as u64), WorkerId::new(w), l).unwrap();
            }
        }
        let algos: Vec<Box<dyn TruthInferencer>> = vec![
            Box::new(MajorityVote),
            Box::new(OneCoinEm::default()),
            Box::new(DawidSkene::default()),
            Box::new(Glad::default()),
            Box::new(Kos::default()),
        ];
        for algo in &algos {
            let r = algo.infer(&m).unwrap();
            for (t, &expected) in labels.iter().enumerate() {
                let got = r.labels[m.task_index(TaskId::new(t as u64)).unwrap()];
                prop_assert_eq!(
                    got, expected,
                    "{} flipped a unanimous label on task {}", algo.name(), t
                );
            }
        }
    }

    #[test]
    fn stopping_rules_always_stop_at_the_cap(
        votes in prop::collection::vec(0u32..6, 2..4),
        cap in 1u32..12,
    ) {
        // Scale votes so the total equals the cap: every rule must stop.
        let total: u32 = votes.iter().sum();
        prop_assume!(total > 0);
        let mut scaled = votes.clone();
        // Bump the first label until total == cap (or truncate by capping).
        if total < cap {
            scaled[0] += cap - total;
        }
        let rules: Vec<Box<dyn StoppingRule>> = vec![
            Box::new(FixedK { k: cap }),
            Box::new(MajorityMargin { margin: 2 }),
            Box::new(Sprt::default()),
        ];
        for rule in &rules {
            prop_assert!(
                rule.should_stop(&scaled, cap.min(scaled.iter().sum())),
                "{} failed to stop at the cap with votes {scaled:?}",
                rule.name()
            );
        }
    }

    #[test]
    fn margin_rule_is_monotone_in_lead(lead in 0u32..10, base in 0u32..10) {
        let rule = MajorityMargin { margin: 3 };
        let stops_now = rule.should_stop(&[base, base + lead], 1000);
        let stops_later = rule.should_stop(&[base, base + lead + 1], 1000);
        // Growing the lead can only keep or trigger stopping.
        if stops_now {
            prop_assert!(stops_later);
        }
    }
}
