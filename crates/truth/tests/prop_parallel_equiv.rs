//! Thread-count invariance: every parallel EM kernel must produce
//! *byte-identical* results at any worker-pool width.
//!
//! These are exact `==` comparisons on the full [`InferenceResult`] —
//! posteriors, labels, worker quality, and iteration counts — not
//! approximate float checks. The kernels earn this by partitioning work
//! over disjoint item ranges and keeping every cross-item reduction
//! sequential in fixed order, so chunk boundaries cannot perturb a single
//! bit of the output.

use crowdkit_core::ids::{TaskId, WorkerId};
use crowdkit_core::response::ResponseMatrix;
use crowdkit_core::traits::{InferenceResult, TruthInferencer};
use crowdkit_truth::em::EmConfig;
use crowdkit_truth::glad::GladConfig;
use crowdkit_truth::{DawidSkene, Glad, Kos, OneCoinEm};
use proptest::prelude::*;

/// Arbitrary non-empty response matrices over k labels.
fn matrix_strategy(k: u32) -> impl Strategy<Value = ResponseMatrix> {
    prop::collection::vec((0u64..15, 0u64..8, 0..k), 1..120).prop_map(move |obs| {
        let mut m = ResponseMatrix::new(k as usize);
        for (t, w, l) in obs {
            m.push(TaskId::new(t), WorkerId::new(w), l).unwrap();
        }
        m
    })
}

/// Runs `make(threads).infer(m)` at widths 1, 2, and 8 and demands exact
/// equality with the single-threaded result.
fn assert_thread_invariant<F>(m: &ResponseMatrix, make: F) -> std::result::Result<(), TestCaseError>
where
    F: Fn(usize) -> Box<dyn TruthInferencer>,
{
    let reference: InferenceResult = make(1).infer(m).expect("non-empty matrix infers");
    for threads in [2usize, 8] {
        let r = make(threads).infer(m).expect("non-empty matrix infers");
        prop_assert_eq!(
            &reference,
            &r,
            "results diverge between 1 and {} threads",
            threads
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dawid_skene_is_thread_invariant(m in matrix_strategy(3)) {
        assert_thread_invariant(&m, |t| {
            Box::new(DawidSkene::with_config(EmConfig::default().with_threads(t)))
        })?;
    }

    #[test]
    fn one_coin_is_thread_invariant(m in matrix_strategy(3)) {
        assert_thread_invariant(&m, |t| {
            Box::new(OneCoinEm::with_config(EmConfig::default().with_threads(t)))
        })?;
    }

    #[test]
    fn glad_is_thread_invariant(m in matrix_strategy(2)) {
        assert_thread_invariant(&m, |t| {
            Box::new(Glad::with_config(GladConfig::default().with_threads(t)))
        })?;
    }

    #[test]
    fn kos_is_thread_invariant(m in matrix_strategy(2)) {
        assert_thread_invariant(&m, |t| Box::new(Kos::default().with_threads(t)))?;
    }
}
