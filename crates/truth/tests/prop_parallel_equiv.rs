//! Thread-count invariance: every parallel EM kernel must produce
//! *byte-identical* results at any worker-pool width.
//!
//! These are exact `==` comparisons on the full [`InferenceResult`] —
//! posteriors, labels, worker quality, and iteration counts — not
//! approximate float checks. The kernels earn this by partitioning work
//! over disjoint item ranges and keeping every cross-item reduction
//! sequential in fixed order, so chunk boundaries cannot perturb a single
//! bit of the output.
//!
//! The sparse incremental E-step (convergence freezing) extends the
//! contract: for any freezing settings, the active-set worklist path must
//! match the dense-reference evaluation of the same semantics bit for bit
//! — at 1, 2, and 8 threads — including the worker-model entries the
//! worklist path skips as "recompute-would-be-identical".

use crowdkit_core::ids::{TaskId, WorkerId};
use crowdkit_core::response::ResponseMatrix;
use crowdkit_core::traits::{InferenceResult, TruthInferencer};
use crowdkit_truth::em::EmConfig;
use crowdkit_truth::freeze::FreezeConfig;
use crowdkit_truth::glad::GladConfig;
use crowdkit_truth::{DawidSkene, Glad, Kos, OneCoinEm};
use proptest::prelude::*;

/// Arbitrary non-empty response matrices over k labels.
fn matrix_strategy(k: u32) -> impl Strategy<Value = ResponseMatrix> {
    prop::collection::vec((0u64..15, 0u64..8, 0..k), 1..120).prop_map(move |obs| {
        let mut m = ResponseMatrix::new(k as usize);
        for (t, w, l) in obs {
            m.push(TaskId::new(t), WorkerId::new(w), l).unwrap();
        }
        m
    })
}

/// Runs `make(threads).infer(m)` at widths 1, 2, and 8 and demands exact
/// equality with the single-threaded result.
fn assert_thread_invariant<F>(m: &ResponseMatrix, make: F) -> std::result::Result<(), TestCaseError>
where
    F: Fn(usize) -> Box<dyn TruthInferencer>,
{
    let reference: InferenceResult = make(1).infer(m).expect("non-empty matrix infers");
    for threads in [2usize, 8] {
        let r = make(threads).infer(m).expect("non-empty matrix infers");
        prop_assert_eq!(
            &reference,
            &r,
            "results diverge between 1 and {} threads",
            threads
        );
    }
    Ok(())
}

/// Arbitrary enabled freezing settings: tolerances loose enough to
/// actually freeze tasks on small matrices, patience 1–2, with and
/// without periodic rechecks.
fn freeze_strategy() -> impl Strategy<Value = FreezeConfig> {
    (
        prop_oneof![Just(1e-4f64), Just(1e-3), Just(1e-2)],
        1u32..3,
        prop_oneof![Just(0u32), Just(2), Just(3)],
    )
        .prop_map(|(eps, patience, recheck)| {
            FreezeConfig::sparse(eps)
                .with_patience(patience)
                .with_recheck(recheck)
        })
}

/// Runs `make(threads, freeze).infer(m)` with the worklist path and the
/// dense-reference path at widths 1, 2, and 8 and demands all six results
/// exactly equal: freezing must change the cost of an iteration, never
/// its outcome.
fn assert_sparse_matches_dense<F>(
    m: &ResponseMatrix,
    fz: FreezeConfig,
    make: F,
) -> std::result::Result<(), TestCaseError>
where
    F: Fn(usize, FreezeConfig) -> Box<dyn TruthInferencer>,
{
    let reference: InferenceResult = make(1, fz.with_dense_reference(true))
        .infer(m)
        .expect("non-empty matrix infers");
    for threads in [1usize, 2, 8] {
        let sparse = make(threads, fz).infer(m).expect("non-empty matrix infers");
        prop_assert_eq!(
            &reference,
            &sparse,
            "worklist path diverges from the dense reference at {} threads",
            threads
        );
        let dense = make(threads, fz.with_dense_reference(true))
            .infer(m)
            .expect("non-empty matrix infers");
        prop_assert_eq!(
            &reference,
            &dense,
            "dense reference is not thread-invariant at {} threads",
            threads
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dawid_skene_is_thread_invariant(m in matrix_strategy(3)) {
        assert_thread_invariant(&m, |t| {
            Box::new(DawidSkene::with_config(EmConfig::default().with_threads(t)))
        })?;
    }

    #[test]
    fn one_coin_is_thread_invariant(m in matrix_strategy(3)) {
        assert_thread_invariant(&m, |t| {
            Box::new(OneCoinEm::with_config(EmConfig::default().with_threads(t)))
        })?;
    }

    #[test]
    fn glad_is_thread_invariant(m in matrix_strategy(2)) {
        assert_thread_invariant(&m, |t| {
            Box::new(Glad::with_config(GladConfig::default().with_threads(t)))
        })?;
    }

    #[test]
    fn kos_is_thread_invariant(m in matrix_strategy(2)) {
        assert_thread_invariant(&m, |t| Box::new(Kos::default().with_threads(t)))?;
    }

    #[test]
    fn dawid_skene_sparse_matches_dense_reference(
        m in matrix_strategy(3),
        fz in freeze_strategy(),
    ) {
        assert_sparse_matches_dense(&m, fz, |t, fz| {
            Box::new(DawidSkene::with_config(
                EmConfig::default().with_threads(t).with_freeze(fz),
            ))
        })?;
    }

    #[test]
    fn one_coin_sparse_matches_dense_reference(
        m in matrix_strategy(3),
        fz in freeze_strategy(),
    ) {
        assert_sparse_matches_dense(&m, fz, |t, fz| {
            Box::new(OneCoinEm::with_config(
                EmConfig::default().with_threads(t).with_freeze(fz),
            ))
        })?;
    }

    #[test]
    fn glad_sparse_matches_dense_reference(
        m in matrix_strategy(2),
        fz in freeze_strategy(),
    ) {
        assert_sparse_matches_dense(&m, fz, |t, fz| {
            Box::new(Glad::with_config(
                GladConfig::default().with_threads(t).with_freeze(fz),
            ))
        })?;
    }

    /// GLAD's freezing semantics also pin the fitted parameters — the
    /// worklist and dense-reference paths must agree on α and β exactly,
    /// not just on posteriors.
    #[test]
    fn glad_sparse_params_match_dense_reference(
        m in matrix_strategy(2),
        fz in freeze_strategy(),
    ) {
        let cfg = GladConfig::default();
        let (r_ref, p_ref) = Glad::with_config(
            cfg.with_threads(1).with_freeze(fz.with_dense_reference(true)),
        )
        .infer_full(&m)
        .expect("non-empty matrix infers");
        for threads in [1usize, 2, 8] {
            let (r, p) = Glad::with_config(cfg.with_threads(threads).with_freeze(fz))
                .infer_full(&m)
                .expect("non-empty matrix infers");
            prop_assert_eq!(&r_ref, &r, "posteriors diverge at {} threads", threads);
            prop_assert_eq!(&p_ref, &p, "GLAD params diverge at {} threads", threads);
        }
    }
}
