//! Experiment: would `f32` posteriors be good enough?
//!
//! The million-scale roadmap item asks whether the posterior tables (the
//! dominant resident buffer after the CSR) could drop to `f32` and halve
//! again. This test runs a faithful `f32` mirror of the one-coin E/M loop
//! next to the production `f64` kernel on a fixed dataset and **documents**
//! the divergence it finds. It deliberately does not gate on a tight
//! numeric bound: the point is to record the observed error magnitude so
//! the decision ("labels survive, posteriors drift at ~1e-6..1e-3, keep
//! f64 for the determinism contract") stays reproducible in CI output.
//!
//! Outcome this encodes: iterated EM amplifies `f32` rounding — posterior
//! trajectories diverge measurably (well beyond one ulp) and can even
//! change the iteration count, which is why the kernels keep `f64`
//! accumulation and the `FreezeConfig` byte-identity contract is defined
//! over `f64` only.

use crowdkit_core::ids::{TaskId, WorkerId};
use crowdkit_core::response::ResponseMatrix;
use crowdkit_core::traits::TruthInferencer;
use crowdkit_truth::em::EmConfig;
use crowdkit_truth::OneCoinEm;

/// Deterministic moderately-noisy dataset: 40 binary tasks, 7 workers of
/// varied reliability, noise from a fixed arithmetic pattern.
fn dataset() -> ResponseMatrix {
    let mut m = ResponseMatrix::new(2);
    for t in 0..40u64 {
        let truth = (t % 2) as u32;
        for w in 0..7u64 {
            // Worker w errs on tasks where (t * 7 + w * 13) % (w + 3) == 0:
            // low-w workers are noisier, high-w workers nearly perfect.
            let wrong = (t * 7 + w * 13) % (w + 3) == 0;
            let label = if wrong { 1 - truth } else { truth };
            m.push(TaskId::new(t), WorkerId::new(w), label).unwrap();
        }
    }
    m
}

/// A line-for-line `f32` port of the one-coin kernel's sequential path
/// (vote-fraction init, reliability M-step, scalar-update E-step, max-delta
/// convergence) with the same constants and iteration policy.
fn one_coin_f32(m: &ResponseMatrix, max_iters: usize, tol: f32, smoothing: f32) -> (Vec<f32>, Vec<u32>, usize) {
    let k = m.num_labels();
    let n_tasks = m.num_tasks();
    let n_workers = m.num_workers();
    let wrong_share = 1.0f32 / ((k as f32 - 1.0).max(1.0));
    let (t_off, t_entries) = m.task_csr();
    let (w_off, w_entries) = m.worker_csr();

    let mut post = vec![0.0f32; n_tasks * k];
    for (t, row) in post.chunks_mut(k).enumerate() {
        for &(_, l) in &t_entries[t_off[t] as usize..t_off[t + 1] as usize] {
            row[l as usize] += 1.0;
        }
        let total: f32 = row.iter().sum();
        for x in row.iter_mut() {
            *x /= total;
        }
    }
    let mut next = vec![0.0f32; n_tasks * k];
    let mut priors = vec![1.0f32 / k as f32; k];
    let mut log_priors = vec![0.0f32; k];
    let mut reliability = vec![0.8f32; n_workers];
    let mut log_right = vec![0.0f32; n_workers];
    let mut log_wrong = vec![0.0f32; n_workers];

    let mut iterations = 0;
    while iterations < max_iters {
        iterations += 1;
        priors.fill(0.0);
        for row in post.chunks(k) {
            for (l, &p) in row.iter().enumerate() {
                priors[l] += p;
            }
        }
        for p in priors.iter_mut() {
            *p /= n_tasks as f32;
        }
        for (lp, &p) in log_priors.iter_mut().zip(&priors) {
            *lp = p.max(1e-30).ln();
        }
        for w in 0..n_workers {
            let mut correct = smoothing;
            let mut total = 2.0 * smoothing;
            for &(t, l) in &w_entries[w_off[w] as usize..w_off[w + 1] as usize] {
                correct += post[t as usize * k + l as usize];
                total += 1.0;
            }
            reliability[w] = (correct / total).clamp(1e-6, 1.0 - 1e-6);
            log_right[w] = reliability[w].max(1e-30).ln();
            log_wrong[w] = ((1.0 - reliability[w]) * wrong_share).max(1e-30).ln();
        }
        for (t, row) in next.chunks_mut(k).enumerate() {
            row.copy_from_slice(&log_priors);
            let mut base = 0.0f32;
            for &(w, l) in &t_entries[t_off[t] as usize..t_off[t + 1] as usize] {
                let w = w as usize;
                base += log_wrong[w];
                row[l as usize] += log_right[w] - log_wrong[w];
            }
            for x in row.iter_mut() {
                *x += base;
            }
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            for x in row.iter_mut() {
                *x = (*x - max).exp();
            }
            let total: f32 = row.iter().sum();
            for x in row.iter_mut() {
                *x /= total;
            }
        }
        let delta = post
            .iter()
            .zip(&next)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        std::mem::swap(&mut post, &mut next);
        if delta < tol {
            break;
        }
    }
    let labels = post
        .chunks(k)
        .map(|row| {
            let mut best = 0usize;
            for (i, &p) in row.iter().enumerate().skip(1) {
                if p > row[best] {
                    best = i;
                }
            }
            best as u32
        })
        .collect();
    (post, labels, iterations)
}

#[test]
fn f32_posteriors_diverge_from_f64_but_labels_survive() {
    let m = dataset();
    let cfg = EmConfig::default();
    let r64 = OneCoinEm::with_config(cfg).infer(&m).unwrap();
    let (post32, labels32, iters32) = one_coin_f32(&m, cfg.max_iters, cfg.tol as f32, cfg.smoothing as f32);

    let mut max_div = 0.0f64;
    for (t, row) in r64.posteriors.iter().enumerate() {
        for (l, &p64) in row.iter().enumerate() {
            let d = (p64 - post32[t * row.len() + l] as f64).abs();
            max_div = max_div.max(d);
        }
    }

    // Document, don't gate: the divergence is real (beyond f64 rounding of
    // the same trajectory) yet small enough that no label flips on this
    // comfortably-separated dataset. The printed numbers are the
    // experiment's record in CI logs.
    println!(
        "f32-vs-f64 one-coin: max posterior divergence {:.3e}, iterations {} (f64) vs {} (f32)",
        max_div, r64.iterations, iters32
    );
    assert!(
        max_div > 0.0,
        "expected measurable f32 drift; an exactly-equal trajectory means this experiment \
         stopped exercising anything"
    );
    assert!(
        max_div < 0.05,
        "f32 drift {max_div:.3e} grew past the 'labels survive' regime this experiment documents"
    );
    assert_eq!(
        r64.labels, labels32,
        "on well-separated data the f32 mirror must still recover the same labels"
    );
}
