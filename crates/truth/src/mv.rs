//! Majority vote and weighted majority vote.
//!
//! Majority vote is the baseline every truth-inference comparison includes:
//! no worker model, each answer counts once, argmax wins. Weighted majority
//! vote takes externally supplied worker weights (e.g. from gold-question
//! qualification tests) and counts each answer proportionally.

use crowdkit_core::error::{CrowdError, Result};
use crowdkit_core::ids::WorkerId;
use crowdkit_core::response::ResponseMatrix;
use crowdkit_core::traits::{InferenceResult, TruthInferencer};
use std::collections::HashMap;

use crate::em::{argmax_labels, normalize, posterior_rows};

/// Unweighted majority vote.
#[derive(Debug, Clone, Copy, Default)]
pub struct MajorityVote;

impl TruthInferencer for MajorityVote {
    fn name(&self) -> &'static str {
        "mv"
    }

    fn infer(&self, matrix: &ResponseMatrix) -> Result<InferenceResult> {
        if matrix.is_empty() {
            return Err(CrowdError::EmptyInput("response matrix"));
        }
        let run_start = crowdkit_obs::WallTimer::start();
        let k = matrix.num_labels();
        let (offsets, entries) = matrix.task_csr();
        let mut posteriors = vec![0.0f64; matrix.num_tasks() * k];
        for (t, row) in posteriors.chunks_mut(k).enumerate() {
            for &(_, l) in &entries[offsets[t] as usize..offsets[t + 1] as usize] {
                row[l as usize] += 1.0;
            }
            normalize(row);
        }
        let labels = argmax_labels(&posteriors, k);
        // Single-pass: the lineage baseline *is* the final table, so the
        // flip timeline is legitimately empty.
        if let Some(lineage) = crowdkit_provenance::RunLineage::begin("mv", &posteriors, k) {
            lineage.finish(matrix, &posteriors, None);
        }
        crate::em::obs_run("mv", matrix, 1, true, run_start);
        Ok(InferenceResult {
            labels,
            posteriors: posterior_rows(&posteriors, k),
            worker_quality: None,
            iterations: 1,
            converged: true,
        })
    }
}

/// Majority vote with per-worker weights.
///
/// Workers missing from the weight table get [`WeightedMajorityVote::default_weight`].
/// Negative weights are rejected at construction.
#[derive(Debug, Clone)]
pub struct WeightedMajorityVote {
    // Keyed lookups only — never iterated, so hash order is inert (DET001).
    weights: HashMap<WorkerId, f64>,
    /// Weight applied to workers not present in the table.
    pub default_weight: f64,
}

impl WeightedMajorityVote {
    /// Creates a weighted vote from `(worker, weight)` pairs.
    ///
    /// # Panics
    /// Panics if any weight (or the default) is negative or non-finite.
    pub fn new<I>(weights: I, default_weight: f64) -> Self
    where
        I: IntoIterator<Item = (WorkerId, f64)>,
    {
        let weights: HashMap<WorkerId, f64> = weights.into_iter().collect();
        assert!(
            default_weight.is_finite() && default_weight >= 0.0,
            "default weight must be non-negative"
        );
        assert!(
            weights.values().all(|w| w.is_finite() && *w >= 0.0),
            "worker weights must be non-negative"
        );
        Self {
            weights,
            default_weight,
        }
    }

    fn weight(&self, worker: WorkerId) -> f64 {
        self.weights.get(&worker).copied().unwrap_or(self.default_weight)
    }
}

impl TruthInferencer for WeightedMajorityVote {
    fn name(&self) -> &'static str {
        "wmv"
    }

    fn infer(&self, matrix: &ResponseMatrix) -> Result<InferenceResult> {
        if matrix.is_empty() {
            return Err(CrowdError::EmptyInput("response matrix"));
        }
        let run_start = crowdkit_obs::WallTimer::start();
        let k = matrix.num_labels();
        // Resolve external-id weights to dense indices once, outside the
        // accumulation loop.
        let dense_weights: Vec<f64> = (0..matrix.num_workers())
            .map(|w| self.weight(matrix.worker_id(w)))
            .collect();
        let (offsets, entries) = matrix.task_csr();
        let mut posteriors = vec![0.0f64; matrix.num_tasks() * k];
        for (t, row) in posteriors.chunks_mut(k).enumerate() {
            for &(w, l) in &entries[offsets[t] as usize..offsets[t + 1] as usize] {
                row[l as usize] += dense_weights[w as usize];
            }
            normalize(row);
        }
        let labels = argmax_labels(&posteriors, k);
        let worker_quality: Option<Vec<f64>> = Some(
            (0..matrix.num_workers())
                .map(|w| self.weight(matrix.worker_id(w)).clamp(0.0, 1.0))
                .collect(),
        );
        if let Some(lineage) = crowdkit_provenance::RunLineage::begin("wmv", &posteriors, k) {
            lineage.finish(matrix, &posteriors, worker_quality.as_deref());
        }
        crate::em::obs_run("wmv", matrix, 1, true, run_start);
        Ok(InferenceResult {
            labels,
            posteriors: posterior_rows(&posteriors, k),
            worker_quality,
            iterations: 1,
            converged: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdkit_core::ids::TaskId;

    fn matrix(rows: &[(u64, u64, u32)], k: usize) -> ResponseMatrix {
        let mut m = ResponseMatrix::new(k);
        for &(t, w, l) in rows {
            m.push(TaskId::new(t), WorkerId::new(w), l).unwrap();
        }
        m
    }

    #[test]
    fn mv_picks_plurality() {
        let m = matrix(&[(0, 0, 1), (0, 1, 1), (0, 2, 0), (1, 0, 0)], 2);
        let r = MajorityVote.infer(&m).unwrap();
        assert_eq!(r.labels, vec![1, 0]);
        assert!((r.posteriors[0][1] - 2.0 / 3.0).abs() < 1e-12);
        assert!(r.worker_quality.is_none());
    }

    #[test]
    fn mv_tie_breaks_deterministically() {
        let m = matrix(&[(0, 0, 0), (0, 1, 1)], 2);
        let r = MajorityVote.infer(&m).unwrap();
        assert_eq!(r.labels, vec![0], "ties resolve to the smaller label");
    }

    #[test]
    fn mv_rejects_empty() {
        let m = ResponseMatrix::new(2);
        assert!(matches!(
            MajorityVote.infer(&m).unwrap_err(),
            CrowdError::EmptyInput(_)
        ));
    }

    #[test]
    fn wmv_weights_flip_the_outcome() {
        // Two workers say 0, one trusted worker says 1.
        let m = matrix(&[(0, 0, 0), (0, 1, 0), (0, 2, 1)], 2);
        let unweighted = MajorityVote.infer(&m).unwrap();
        assert_eq!(unweighted.labels, vec![0]);
        let wmv = WeightedMajorityVote::new([(WorkerId::new(2), 5.0)], 1.0);
        let weighted = wmv.infer(&m).unwrap();
        assert_eq!(weighted.labels, vec![1]);
    }

    #[test]
    fn wmv_default_weight_applies_to_unknown_workers() {
        let m = matrix(&[(0, 0, 0), (0, 1, 1)], 2);
        // Unknown workers get weight 0 → zero-mass row → uniform → tie → 0.
        let wmv = WeightedMajorityVote::new([(WorkerId::new(1), 1.0)], 0.0);
        let r = wmv.infer(&m).unwrap();
        assert_eq!(r.labels, vec![1], "only worker 1 carries weight");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn wmv_rejects_negative_weights() {
        let _ = WeightedMajorityVote::new([(WorkerId::new(0), -1.0)], 1.0);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(MajorityVote.name(), "mv");
        assert_eq!(WeightedMajorityVote::new([], 1.0).name(), "wmv");
    }
}
