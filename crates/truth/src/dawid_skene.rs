//! Dawid–Skene EM: the classical confusion-matrix model (Dawid & Skene,
//! 1979), still the strongest general-purpose categorical truth-inference
//! baseline in published comparisons.
//!
//! Model: each worker `w` has a row-stochastic confusion matrix `π_w`
//! where `π_w[t][l]` is the probability of answering `l` when the truth is
//! `t`; tasks have latent true labels drawn from class priors `ρ`.
//!
//! EM alternates:
//!
//! * **M-step** — re-estimate `ρ` and every `π_w` from the current soft
//!   posteriors (with Laplace smoothing so sparse workers stay defined);
//! * **E-step** — recompute task posteriors
//!   `P(t | answers) ∝ ρ[t] · Π_answers π_w[t][l]` in log space to avoid
//!   underflow on high-redundancy tasks.
//!
//! # Kernel layout
//!
//! All state is flat and preallocated once: confusion matrices live in one
//! `Vec<f64>` with `w·k² + t·k + l` indexing, posteriors ping-pong between
//! two `n·k` buffers, and each M-step precomputes a **transposed log
//! table** `log π_w[t][l]` stored as `lt[w·k² + l·k + t]` so the E-step
//! inner loop is pure adds over one contiguous `k`-slice per observation
//! (no `ln` calls, no indirection). The E-step shards over task ranges and
//! the soft-count M-step over worker ranges via
//! [`parallel_items_mut`]; both write disjoint item slots from shared
//! read-only state, so posteriors are byte-identical at any thread count.
//!
//! With [`crate::freeze::FreezeConfig`] enabled (`config.freeze`), the
//! E-step goes sparse: converged tasks freeze out of the worklist (their
//! pinned posterior rows keep feeding the M-step), and workers whose tasks
//! have all frozen skip their confusion-matrix recompute — a pure no-op,
//! since recomputing from pinned inputs reproduces the same bits.

use crowdkit_core::error::{CrowdError, Result};
use crowdkit_core::par::parallel_items_mut;
use crowdkit_core::response::ResponseMatrix;
use crowdkit_core::traits::{InferenceResult, TruthInferencer};

use crowdkit_obs as obs;

use crate::em::{
    argmax_labels, log_normalize, normalize, obs_iter, obs_run, posterior_rows, resolve_threads,
    update_priors, vote_fraction_posteriors, EmConfig, LN_FLOOR,
};
use crate::freeze::ActiveSet;

/// The Dawid–Skene EM algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct DawidSkene {
    /// Iteration and smoothing settings.
    pub config: EmConfig,
}

impl DawidSkene {
    /// Creates the algorithm with custom EM settings.
    pub fn with_config(config: EmConfig) -> Self {
        Self { config }
    }

    /// Runs EM and additionally returns the estimated per-worker confusion
    /// matrices (dense worker index → k×k matrix). The plain
    /// [`TruthInferencer::infer`] entry point discards them.
    pub fn infer_full(&self, matrix: &ResponseMatrix) -> Result<(InferenceResult, Vec<Vec<Vec<f64>>>)> {
        if matrix.is_empty() {
            return Err(CrowdError::EmptyInput("response matrix"));
        }
        let k = matrix.num_labels();
        let n_tasks = matrix.num_tasks();
        let n_workers = matrix.num_workers();
        let cfg = self.config;
        let threads = resolve_threads(cfg.threads, matrix.num_observations() * k);
        let (t_off, t_entries) = matrix.task_csr();
        let (w_off, w_entries) = matrix.worker_csr();

        // Flat state, allocated once and reused every iteration.
        let mut posteriors = vote_fraction_posteriors(matrix);
        let mut aset = ActiveSet::new(cfg.freeze, n_tasks, k, w_off);
        let mut priors = vec![1.0 / k as f64; k];
        let mut log_priors = vec![0.0f64; k];
        // Confusion matrices: `confusion[w*k*k + t*k + l] = π_w[t][l]`.
        let mut confusion = vec![0.0f64; n_workers * k * k];
        // Transposed log table: `log_table[w*k*k + l*k + t] = ln π_w[t][l]`,
        // so the E-step reads one contiguous k-slice per observation.
        let mut log_table = vec![0.0f64; n_workers * k * k];

        let rec = obs::current();
        let obs_on = rec.enabled();
        let run_start = obs::WallTimer::start();
        // Lineage baseline: the vote-fraction init, i.e. MV's decision.
        let mut lineage = crowdkit_provenance::RunLineage::begin("ds", &posteriors, k);

        let mut iterations = 0;
        let mut converged = false;
        while iterations < cfg.max_iters {
            iterations += 1;
            let t_m = obs_on.then(obs::WallTimer::start);

            // M-step: priors, then per-worker confusion soft counts over
            // worker ranges. Each worker's accumulation walks its CSR
            // entries in insertion order, so the float sum order is fixed
            // regardless of sharding.
            update_priors(&posteriors, k, &mut priors);
            for (lp, &p) in log_priors.iter_mut().zip(&priors) {
                *lp = p.max(LN_FLOOR).ln();
            }
            let post = &posteriors;
            let aset_r = &aset;
            parallel_items_mut(&mut confusion, k * k, threads, |w0, run| {
                for (i, cm) in run.chunks_mut(k * k).enumerate() {
                    let w = w0 + i;
                    // Every input to this worker's soft counts is a pinned
                    // posterior row: recomputing would reproduce the same
                    // bits, so skip (the dense-reference mode recomputes
                    // and the equivalence tests verify the claim).
                    if aset_r.can_skip_worker_update(w) {
                        continue;
                    }
                    cm.fill(cfg.smoothing);
                    for &(t, l) in &w_entries[w_off[w] as usize..w_off[w + 1] as usize] {
                        let row = &post[t as usize * k..t as usize * k + k];
                        for (truth, &p) in row.iter().enumerate() {
                            cm[truth * k + l as usize] += p;
                        }
                    }
                    for row in cm.chunks_mut(k) {
                        normalize(row);
                    }
                }
            });

            // Log-table transpose, also over worker ranges: all `ln` calls
            // happen here (W·k² of them) instead of per observation in the
            // E-step.
            let conf = &confusion;
            parallel_items_mut(&mut log_table, k * k, threads, |w0, run| {
                for (i, lt) in run.chunks_mut(k * k).enumerate() {
                    let w = w0 + i;
                    if aset_r.can_skip_worker_update(w) {
                        continue;
                    }
                    let cm = &conf[w * k * k..(w + 1) * k * k];
                    for l in 0..k {
                        for t in 0..k {
                            lt[l * k + t] = cm[t * k + l].max(LN_FLOOR).ln();
                        }
                    }
                }
            });

            let m_ns = t_m.map_or(0, |t| t.elapsed_ns());
            let t_e = obs_on.then(obs::WallTimer::start);

            // E-step over the active worklist (all tasks while freezing is
            // off): per task, start from the log priors and add one
            // contiguous log-table slice per observation.
            let log_priors_r = &log_priors;
            let log_table_r = &log_table;
            let out = aset.sweep(&mut posteriors, t_off, t_entries, threads, |t, row| {
                row.copy_from_slice(log_priors_r);
                for &(w, l) in &t_entries[t_off[t] as usize..t_off[t + 1] as usize] {
                    let base = (w as usize * k + l as usize) * k;
                    let lt = &log_table_r[base..base + k];
                    for (x, &add) in row.iter_mut().zip(lt) {
                        *x += add;
                    }
                }
                log_normalize(row);
            });

            let delta = out.delta;
            if let Some(l) = &mut lineage {
                // The committed table after the sweep: pinned rows on the
                // sparse path are bit-identical to the dense reference's,
                // so both paths record the same flips.
                l.observe_iter(iterations, &posteriors);
            }
            if obs_on {
                let e_ns = t_e.map_or(0, |t| t.elapsed_ns());
                obs_iter(&*rec, "ds", iterations, delta, m_ns, e_ns);
                aset.observe(&*rec, "ds", iterations, &out);
            }
            if delta < cfg.tol {
                converged = true;
                break;
            }
        }
        let labels = argmax_labels(&posteriors, k);
        let worker_quality = Some(worker_accuracy(&confusion, &priors, k));
        if let Some(l) = lineage.take() {
            l.finish(matrix, &posteriors, worker_quality.as_deref());
        }
        obs_run("ds", matrix, iterations, converged, run_start);
        let confusion_rows = confusion
            .chunks(k * k)
            .map(|cm| cm.chunks(k).map(<[f64]>::to_vec).collect())
            .collect();
        Ok((
            InferenceResult {
                labels,
                posteriors: posterior_rows(&posteriors, k),
                worker_quality,
                iterations,
                converged,
            },
            confusion_rows,
        ))
    }
}

/// Scalar worker quality from the flat confusion table: the prior-weighted
/// diagonal, i.e. the worker's marginal probability of a correct answer.
fn worker_accuracy(confusion: &[f64], priors: &[f64], k: usize) -> Vec<f64> {
    confusion
        .chunks(k * k)
        .map(|cm| (0..k).map(|t| priors[t] * cm[t * k + t]).sum::<f64>())
        .collect()
}

impl TruthInferencer for DawidSkene {
    fn name(&self) -> &'static str {
        "ds"
    }

    fn infer(&self, matrix: &ResponseMatrix) -> Result<InferenceResult> {
        self.infer_full(matrix).map(|(r, _)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdkit_core::ids::{TaskId, WorkerId};

    fn matrix(rows: &[(u64, u64, u32)], k: usize) -> ResponseMatrix {
        let mut m = ResponseMatrix::new(k);
        for &(t, w, l) in rows {
            m.push(TaskId::new(t), WorkerId::new(w), l).unwrap();
        }
        m
    }

    #[test]
    fn agrees_with_mv_on_clean_unanimous_data() {
        let m = matrix(
            &[
                (0, 0, 1),
                (0, 1, 1),
                (0, 2, 1),
                (1, 0, 0),
                (1, 1, 0),
                (1, 2, 0),
            ],
            2,
        );
        let r = DawidSkene::default().infer(&m).unwrap();
        assert_eq!(r.labels, vec![1, 0]);
        assert!(r.converged);
        assert!(r.confidence(0) > 0.9);
    }

    #[test]
    fn identifies_the_consistent_minority_against_a_spammer_majority() {
        // Workers 0 and 1 agree on every task; workers 2, 3 answer randomly
        // but happen to outvote them on task 9. DS should learn workers 0/1
        // are reliable and follow them.
        let mut rows = Vec::new();
        for t in 0..10u64 {
            let truth = (t % 2) as u32;
            rows.push((t, 0, truth));
            rows.push((t, 1, truth));
            // The two noisy workers systematically vote for the opposite on
            // a single task, agreeing with truth elsewhere often enough to
            // look plausible to MV.
            if t == 9 {
                rows.push((t, 2, 1 - truth));
                rows.push((t, 3, 1 - truth));
                rows.push((t, 4, 1 - truth));
            } else {
                rows.push((t, 2, truth));
                rows.push((t, 3, 1 - truth));
            }
        }
        let m = matrix(&rows, 2);
        let r = DawidSkene::default().infer(&m).unwrap();
        // Task 9's truth is 1 (9 % 2); MV over {0,1,2,3,4} would say 0
        // (3 votes of 1-truth=0 vs 2 votes of 1).
        let t9 = m.task_index(TaskId::new(9)).unwrap();
        assert_eq!(r.labels[t9], 1, "DS should trust the consistent pair");
    }

    #[test]
    fn worker_quality_orders_good_above_bad() {
        // Worker 0 always truthful, worker 1 always wrong, over 20 tasks
        // with 3 extra mostly-truthful workers to pin down the truth.
        let mut rows = Vec::new();
        for t in 0..20u64 {
            let truth = (t % 2) as u32;
            rows.push((t, 0, truth));
            rows.push((t, 1, 1 - truth));
            rows.push((t, 2, truth));
            rows.push((t, 3, truth));
        }
        let m = matrix(&rows, 2);
        let r = DawidSkene::default().infer(&m).unwrap();
        let q = r.worker_quality.unwrap();
        let w0 = m.worker_index(WorkerId::new(0)).unwrap();
        let w1 = m.worker_index(WorkerId::new(1)).unwrap();
        assert!(q[w0] > 0.9, "good worker quality {}", q[w0]);
        assert!(q[w1] < 0.1, "bad worker quality {}", q[w1]);
    }

    #[test]
    fn posteriors_are_distributions() {
        let m = matrix(&[(0, 0, 0), (0, 1, 1), (1, 0, 2)], 3);
        let r = DawidSkene::default().infer(&m).unwrap();
        for row in &r.posteriors {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row sums to {s}");
            assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn rejects_empty_matrix() {
        let m = ResponseMatrix::new(2);
        assert!(DawidSkene::default().infer(&m).is_err());
    }

    #[test]
    fn converges_within_cap_on_moderate_data() {
        let mut rows = Vec::new();
        for t in 0..30u64 {
            for w in 0..5u64 {
                // Deterministic pseudo-noise: worker w is wrong when
                // (t + w) divisible by 4.
                let truth = (t % 3) as u32;
                let l = if (t + w) % 4 == 0 { (truth + 1) % 3 } else { truth };
                rows.push((t, w, l));
            }
        }
        let m = matrix(&rows, 3);
        let r = DawidSkene::default().infer(&m).unwrap();
        assert!(r.converged, "did not converge in {} iters", r.iterations);
        assert!(r.iterations < 100);
    }

    #[test]
    fn infer_full_exposes_row_stochastic_confusions() {
        let m = matrix(&[(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 1)], 2);
        let (_, confusion) = DawidSkene::default().infer_full(&m).unwrap();
        assert_eq!(confusion.len(), 2);
        for cm in &confusion {
            for row in cm {
                let s: f64 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-9);
            }
        }
    }
}
