//! Numeric truth inference: aggregating quantitative crowd estimates.
//!
//! Crowd numeric answers ("how many people are in this photo?") are
//! aggregated with robust statistics rather than votes. This module
//! implements the standard estimators plus an iteratively reweighted
//! scheme that learns per-worker precision — the numeric analogue of the
//! categorical EM family.

use std::collections::BTreeMap;

use crowdkit_core::answer::Answer;
use crowdkit_core::error::{CrowdError, Result};
use crowdkit_core::ids::{TaskId, WorkerId};

/// Grouped numeric observations: per task, the `(worker, value)` pairs.
///
/// Tasks iterate in id order so every aggregate that reduces across tasks
/// or workers is bit-reproducible run to run.
#[derive(Debug, Clone, Default)]
pub struct NumericResponses {
    groups: BTreeMap<TaskId, Vec<(WorkerId, f64)>>,
}

impl NumericResponses {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Collects numeric answers; non-numeric answers are rejected.
    pub fn from_answers<'a, I>(answers: I) -> Result<Self>
    where
        I: IntoIterator<Item = &'a Answer>,
    {
        let mut s = Self::new();
        for a in answers {
            let v = a.value.as_number().ok_or(CrowdError::AnswerTypeMismatch {
                expected: "number",
                found: a.value.type_name(),
            })?;
            s.push(a.task, a.worker, v);
        }
        Ok(s)
    }

    /// Adds one observation.
    pub fn push(&mut self, task: TaskId, worker: WorkerId, value: f64) {
        self.groups.entry(task).or_default().push((worker, value));
    }

    /// Number of tasks with at least one observation.
    pub fn num_tasks(&self) -> usize {
        self.groups.len()
    }

    /// True if no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Iterates `(task, observations)` in task-id order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &[(WorkerId, f64)])> {
        self.groups.iter().map(|(t, v)| (*t, v.as_slice()))
    }

    /// The observations for one task.
    pub fn get(&self, task: TaskId) -> Option<&[(WorkerId, f64)]> {
        self.groups.get(&task).map(Vec::as_slice)
    }
}

/// Per-task estimates produced by a numeric aggregator.
pub type NumericEstimates = BTreeMap<TaskId, f64>;

/// Mean of each task's values.
pub fn mean_estimates(r: &NumericResponses) -> Result<NumericEstimates> {
    non_empty(r)?;
    Ok(r.iter()
        .map(|(t, obs)| {
            let m = obs.iter().map(|(_, v)| v).sum::<f64>() / obs.len() as f64;
            (t, m)
        })
        .collect())
}

/// Median of each task's values — robust to a minority of spammers.
pub fn median_estimates(r: &NumericResponses) -> Result<NumericEstimates> {
    non_empty(r)?;
    Ok(r.iter()
        .map(|(t, obs)| {
            let mut vals: Vec<f64> = obs.iter().map(|(_, v)| *v).collect();
            vals.sort_by(|a, b| a.total_cmp(b));
            let n = vals.len();
            let m = if n % 2 == 1 {
                vals[n / 2]
            } else {
                0.5 * (vals[n / 2 - 1] + vals[n / 2])
            };
            (t, m)
        })
        .collect())
}

/// Trimmed mean: drops the `trim` fraction of observations from each end
/// before averaging (`trim = 0.1` drops the lowest and highest 10 %).
///
/// # Panics
/// Panics if `trim` is not in `[0, 0.5)`.
pub fn trimmed_mean_estimates(r: &NumericResponses, trim: f64) -> Result<NumericEstimates> {
    assert!((0.0..0.5).contains(&trim), "trim fraction must be in [0, 0.5)");
    non_empty(r)?;
    Ok(r.iter()
        .map(|(t, obs)| {
            let mut vals: Vec<f64> = obs.iter().map(|(_, v)| *v).collect();
            vals.sort_by(|a, b| a.total_cmp(b));
            let drop = (vals.len() as f64 * trim).floor() as usize;
            let kept = &vals[drop..vals.len() - drop];
            // Guaranteed non-empty: drop < len/2 on both sides.
            let m = kept.iter().sum::<f64>() / kept.len() as f64;
            (t, m)
        })
        .collect())
}

/// Result of the iteratively-reweighted estimator.
#[derive(Debug, Clone)]
pub struct ReweightedResult {
    /// Per-task estimates.
    pub estimates: NumericEstimates,
    /// Learned per-worker weights (inverse variance, normalized to mean 1).
    pub worker_weights: BTreeMap<WorkerId, f64>,
    /// Iterations run.
    pub iterations: usize,
}

/// Iteratively reweighted averaging: alternates (a) per-task weighted means
/// and (b) per-worker precision estimates from residuals. Workers whose
/// answers sit close to the consensus get up-weighted; erratic workers are
/// suppressed. This is the numeric analogue of one-coin EM.
pub fn reweighted_estimates(r: &NumericResponses, max_iters: usize) -> Result<ReweightedResult> {
    non_empty(r)?;
    let mut weights: BTreeMap<WorkerId, f64> = BTreeMap::new();
    for (_, obs) in r.iter() {
        for (w, _) in obs {
            weights.insert(*w, 1.0);
        }
    }

    let mut estimates = NumericEstimates::new();
    let mut iterations = 0;
    for _ in 0..max_iters.max(1) {
        iterations += 1;
        // (a) Weighted means.
        let mut next = NumericEstimates::new();
        for (t, obs) in r.iter() {
            let mut num = 0.0;
            let mut den = 0.0;
            for (w, v) in obs {
                let wt = weights[w];
                num += wt * v;
                den += wt;
            }
            next.insert(t, if den > 0.0 { num / den } else { obs[0].1 });
        }

        // (b) Per-worker variance from residuals (floored to avoid infinite
        // precision for workers who happen to match exactly). Ordered maps
        // keep the residual sums and the normalization below in worker-id
        // order, so the learned weights are bit-identical across runs.
        let mut sq: BTreeMap<WorkerId, (f64, usize)> = BTreeMap::new();
        for (t, obs) in r.iter() {
            let est = next[&t];
            for (w, v) in obs {
                let e = sq.entry(*w).or_insert((0.0, 0));
                e.0 += (v - est) * (v - est);
                e.1 += 1;
            }
        }
        let mut raw: BTreeMap<WorkerId, f64> = BTreeMap::new();
        for (w, (ss, n)) in &sq {
            let var = (ss / *n as f64).max(1e-9);
            raw.insert(*w, 1.0 / var);
        }
        // Normalize to mean 1 so weights are comparable across iterations.
        let mean_w = raw.values().sum::<f64>() / raw.len() as f64;
        for v in raw.values_mut() {
            *v /= mean_w;
        }

        let moved = estimates.is_empty()
            || next
                .iter()
                .any(|(t, v)| (estimates.get(t).copied().unwrap_or(f64::MAX) - v).abs() > 1e-9);
        estimates = next;
        weights = raw;
        if !moved {
            break;
        }
    }

    Ok(ReweightedResult {
        estimates,
        worker_weights: weights.into_iter().collect(),
        iterations,
    })
}

fn non_empty(r: &NumericResponses) -> Result<()> {
    if r.is_empty() {
        Err(CrowdError::EmptyInput("numeric responses"))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(i: u64) -> TaskId {
        TaskId::new(i)
    }
    fn wid(i: u64) -> WorkerId {
        WorkerId::new(i)
    }

    fn responses(rows: &[(u64, u64, f64)]) -> NumericResponses {
        let mut r = NumericResponses::new();
        for &(t, w, v) in rows {
            r.push(tid(t), wid(w), v);
        }
        r
    }

    #[test]
    fn mean_and_median_basic() {
        let r = responses(&[(0, 0, 1.0), (0, 1, 2.0), (0, 2, 9.0)]);
        assert_eq!(mean_estimates(&r).unwrap()[&tid(0)], 4.0);
        assert_eq!(median_estimates(&r).unwrap()[&tid(0)], 2.0);
    }

    #[test]
    fn median_resists_outliers_better_than_mean() {
        let r = responses(&[(0, 0, 10.0), (0, 1, 10.5), (0, 2, 9.5), (0, 3, 1000.0)]);
        let mean = mean_estimates(&r).unwrap()[&tid(0)];
        let median = median_estimates(&r).unwrap()[&tid(0)];
        assert!((median - 10.25).abs() < 1e-9);
        assert!(mean > 200.0);
    }

    #[test]
    fn trimmed_mean_drops_extremes() {
        let r = responses(&[
            (0, 0, 1.0),
            (0, 1, 10.0),
            (0, 2, 10.0),
            (0, 3, 10.0),
            (0, 4, 100.0),
        ]);
        let t = trimmed_mean_estimates(&r, 0.2).unwrap()[&tid(0)];
        assert_eq!(t, 10.0);
    }

    #[test]
    #[should_panic(expected = "trim fraction")]
    fn trimmed_mean_rejects_half_trim() {
        let r = responses(&[(0, 0, 1.0)]);
        let _ = trimmed_mean_estimates(&r, 0.5);
    }

    #[test]
    fn reweighted_downweights_the_noisy_worker() {
        // Worker 0 and 1 precise around truth; worker 2 erratic.
        let mut rows = Vec::new();
        for t in 0..20u64 {
            let truth = t as f64;
            rows.push((t, 0, truth + 0.1));
            rows.push((t, 1, truth - 0.1));
            rows.push((t, 2, truth + if t % 2 == 0 { 15.0 } else { -15.0 }));
        }
        let r = responses(&rows);
        let out = reweighted_estimates(&r, 20).unwrap();
        assert!(out.worker_weights[&wid(0)] > out.worker_weights[&wid(2)] * 10.0);
        // Estimates end up near truth despite the erratic worker.
        for t in 0..20u64 {
            assert!((out.estimates[&tid(t)] - t as f64).abs() < 1.0);
        }
    }

    #[test]
    fn reweighted_beats_plain_mean_with_erratic_workers() {
        let mut rows = Vec::new();
        for t in 0..20u64 {
            let truth = 50.0;
            rows.push((t, 0, truth + 0.5));
            rows.push((t, 1, truth - 0.5));
            rows.push((t, 2, truth + if t % 2 == 0 { 30.0 } else { -30.0 }));
        }
        let r = responses(&rows);
        let means = mean_estimates(&r).unwrap();
        let rew = reweighted_estimates(&r, 20).unwrap();
        let err = |e: &NumericEstimates| -> f64 {
            (0..20u64).map(|t| (e[&tid(t)] - 50.0).abs()).sum::<f64>() / 20.0
        };
        assert!(err(&rew.estimates) < err(&means), "reweighting should help");
    }

    #[test]
    fn from_answers_rejects_non_numeric() {
        use crowdkit_core::answer::{Answer, AnswerValue};
        let a = vec![Answer::bare(tid(0), wid(0), AnswerValue::Choice(1))];
        assert!(NumericResponses::from_answers(&a).is_err());
        let b = vec![Answer::bare(tid(0), wid(0), AnswerValue::Number(3.0))];
        let r = NumericResponses::from_answers(&b).unwrap();
        assert_eq!(r.num_tasks(), 1);
    }

    #[test]
    fn empty_inputs_error() {
        let r = NumericResponses::new();
        assert!(mean_estimates(&r).is_err());
        assert!(median_estimates(&r).is_err());
        assert!(reweighted_estimates(&r, 5).is_err());
    }
}
