//! KOS iterative message passing (Karger, Oh & Shah, 2011) for binary
//! tasks.
//!
//! KOS runs belief-propagation-style messages on the bipartite task–worker
//! graph: task→worker messages `x` accumulate how strongly the other
//! workers' (reliability-weighted) votes pull the task toward ±1, and
//! worker→task messages `y` accumulate how consistently the worker agrees
//! with other tasks' current beliefs. It needs no priors and is provably
//! order-optimal for random regular assignment graphs — which is why the
//! tutorial lists it next to the EM family.
//!
//! Labels are encoded ±1 internally; label `1` of a binary
//! [`ResponseMatrix`] maps to `+1`.

//!
//! Messages live on the edges of the bipartite graph, one per observation,
//! in flat edge arrays. Each half-round shards deterministically: entity
//! sums (per task, per worker) accumulate over their CSR edge lists in
//! fixed insertion order, and the per-edge message updates are pure
//! element-wise maps — so results are byte-identical at any thread count.
//! The RMS renormalization stays a sequential fixed-order reduction.

use crowdkit_core::error::{CrowdError, Result};
use crowdkit_core::par::parallel_items_mut;
use crowdkit_core::response::ResponseMatrix;
use crowdkit_core::traits::{InferenceResult, TruthInferencer};

use crate::em::resolve_threads;

/// The KOS message-passing algorithm. Binary tasks only.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Kos {
    /// Number of message-passing rounds (the paper uses 10–20; estimates
    /// stabilize quickly).
    pub iterations: usize,
    /// Worker-pool width for the message kernels; `0` picks automatically
    /// from the problem size. Results are byte-identical at every setting.
    pub threads: usize,
}

impl Default for Kos {
    fn default() -> Self {
        Self {
            iterations: 15,
            threads: 0,
        }
    }
}

impl Kos {
    /// Returns a copy pinned to `threads` kernel threads.
    pub fn with_threads(self, threads: usize) -> Self {
        Self { threads, ..self }
    }
}

impl TruthInferencer for Kos {
    fn name(&self) -> &'static str {
        "kos"
    }

    fn infer(&self, matrix: &ResponseMatrix) -> Result<InferenceResult> {
        if matrix.is_empty() {
            return Err(CrowdError::EmptyInput("response matrix"));
        }
        if matrix.num_labels() != 2 {
            return Err(CrowdError::Unsupported(
                "KOS message passing applies to binary label spaces only",
            ));
        }
        let run_start = crowdkit_obs::WallTimer::start();

        let obs = matrix.observations();
        let n_obs = obs.len();
        let n_tasks = matrix.num_tasks();
        let n_workers = matrix.num_workers();
        let threads = resolve_threads(self.threads, n_obs * 8);
        // Signed votes: label 1 → +1, label 0 → −1.
        let sign: Vec<f64> = obs.iter().map(|o| if o.label == 1 { 1.0 } else { -1.0 }).collect();

        // Messages live on edges (one per observation).
        // Deterministic non-degenerate init: the canonical choice is
        // y ~ N(1, 1); we use a fixed quasi-random perturbation so results
        // are reproducible without threading an RNG through inference.
        let mut y: Vec<f64> = (0..n_obs)
            .map(|i| 1.0 + 0.1 * ((i as f64 * 0.754_877_666).fract() - 0.5))
            .collect();
        let mut x = vec![0.0f64; n_obs];

        // Flat CSR edge adjacency: for each task/worker, which edge
        // (observation) indices touch it, grouped contiguously with offset
        // arrays — one counting-sort pass, mirroring the response matrix's
        // own u32 layout (the matrix caps observations at `u32::MAX`, so
        // edge indices and offsets both fit).
        let mut t_off = vec![0u32; n_tasks + 1];
        let mut w_off = vec![0u32; n_workers + 1];
        for o in obs {
            t_off[o.task + 1] += 1;
            w_off[o.worker + 1] += 1;
        }
        for i in 1..t_off.len() {
            t_off[i] += t_off[i - 1];
        }
        for i in 1..w_off.len() {
            w_off[i] += w_off[i - 1];
        }
        let mut task_edges = vec![0u32; n_obs];
        let mut worker_edges = vec![0u32; n_obs];
        let mut t_cur = t_off.clone();
        let mut w_cur = w_off.clone();
        for (i, o) in obs.iter().enumerate() {
            task_edges[t_cur[o.task] as usize] = i as u32;
            t_cur[o.task] += 1;
            worker_edges[w_cur[o.worker] as usize] = i as u32;
            w_cur[o.worker] += 1;
        }

        // Decision snapshot for lineage capture: the current per-task
        // belief as a flat [P(0), P(1)] table (logistic squash of the
        // signed decision sum, matching the final posterior construction
        // below). Only evaluated while a provenance scope is active.
        let snapshot = |y: &[f64]| -> Vec<f64> {
            let mut d = vec![0.0f64; n_tasks];
            for (i, o) in obs.iter().enumerate() {
                d[o.task] += sign[i] * y[i];
            }
            d.iter()
                .flat_map(|&d| {
                    let p1 = 1.0 / (1.0 + (-d).exp());
                    [1.0 - p1, p1]
                })
                .collect()
        };
        // Lineage baseline: the decision implied by the initial messages.
        let mut lineage = if crowdkit_provenance::enabled() {
            crowdkit_provenance::RunLineage::begin("kos", &snapshot(&y), 2)
        } else {
            None
        };

        let mut task_sum = vec![0.0f64; n_tasks];
        let mut worker_sum = vec![0.0f64; n_workers];
        for round in 0..self.iterations {
            // Task → worker: x_{t→w} = Σ_{w'≠w} A_{t,w'} · y_{w'→t}.
            // Entity sums shard over task ranges (each task folds its own
            // edge list in fixed order); the per-edge message update is an
            // element-wise map over edge ranges.
            let y_r = &y;
            let (t_off_r, task_edges_r) = (&t_off, &task_edges);
            parallel_items_mut(&mut task_sum, 1, threads, |t0, run| {
                for (i, s) in run.iter_mut().enumerate() {
                    let t = t0 + i;
                    let mut acc = 0.0;
                    for &e in &task_edges_r[t_off_r[t] as usize..t_off_r[t + 1] as usize] {
                        acc += sign[e as usize] * y_r[e as usize];
                    }
                    *s = acc;
                }
            });
            let task_sum_r = &task_sum;
            parallel_items_mut(&mut x, 1, threads, |e0, run| {
                for (i, xe) in run.iter_mut().enumerate() {
                    let e = e0 + i;
                    *xe = task_sum_r[obs[e].task] - sign[e] * y_r[e];
                }
            });
            // Worker → task: y_{w→t} = Σ_{t'≠t} A_{t',w} · x_{t'→w}.
            let x_r = &x;
            let (w_off_r, worker_edges_r) = (&w_off, &worker_edges);
            parallel_items_mut(&mut worker_sum, 1, threads, |w0, run| {
                for (i, s) in run.iter_mut().enumerate() {
                    let w = w0 + i;
                    let mut acc = 0.0;
                    for &e in &worker_edges_r[w_off_r[w] as usize..w_off_r[w + 1] as usize] {
                        acc += sign[e as usize] * x_r[e as usize];
                    }
                    *s = acc;
                }
            });
            let worker_sum_r = &worker_sum;
            parallel_items_mut(&mut y, 1, threads, |e0, run| {
                for (i, ye) in run.iter_mut().enumerate() {
                    let e = e0 + i;
                    *ye = worker_sum_r[obs[e].worker] - sign[e] * x_r[e];
                }
            });
            // Normalize messages to unit RMS to prevent overflow over many
            // rounds (the decision rule is scale-invariant). Sequential
            // fixed-order reduction: the deterministic-reduction rule.
            let rms = (y.iter().map(|v| v * v).sum::<f64>() / n_obs as f64).sqrt();
            if rms > 0.0 {
                for v in &mut y {
                    *v /= rms;
                }
            }
            if let Some(l) = &mut lineage {
                // Flip timeline per message-passing round, from the
                // post-round decision snapshot.
                l.observe_iter(round + 1, &snapshot(&y));
            }
        }

        // Decision: sign of Σ_w A_{t,w} · y_{w→t}.
        let mut decision = vec![0.0f64; matrix.num_tasks()];
        for (i, o) in obs.iter().enumerate() {
            decision[o.task] += sign[i] * y[i];
        }
        let labels: Vec<u32> = decision.iter().map(|&d| (d > 0.0) as u32).collect();

        // Pseudo-posteriors via a logistic squash of the decision margin
        // (KOS itself outputs only signs; the squash gives downstream code
        // a usable confidence ordering).
        let posteriors: Vec<Vec<f64>> = decision
            .iter()
            .map(|&d| {
                let p1 = 1.0 / (1.0 + (-d).exp());
                vec![1.0 - p1, p1]
            })
            .collect();

        // Worker quality proxy: normalized agreement weight, squashed to
        // [0, 1]. Workers whose votes align with final beliefs score high.
        let mut agree = vec![0.0f64; matrix.num_workers()];
        let mut count = vec![0usize; matrix.num_workers()];
        for (i, o) in obs.iter().enumerate() {
            let task_sign = if decision[o.task] >= 0.0 { 1.0 } else { -1.0 };
            agree[o.worker] += sign[i] * task_sign;
            count[o.worker] += 1;
        }
        let worker_quality: Vec<f64> = agree
            .iter()
            .zip(&count)
            .map(|(&a, &c)| {
                if c == 0 {
                    0.5
                } else {
                    // Agreement rate in [−1, 1] → [0, 1].
                    (a / c as f64 + 1.0) / 2.0
                }
            })
            .collect();

        if let Some(l) = lineage.take() {
            let flat: Vec<f64> = posteriors.iter().flatten().copied().collect();
            l.finish(matrix, &flat, Some(&worker_quality));
        }
        // KOS has no shared obs_iter loop (BP sweeps carry no convergence
        // delta), so its iteration count lands on the counter here.
        crowdkit_metrics::current()
            .truth
            .kos
            .iters
            .add(self.iterations as u64);
        crate::em::obs_run("kos", matrix, self.iterations, true, run_start);
        Ok(InferenceResult {
            labels,
            posteriors,
            worker_quality: Some(worker_quality),
            iterations: self.iterations,
            converged: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdkit_core::ids::{TaskId, WorkerId};

    fn matrix(rows: &[(u64, u64, u32)]) -> ResponseMatrix {
        let mut m = ResponseMatrix::new(2);
        for &(t, w, l) in rows {
            m.push(TaskId::new(t), WorkerId::new(w), l).unwrap();
        }
        m
    }

    #[test]
    fn recovers_unanimous_labels() {
        let m = matrix(&[(0, 0, 1), (0, 1, 1), (1, 0, 0), (1, 1, 0)]);
        let r = Kos::default().infer(&m).unwrap();
        assert_eq!(r.labels, vec![1, 0]);
    }

    #[test]
    fn downweights_the_inconsistent_worker() {
        // Workers 0–2 truthful on 20 tasks; worker 3 always opposes. On a
        // task where only workers 0 and 3 voted, KOS should follow worker 0.
        let mut rows = Vec::new();
        for t in 0..20u64 {
            let truth = (t % 2) as u32;
            rows.push((t, 0, truth));
            rows.push((t, 1, truth));
            rows.push((t, 2, truth));
            rows.push((t, 3, 1 - truth));
        }
        rows.push((20, 0, 1));
        rows.push((20, 3, 0));
        let m = matrix(&rows);
        let r = Kos::default().infer(&m).unwrap();
        let t20 = m.task_index(TaskId::new(20)).unwrap();
        assert_eq!(r.labels[t20], 1, "trusts the consistent worker");
        let q = r.worker_quality.unwrap();
        let good = m.worker_index(WorkerId::new(0)).unwrap();
        let bad = m.worker_index(WorkerId::new(3)).unwrap();
        assert!(q[good] > q[bad]);
    }

    #[test]
    fn rejects_non_binary_spaces() {
        let mut m = ResponseMatrix::new(3);
        m.push(TaskId::new(0), WorkerId::new(0), 2).unwrap();
        assert!(matches!(
            Kos::default().infer(&m).unwrap_err(),
            CrowdError::Unsupported(_)
        ));
    }

    #[test]
    fn rejects_empty_matrix() {
        assert!(Kos::default().infer(&ResponseMatrix::new(2)).is_err());
    }

    #[test]
    fn posteriors_match_labels() {
        let m = matrix(&[(0, 0, 1), (0, 1, 1), (0, 2, 0), (1, 0, 0), (1, 1, 0)]);
        let r = Kos::default().infer(&m).unwrap();
        for (t, &l) in r.labels.iter().enumerate() {
            assert!(
                r.posteriors[t][l as usize] >= 0.5,
                "posterior of chosen label below half"
            );
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let rows: Vec<(u64, u64, u32)> = (0..15)
            .flat_map(|t| (0..5).map(move |w| (t, w, ((t * w) % 2) as u32)))
            .collect();
        let m1 = matrix(&rows);
        let m2 = matrix(&rows);
        let r1 = Kos::default().infer(&m1).unwrap();
        let r2 = Kos::default().infer(&m2).unwrap();
        assert_eq!(r1.labels, r2.labels);
    }
}
