//! KOS iterative message passing (Karger, Oh & Shah, 2011) for binary
//! tasks.
//!
//! KOS runs belief-propagation-style messages on the bipartite task–worker
//! graph: task→worker messages `x` accumulate how strongly the other
//! workers' (reliability-weighted) votes pull the task toward ±1, and
//! worker→task messages `y` accumulate how consistently the worker agrees
//! with other tasks' current beliefs. It needs no priors and is provably
//! order-optimal for random regular assignment graphs — which is why the
//! tutorial lists it next to the EM family.
//!
//! Labels are encoded ±1 internally; label `1` of a binary
//! [`ResponseMatrix`] maps to `+1`.

use crowdkit_core::error::{CrowdError, Result};
use crowdkit_core::response::ResponseMatrix;
use crowdkit_core::traits::{InferenceResult, TruthInferencer};

/// The KOS message-passing algorithm. Binary tasks only.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Kos {
    /// Number of message-passing rounds (the paper uses 10–20; estimates
    /// stabilize quickly).
    pub iterations: usize,
}

impl Default for Kos {
    fn default() -> Self {
        Self { iterations: 15 }
    }
}

impl TruthInferencer for Kos {
    fn name(&self) -> &'static str {
        "kos"
    }

    fn infer(&self, matrix: &ResponseMatrix) -> Result<InferenceResult> {
        if matrix.is_empty() {
            return Err(CrowdError::EmptyInput("response matrix"));
        }
        if matrix.num_labels() != 2 {
            return Err(CrowdError::Unsupported(
                "KOS message passing applies to binary label spaces only",
            ));
        }

        let obs = matrix.observations();
        let n_obs = obs.len();
        // Signed votes: label 1 → +1, label 0 → −1.
        let sign: Vec<f64> = obs.iter().map(|o| if o.label == 1 { 1.0 } else { -1.0 }).collect();

        // Messages live on edges (one per observation).
        // Deterministic non-degenerate init: the canonical choice is
        // y ~ N(1, 1); we use a fixed quasi-random perturbation so results
        // are reproducible without threading an RNG through inference.
        let mut y: Vec<f64> = (0..n_obs)
            .map(|i| 1.0 + 0.1 * ((i as f64 * 0.754_877_666).fract() - 0.5))
            .collect();
        let mut x = vec![0.0f64; n_obs];

        // Edge adjacency: for each task/worker, which observation indices
        // touch it.
        let mut task_edges: Vec<Vec<usize>> = vec![Vec::new(); matrix.num_tasks()];
        let mut worker_edges: Vec<Vec<usize>> = vec![Vec::new(); matrix.num_workers()];
        for (i, o) in obs.iter().enumerate() {
            task_edges[o.task].push(i);
            worker_edges[o.worker].push(i);
        }

        for _ in 0..self.iterations {
            // Task → worker: x_{t→w} = Σ_{w'≠w} A_{t,w'} · y_{w'→t}.
            let mut task_sum = vec![0.0f64; matrix.num_tasks()];
            for (i, o) in obs.iter().enumerate() {
                task_sum[o.task] += sign[i] * y[i];
            }
            for (i, o) in obs.iter().enumerate() {
                x[i] = task_sum[o.task] - sign[i] * y[i];
            }
            // Worker → task: y_{w→t} = Σ_{t'≠t} A_{t',w} · x_{t'→w}.
            let mut worker_sum = vec![0.0f64; matrix.num_workers()];
            for (i, o) in obs.iter().enumerate() {
                worker_sum[o.worker] += sign[i] * x[i];
            }
            for (i, o) in obs.iter().enumerate() {
                y[i] = worker_sum[o.worker] - sign[i] * x[i];
            }
            // Normalize messages to unit RMS to prevent overflow over many
            // rounds (the decision rule is scale-invariant).
            let rms = (y.iter().map(|v| v * v).sum::<f64>() / n_obs as f64).sqrt();
            if rms > 0.0 {
                for v in &mut y {
                    *v /= rms;
                }
            }
        }

        // Decision: sign of Σ_w A_{t,w} · y_{w→t}.
        let mut decision = vec![0.0f64; matrix.num_tasks()];
        for (i, o) in obs.iter().enumerate() {
            decision[o.task] += sign[i] * y[i];
        }
        let labels: Vec<u32> = decision.iter().map(|&d| (d > 0.0) as u32).collect();

        // Pseudo-posteriors via a logistic squash of the decision margin
        // (KOS itself outputs only signs; the squash gives downstream code
        // a usable confidence ordering).
        let posteriors: Vec<Vec<f64>> = decision
            .iter()
            .map(|&d| {
                let p1 = 1.0 / (1.0 + (-d).exp());
                vec![1.0 - p1, p1]
            })
            .collect();

        // Worker quality proxy: normalized agreement weight, squashed to
        // [0, 1]. Workers whose votes align with final beliefs score high.
        let mut agree = vec![0.0f64; matrix.num_workers()];
        let mut count = vec![0usize; matrix.num_workers()];
        for (i, o) in obs.iter().enumerate() {
            let task_sign = if decision[o.task] >= 0.0 { 1.0 } else { -1.0 };
            agree[o.worker] += sign[i] * task_sign;
            count[o.worker] += 1;
        }
        let worker_quality: Vec<f64> = agree
            .iter()
            .zip(&count)
            .map(|(&a, &c)| {
                if c == 0 {
                    0.5
                } else {
                    // Agreement rate in [−1, 1] → [0, 1].
                    (a / c as f64 + 1.0) / 2.0
                }
            })
            .collect();

        Ok(InferenceResult {
            labels,
            posteriors,
            worker_quality: Some(worker_quality),
            iterations: self.iterations,
            converged: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdkit_core::ids::{TaskId, WorkerId};

    fn matrix(rows: &[(u64, u64, u32)]) -> ResponseMatrix {
        let mut m = ResponseMatrix::new(2);
        for &(t, w, l) in rows {
            m.push(TaskId::new(t), WorkerId::new(w), l).unwrap();
        }
        m
    }

    #[test]
    fn recovers_unanimous_labels() {
        let m = matrix(&[(0, 0, 1), (0, 1, 1), (1, 0, 0), (1, 1, 0)]);
        let r = Kos::default().infer(&m).unwrap();
        assert_eq!(r.labels, vec![1, 0]);
    }

    #[test]
    fn downweights_the_inconsistent_worker() {
        // Workers 0–2 truthful on 20 tasks; worker 3 always opposes. On a
        // task where only workers 0 and 3 voted, KOS should follow worker 0.
        let mut rows = Vec::new();
        for t in 0..20u64 {
            let truth = (t % 2) as u32;
            rows.push((t, 0, truth));
            rows.push((t, 1, truth));
            rows.push((t, 2, truth));
            rows.push((t, 3, 1 - truth));
        }
        rows.push((20, 0, 1));
        rows.push((20, 3, 0));
        let m = matrix(&rows);
        let r = Kos::default().infer(&m).unwrap();
        let t20 = m.task_index(TaskId::new(20)).unwrap();
        assert_eq!(r.labels[t20], 1, "trusts the consistent worker");
        let q = r.worker_quality.unwrap();
        let good = m.worker_index(WorkerId::new(0)).unwrap();
        let bad = m.worker_index(WorkerId::new(3)).unwrap();
        assert!(q[good] > q[bad]);
    }

    #[test]
    fn rejects_non_binary_spaces() {
        let mut m = ResponseMatrix::new(3);
        m.push(TaskId::new(0), WorkerId::new(0), 2).unwrap();
        assert!(matches!(
            Kos::default().infer(&m).unwrap_err(),
            CrowdError::Unsupported(_)
        ));
    }

    #[test]
    fn rejects_empty_matrix() {
        assert!(Kos::default().infer(&ResponseMatrix::new(2)).is_err());
    }

    #[test]
    fn posteriors_match_labels() {
        let m = matrix(&[(0, 0, 1), (0, 1, 1), (0, 2, 0), (1, 0, 0), (1, 1, 0)]);
        let r = Kos::default().infer(&m).unwrap();
        for (t, &l) in r.labels.iter().enumerate() {
            assert!(
                r.posteriors[t][l as usize] >= 0.5,
                "posterior of chosen label below half"
            );
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let rows: Vec<(u64, u64, u32)> = (0..15)
            .flat_map(|t| (0..5).map(move |w| (t, w, ((t * w) % 2) as u32)))
            .collect();
        let m1 = matrix(&rows);
        let m2 = matrix(&rows);
        let r1 = Kos::default().infer(&m1).unwrap();
        let r2 = Kos::default().infer(&m2).unwrap();
        assert_eq!(r1.labels, r2.labels);
    }
}
