//! One-coin EM (ZenCrowd-style).
//!
//! The simplest probabilistic worker model: worker `w` answers correctly
//! with a single reliability `p_w` and otherwise picks uniformly among the
//! wrong labels. This is the model behind ZenCrowd (Demartini et al., 2012)
//! and most "EM" baselines in crowdsourcing papers. It trades the
//! expressiveness of Dawid–Skene's full confusion matrix for far fewer
//! parameters, which wins when workers answer only a handful of tasks.

//!
//! The kernel mirrors the Dawid–Skene layout: flat posterior tables,
//! per-worker log tables (`ln p_w`, `ln` of the wrong-label share)
//! refreshed once per M-step, reliability estimation sharded over worker
//! ranges and the E-step over task ranges — byte-identical output at any
//! thread count. `config.freeze` enables the sparse incremental E-step
//! shared with the other EM kernels (see [`crate::freeze`]): frozen tasks
//! leave the worklist and fully-frozen workers skip their (bitwise no-op)
//! reliability recompute.

use crowdkit_core::error::{CrowdError, Result};
use crowdkit_core::par::parallel_items_mut;
use crowdkit_core::response::ResponseMatrix;
use crowdkit_core::traits::{InferenceResult, TruthInferencer};

use crowdkit_obs as obs;

use crate::em::{
    argmax_labels, log_normalize, obs_iter, obs_run, posterior_rows, resolve_threads,
    update_priors, vote_fraction_posteriors, EmConfig, LN_FLOOR,
};
use crate::freeze::ActiveSet;

/// The one-coin EM algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct OneCoinEm {
    /// Iteration and smoothing settings.
    pub config: EmConfig,
}

impl OneCoinEm {
    /// Creates the algorithm with custom EM settings.
    pub fn with_config(config: EmConfig) -> Self {
        Self { config }
    }
}

impl TruthInferencer for OneCoinEm {
    fn name(&self) -> &'static str {
        "zc"
    }

    fn infer(&self, matrix: &ResponseMatrix) -> Result<InferenceResult> {
        if matrix.is_empty() {
            return Err(CrowdError::EmptyInput("response matrix"));
        }
        let k = matrix.num_labels();
        let n_tasks = matrix.num_tasks();
        let n_workers = matrix.num_workers();
        let wrong_share = 1.0 / (k as f64 - 1.0).max(1.0);
        let cfg = self.config;
        let threads = resolve_threads(cfg.threads, matrix.num_observations() * k);
        let (t_off, t_entries) = matrix.task_csr();
        let (w_off, w_entries) = matrix.worker_csr();

        let mut posteriors = vote_fraction_posteriors(matrix);
        let mut aset = ActiveSet::new(cfg.freeze, n_tasks, k, w_off);
        let mut priors = vec![1.0 / k as f64; k];
        let mut log_priors = vec![0.0f64; k];
        let mut reliability = vec![0.8f64; n_workers];
        // Per-worker log pair refreshed each M-step: `ln p_w` and
        // `ln((1 - p_w) · wrong_share)`.
        let mut log_right = vec![0.0f64; n_workers];
        let mut log_wrong = vec![0.0f64; n_workers];

        let rec = obs::current();
        let obs_on = rec.enabled();
        let run_start = obs::WallTimer::start();
        // Lineage baseline: the vote-fraction init, i.e. MV's decision.
        let mut lineage = crowdkit_provenance::RunLineage::begin("zc", &posteriors, k);

        let mut iterations = 0;
        let mut converged = false;
        while iterations < cfg.max_iters {
            iterations += 1;
            let t_m = obs_on.then(obs::WallTimer::start);

            // M-step: p_w = (smoothed) expected fraction of correct
            // answers, sharded over worker ranges; each worker sums its
            // own CSR entries in insertion order.
            update_priors(&posteriors, k, &mut priors);
            for (lp, &p) in log_priors.iter_mut().zip(&priors) {
                *lp = p.max(LN_FLOOR).ln();
            }
            let post = &posteriors;
            let aset_r = &aset;
            parallel_items_mut(&mut reliability, 1, threads, |w0, run| {
                for (i, r) in run.iter_mut().enumerate() {
                    let w = w0 + i;
                    // All of this worker's posterior inputs are pinned:
                    // recomputing reproduces the same bits, so skip.
                    if aset_r.can_skip_worker_update(w) {
                        continue;
                    }
                    let mut correct = cfg.smoothing;
                    let mut total = 2.0 * cfg.smoothing;
                    for &(t, l) in &w_entries[w_off[w] as usize..w_off[w + 1] as usize] {
                        correct += post[t as usize * k + l as usize];
                        total += 1.0;
                    }
                    // Clamp away from 0 and 1 so log-likelihoods stay
                    // finite and a perfectly-agreeing worker cannot zero
                    // out all other labels' mass.
                    *r = (correct / total).clamp(1e-6, 1.0 - 1e-6);
                }
            });
            for w in 0..n_workers {
                let p = reliability[w];
                log_right[w] = p.max(LN_FLOOR).ln();
                log_wrong[w] = ((1.0 - p) * wrong_share).max(LN_FLOOR).ln();
            }

            let m_ns = t_m.map_or(0, |t| t.elapsed_ns());
            let t_e = obs_on.then(obs::WallTimer::start);

            // E-step over the active worklist (all tasks while freezing is
            // off). Per observation the update is a scalar: every label
            // gets the worker's wrong-answer mass, the observed label the
            // right/wrong correction — O(obs + k) per task instead of
            // O(obs · k).
            let log_priors_r = &log_priors;
            let log_right_r = &log_right;
            let log_wrong_r = &log_wrong;
            let out = aset.sweep(&mut posteriors, t_off, t_entries, threads, |t, row| {
                row.copy_from_slice(log_priors_r);
                let mut base = 0.0;
                for &(w, l) in &t_entries[t_off[t] as usize..t_off[t + 1] as usize] {
                    let w = w as usize;
                    base += log_wrong_r[w];
                    row[l as usize] += log_right_r[w] - log_wrong_r[w];
                }
                for x in row.iter_mut() {
                    *x += base;
                }
                log_normalize(row);
            });

            let delta = out.delta;
            if let Some(l) = &mut lineage {
                // Committed table after the sweep — identical bits on the
                // sparse and dense-reference paths, so lineage matches.
                l.observe_iter(iterations, &posteriors);
            }
            if obs_on {
                let e_ns = t_e.map_or(0, |t| t.elapsed_ns());
                obs_iter(&*rec, "zc", iterations, delta, m_ns, e_ns);
                aset.observe(&*rec, "zc", iterations, &out);
            }
            if delta < cfg.tol {
                converged = true;
                break;
            }
        }
        if let Some(l) = lineage.take() {
            l.finish(matrix, &posteriors, Some(&reliability));
        }
        obs_run("zc", matrix, iterations, converged, run_start);

        let labels = argmax_labels(&posteriors, k);
        Ok(InferenceResult {
            labels,
            posteriors: posterior_rows(&posteriors, k),
            worker_quality: Some(reliability),
            iterations,
            converged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdkit_core::ids::{TaskId, WorkerId};

    fn matrix(rows: &[(u64, u64, u32)], k: usize) -> ResponseMatrix {
        let mut m = ResponseMatrix::new(k);
        for &(t, w, l) in rows {
            m.push(TaskId::new(t), WorkerId::new(w), l).unwrap();
        }
        m
    }

    #[test]
    fn unanimous_answers_converge_confidently() {
        let m = matrix(&[(0, 0, 1), (0, 1, 1), (1, 0, 0), (1, 1, 0)], 2);
        let r = OneCoinEm::default().infer(&m).unwrap();
        assert_eq!(r.labels, vec![1, 0]);
        assert!(r.converged);
        assert!(r.confidence(0) > 0.9);
    }

    #[test]
    fn reliability_separates_good_from_bad_workers() {
        let mut rows = Vec::new();
        for t in 0..30u64 {
            let truth = (t % 2) as u32;
            rows.push((t, 0, truth)); // always right
            rows.push((t, 1, truth));
            rows.push((t, 2, truth));
            rows.push((t, 3, 1 - truth)); // always wrong
        }
        let m = matrix(&rows, 2);
        let r = OneCoinEm::default().infer(&m).unwrap();
        let q = r.worker_quality.unwrap();
        let good = m.worker_index(WorkerId::new(0)).unwrap();
        let bad = m.worker_index(WorkerId::new(3)).unwrap();
        assert!(q[good] > 0.9, "good {}", q[good]);
        assert!(q[bad] < 0.1, "bad {}", q[bad]);
        // All truths recovered.
        for t in 0..30u64 {
            let idx = m.task_index(TaskId::new(t)).unwrap();
            assert_eq!(r.labels[idx], (t % 2) as u32);
        }
    }

    #[test]
    fn multiclass_wrong_mass_is_spread() {
        // Single answer: posterior should put p on the chosen label and
        // (1-p)/(k-1) on each other label — i.e. chosen label wins.
        let m = matrix(&[(0, 0, 2)], 4);
        let r = OneCoinEm::default().infer(&m).unwrap();
        assert_eq!(r.labels, vec![2]);
        let row = &r.posteriors[0];
        // Remaining labels share the rest equally.
        assert!((row[0] - row[1]).abs() < 1e-9);
        assert!((row[1] - row[3]).abs() < 1e-9);
        assert!(row[2] > row[0]);
    }

    #[test]
    fn rejects_empty_matrix() {
        let m = ResponseMatrix::new(3);
        assert!(matches!(
            OneCoinEm::default().infer(&m).unwrap_err(),
            CrowdError::EmptyInput(_)
        ));
    }

    #[test]
    fn reliabilities_stay_probabilities() {
        let m = matrix(&[(0, 0, 0), (1, 0, 1), (2, 0, 0), (0, 1, 1)], 2);
        let r = OneCoinEm::default().infer(&m).unwrap();
        for q in r.worker_quality.unwrap() {
            assert!((0.0..=1.0).contains(&q));
        }
    }
}
