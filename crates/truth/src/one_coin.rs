//! One-coin EM (ZenCrowd-style).
//!
//! The simplest probabilistic worker model: worker `w` answers correctly
//! with a single reliability `p_w` and otherwise picks uniformly among the
//! wrong labels. This is the model behind ZenCrowd (Demartini et al., 2012)
//! and most "EM" baselines in crowdsourcing papers. It trades the
//! expressiveness of Dawid–Skene's full confusion matrix for far fewer
//! parameters, which wins when workers answer only a handful of tasks.

use crowdkit_core::error::{CrowdError, Result};
use crowdkit_core::response::ResponseMatrix;
use crowdkit_core::traits::{InferenceResult, TruthInferencer};

use crate::em::{
    argmax_labels, max_abs_diff, normalize, update_priors, vote_fraction_posteriors, EmConfig,
};

/// The one-coin EM algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct OneCoinEm {
    /// Iteration and smoothing settings.
    pub config: EmConfig,
}

impl OneCoinEm {
    /// Creates the algorithm with custom EM settings.
    pub fn with_config(config: EmConfig) -> Self {
        Self { config }
    }
}

impl TruthInferencer for OneCoinEm {
    fn name(&self) -> &'static str {
        "zc"
    }

    fn infer(&self, matrix: &ResponseMatrix) -> Result<InferenceResult> {
        if matrix.is_empty() {
            return Err(CrowdError::EmptyInput("response matrix"));
        }
        let k = matrix.num_labels();
        let wrong_share = 1.0 / (k as f64 - 1.0).max(1.0);
        let cfg = self.config;

        let mut posteriors = vote_fraction_posteriors(matrix);
        let mut priors = vec![1.0 / k as f64; k];
        let mut reliability = vec![0.8f64; matrix.num_workers()];

        let mut iterations = 0;
        let mut converged = false;
        while iterations < cfg.max_iters {
            iterations += 1;

            // M-step: p_w = (smoothed) expected fraction of correct answers.
            update_priors(&posteriors, &mut priors);
            let mut correct_mass = vec![cfg.smoothing; matrix.num_workers()];
            let mut total_mass = vec![2.0 * cfg.smoothing; matrix.num_workers()];
            for o in matrix.observations() {
                correct_mass[o.worker] += posteriors[o.task][o.label as usize];
                total_mass[o.worker] += 1.0;
            }
            for (w, p) in reliability.iter_mut().enumerate() {
                // Clamp away from 0 and 1 so log-likelihoods stay finite and
                // a perfectly-agreeing worker cannot zero out all other
                // labels' mass.
                *p = (correct_mass[w] / total_mass[w]).clamp(1e-6, 1.0 - 1e-6);
            }

            // E-step in log space.
            let mut next = vec![vec![0.0f64; k]; matrix.num_tasks()];
            for (t, row) in next.iter_mut().enumerate() {
                for (l, x) in row.iter_mut().enumerate() {
                    *x = priors[l].max(1e-300).ln();
                }
                for o in matrix.observations_for_task(t) {
                    let p = reliability[o.worker];
                    let wrong = ((1.0 - p) * wrong_share).max(1e-300).ln();
                    let right = p.max(1e-300).ln();
                    for (l, x) in row.iter_mut().enumerate() {
                        *x += if l == o.label as usize { right } else { wrong };
                    }
                }
                let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                for x in row.iter_mut() {
                    *x = (*x - max).exp();
                }
                normalize(row);
            }

            let delta = max_abs_diff(&posteriors, &next);
            posteriors = next;
            if delta < cfg.tol {
                converged = true;
                break;
            }
        }

        let labels = argmax_labels(&posteriors);
        Ok(InferenceResult {
            labels,
            posteriors,
            worker_quality: Some(reliability),
            iterations,
            converged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdkit_core::ids::{TaskId, WorkerId};

    fn matrix(rows: &[(u64, u64, u32)], k: usize) -> ResponseMatrix {
        let mut m = ResponseMatrix::new(k);
        for &(t, w, l) in rows {
            m.push(TaskId::new(t), WorkerId::new(w), l).unwrap();
        }
        m
    }

    #[test]
    fn unanimous_answers_converge_confidently() {
        let m = matrix(&[(0, 0, 1), (0, 1, 1), (1, 0, 0), (1, 1, 0)], 2);
        let r = OneCoinEm::default().infer(&m).unwrap();
        assert_eq!(r.labels, vec![1, 0]);
        assert!(r.converged);
        assert!(r.confidence(0) > 0.9);
    }

    #[test]
    fn reliability_separates_good_from_bad_workers() {
        let mut rows = Vec::new();
        for t in 0..30u64 {
            let truth = (t % 2) as u32;
            rows.push((t, 0, truth)); // always right
            rows.push((t, 1, truth));
            rows.push((t, 2, truth));
            rows.push((t, 3, 1 - truth)); // always wrong
        }
        let m = matrix(&rows, 2);
        let r = OneCoinEm::default().infer(&m).unwrap();
        let q = r.worker_quality.unwrap();
        let good = m.worker_index(WorkerId::new(0)).unwrap();
        let bad = m.worker_index(WorkerId::new(3)).unwrap();
        assert!(q[good] > 0.9, "good {}", q[good]);
        assert!(q[bad] < 0.1, "bad {}", q[bad]);
        // All truths recovered.
        for t in 0..30u64 {
            let idx = m.task_index(TaskId::new(t)).unwrap();
            assert_eq!(r.labels[idx], (t % 2) as u32);
        }
    }

    #[test]
    fn multiclass_wrong_mass_is_spread() {
        // Single answer: posterior should put p on the chosen label and
        // (1-p)/(k-1) on each other label — i.e. chosen label wins.
        let m = matrix(&[(0, 0, 2)], 4);
        let r = OneCoinEm::default().infer(&m).unwrap();
        assert_eq!(r.labels, vec![2]);
        let row = &r.posteriors[0];
        // Remaining labels share the rest equally.
        assert!((row[0] - row[1]).abs() < 1e-9);
        assert!((row[1] - row[3]).abs() < 1e-9);
        assert!(row[2] > row[0]);
    }

    #[test]
    fn rejects_empty_matrix() {
        let m = ResponseMatrix::new(3);
        assert!(matches!(
            OneCoinEm::default().infer(&m).unwrap_err(),
            CrowdError::EmptyInput(_)
        ));
    }

    #[test]
    fn reliabilities_stay_probabilities() {
        let m = matrix(&[(0, 0, 0), (1, 0, 1), (2, 0, 0), (0, 1, 1)], 2);
        let r = OneCoinEm::default().infer(&m).unwrap();
        for q in r.worker_quality.unwrap() {
            assert!((0.0..=1.0).contains(&q));
        }
    }
}
