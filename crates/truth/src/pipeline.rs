//! The collect-then-infer driver shared by examples and experiments.
//!
//! A labeling pipeline does three things: buy `k` answers per task from a
//! [`CrowdOracle`] (optionally stopping early per task via a
//! [`StoppingRule`]), build the [`ResponseMatrix`], and run a
//! [`TruthInferencer`]. This module packages that loop once so every
//! experiment, example and integration test exercises the same code path.

use crowdkit_core::ask::AskRequest;
use crowdkit_core::error::Result;
use crowdkit_core::response::ResponseMatrix;
use crowdkit_core::task::Task;
use crowdkit_core::traits::{CrowdOracle, InferenceResult, StoppingRule, TruthInferencer};

/// Outcome of a labeling pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// Inference output (dense indices follow the response matrix).
    pub inference: InferenceResult,
    /// The collected response matrix (for id lookups and audits).
    pub matrix: ResponseMatrix,
    /// Total answers purchased.
    pub answers_bought: usize,
}

impl PipelineOutcome {
    /// The estimated label for a task, if it received any answers.
    pub fn label_for(&self, task: &Task) -> Option<u32> {
        self.matrix
            .task_index(task.id)
            .map(|t| self.inference.labels[t])
    }

    /// Estimated labels aligned with `tasks` (None for tasks that got no
    /// answers before the budget died).
    pub fn labels_aligned(&self, tasks: &[Task]) -> Vec<Option<u32>> {
        tasks.iter().map(|t| self.label_for(t)).collect()
    }
}

/// Buys exactly `k` answers per single-choice task (or as many as the
/// budget allows), then runs `inferencer`.
///
/// Tasks that received zero answers (budget exhausted) are absent from the
/// matrix; use [`PipelineOutcome::labels_aligned`] to map back.
pub fn label_tasks<O, I>(
    oracle: &O,
    tasks: &[Task],
    k: usize,
    inferencer: &I,
) -> Result<PipelineOutcome>
where
    O: CrowdOracle + ?Sized,
    I: TruthInferencer + ?Sized,
{
    label_tasks_adaptive(oracle, tasks, &crate::sequential::FixedK { k: k as u32 }, k as u32, inferencer)
}

/// Buys answers per task until `rule` says stop (with a hard cap of
/// `max_answers` per task), then runs `inferencer`.
///
/// Answers are bought round-robin across tasks in waves — the platform
/// round model — so early stopping on easy tasks frees budget for hard
/// ones, which is the entire point of adaptive stopping. Each wave goes to
/// the platform as one batched request, so the still-open tasks of a wave
/// overlap in crowd latency.
pub fn label_tasks_adaptive<O, R, I>(
    oracle: &O,
    tasks: &[Task],
    rule: &R,
    max_answers: u32,
    inferencer: &I,
) -> Result<PipelineOutcome>
where
    O: CrowdOracle + ?Sized,
    R: StoppingRule + ?Sized,
    I: TruthInferencer + ?Sized,
{
    let num_labels = tasks
        .iter()
        .filter_map(Task::num_labels)
        .max()
        .unwrap_or(2);
    let mut matrix = ResponseMatrix::new(num_labels);
    let mut votes: Vec<Vec<u32>> = tasks
        .iter()
        .map(|_| vec![0u32; num_labels])
        .collect();
    let mut open: Vec<usize> = (0..tasks.len()).collect();
    let mut bought = 0usize;

    while !open.is_empty() {
        let reqs: Vec<AskRequest<'_>> =
            open.iter().map(|&ti| AskRequest::new(&tasks[ti])).collect();
        let outcomes = oracle.ask_batch(&reqs)?;
        let mut still_open = Vec::with_capacity(open.len());
        let mut exhausted = false;
        for (&ti, out) in open.iter().zip(&outcomes) {
            match &out.shortfall {
                // Budget or pool died somewhere in this wave: keep what was
                // bought, stop collecting entirely afterwards.
                Some(e) if e.is_resource_exhaustion() => exhausted = true,
                Some(e) => return Err(e.clone()),
                None => {}
            }
            for answer in &out.answers {
                if let Some(label) = answer.value.as_choice() {
                    matrix.push(answer.task, answer.worker, label)?;
                    votes[ti][label as usize] += 1;
                    bought += 1;
                }
            }
            if !rule.should_stop(&votes[ti], max_answers) {
                still_open.push(ti);
            }
        }
        if exhausted {
            break;
        }
        open = still_open;
    }

    let inference = inferencer.infer(&matrix)?;
    Ok(PipelineOutcome {
        inference,
        matrix,
        answers_bought: bought,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mv::MajorityVote;
    use crate::sequential::MajorityMargin;
    use crowdkit_core::answer::{Answer, AnswerValue};
    use crowdkit_core::budget::Budget;
    use crowdkit_core::error::CrowdError;
    use crowdkit_core::ids::{TaskId, WorkerId};

    /// Oracle whose workers always answer the task's ground truth; spends
    /// one unit per answer against an optional budget.
    struct TruthfulOracle {
        budget: std::cell::RefCell<Budget>,
        next_worker: std::cell::Cell<u64>,
        delivered: std::cell::Cell<u64>,
    }

    impl TruthfulOracle {
        fn new(limit: f64) -> Self {
            Self {
                budget: std::cell::RefCell::new(Budget::new(limit)),
                next_worker: std::cell::Cell::new(0),
                delivered: std::cell::Cell::new(0),
            }
        }
    }

    impl CrowdOracle for TruthfulOracle {
        fn ask_one(&self, task: &Task) -> Result<Answer> {
            self.budget.borrow_mut().debit(1.0)?;
            let w = WorkerId::new(self.next_worker.get());
            self.next_worker.set(self.next_worker.get() + 1);
            self.delivered.set(self.delivered.get() + 1);
            Ok(Answer::bare(
                task.id,
                w,
                task.truth.clone().expect("test tasks carry truth"),
            ))
        }

        fn remaining_budget(&self) -> Option<f64> {
            Some(self.budget.borrow().remaining())
        }

        fn answers_delivered(&self) -> u64 {
            self.delivered.get()
        }
    }

    fn tasks(n: usize) -> Vec<Task> {
        (0..n)
            .map(|i| {
                Task::binary(TaskId::new(i as u64), format!("t{i}"))
                    .with_truth(AnswerValue::Choice((i % 2) as u32))
            })
            .collect()
    }

    #[test]
    fn fixed_k_pipeline_labels_everything() {
        let ts = tasks(10);
        let oracle = TruthfulOracle::new(1e9);
        let out = label_tasks(&oracle, &ts, 3, &MajorityVote).unwrap();
        assert_eq!(out.answers_bought, 30);
        for (i, t) in ts.iter().enumerate() {
            assert_eq!(out.label_for(t), Some((i % 2) as u32));
        }
    }

    #[test]
    fn adaptive_margin_stops_early_on_unanimous_answers() {
        let ts = tasks(10);
        let oracle = TruthfulOracle::new(1e9);
        let rule = MajorityMargin { margin: 2 };
        let out = label_tasks_adaptive(&oracle, &ts, &rule, 10, &MajorityVote).unwrap();
        // Truthful workers agree immediately: 2 answers per task suffice.
        assert_eq!(out.answers_bought, 20, "margin-2 with unanimity = 2 answers");
        assert_eq!(
            out.labels_aligned(&ts),
            (0..10).map(|i| Some((i % 2) as u32)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn budget_exhaustion_yields_partial_labels() {
        let ts = tasks(10);
        let oracle = TruthfulOracle::new(7.0);
        let out = label_tasks(&oracle, &ts, 3, &MajorityVote).unwrap();
        assert_eq!(out.answers_bought, 7);
        let labelled = out.labels_aligned(&ts).iter().filter(|l| l.is_some()).count();
        assert_eq!(labelled, 7, "round-robin wave labels first 7 tasks once");
    }

    #[test]
    fn empty_collection_is_an_error() {
        let ts = tasks(3);
        let oracle = TruthfulOracle::new(0.0);
        let err = label_tasks(&oracle, &ts, 3, &MajorityVote).unwrap_err();
        assert!(matches!(err, CrowdError::EmptyInput(_)));
    }
}
