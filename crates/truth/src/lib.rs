//! # crowdkit-truth
//!
//! Truth inference: turning redundant, noisy crowd answers into one
//! estimated truth per task, with calibrated posteriors and worker-quality
//! estimates.
//!
//! This crate implements the canonical algorithm families surveyed by the
//! SIGMOD 2017 tutorial on crowdsourced data management:
//!
//! | Algorithm | Worker model | Module |
//! |---|---|---|
//! | Majority vote | none | [`mv`] |
//! | Weighted majority vote | externally supplied weights | [`mv`] |
//! | One-coin EM (ZenCrowd-style) | single reliability per worker | [`one_coin`] |
//! | Dawid–Skene EM | full confusion matrix per worker | [`dawid_skene`] |
//! | GLAD | worker ability × task difficulty | [`glad`] |
//! | KOS message passing | binary spectral-style iteration | [`kos`] |
//! | Numeric aggregation | bias/variance models | [`numeric`] |
//!
//! All categorical algorithms implement
//! [`crowdkit_core::traits::TruthInferencer`] over a
//! [`crowdkit_core::response::ResponseMatrix`], so experiments swap them
//! freely. [`sequential`] provides the stopping rules used for cost control
//! (fixed-k, majority margin, SPRT), and [`pipeline`] the collect-then-infer
//! driver shared by examples and experiments.
//!
//! The EM kernels scale to million-task workloads via the sparse
//! incremental E-step in [`freeze`]: tasks whose posteriors stop moving
//! are frozen out of the per-iteration worklist (see `DESIGN.md` §11).
//! Freezing is off by default and the dense behaviour is reproduced bit
//! for bit.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod dawid_skene;
pub mod em;
pub mod freeze;
pub mod glad;
pub mod gold;
pub mod kos;
pub mod mv;
pub mod numeric;
pub mod one_coin;
pub mod pipeline;
pub mod sequential;

pub use dawid_skene::DawidSkene;
pub use freeze::FreezeConfig;
pub use glad::Glad;
pub use gold::{GoldSet, GoldWeightedVote};
pub use kos::Kos;
pub use mv::{MajorityVote, WeightedMajorityVote};
pub use one_coin::OneCoinEm;
pub use sequential::{FixedK, MajorityMargin, Sprt};
