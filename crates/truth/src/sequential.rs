//! Stopping rules: when to stop buying answers for a task.
//!
//! Cost control in crowd filtering hinges on adaptive stopping — spend
//! little on easy tasks, more on contested ones. The tutorial surveys
//! fixed redundancy, vote-margin rules, and sequential probability ratio
//! tests (the strategy behind CrowdScreen's optimized decision grids).
//! Experiment E5 sweeps these against each other.

use crowdkit_core::traits::StoppingRule;

/// Stop after exactly `k` answers — the fixed-redundancy baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedK {
    /// Number of answers to collect.
    pub k: u32,
}

impl StoppingRule for FixedK {
    fn name(&self) -> &'static str {
        "fixed_k"
    }

    fn should_stop(&self, votes: &[u32], max_answers: u32) -> bool {
        let total: u32 = votes.iter().sum();
        total >= self.k.min(max_answers)
    }
}

/// Stop once the leading label is `margin` votes ahead of the runner-up
/// (or the answer cap is hit). With `margin = 2` this is "first to lead by
/// two", the classic early-termination heuristic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MajorityMargin {
    /// Required lead of the top label over the second.
    pub margin: u32,
}

impl StoppingRule for MajorityMargin {
    fn name(&self) -> &'static str {
        "margin"
    }

    fn should_stop(&self, votes: &[u32], max_answers: u32) -> bool {
        let total: u32 = votes.iter().sum();
        if total >= max_answers {
            return true;
        }
        let mut top = 0u32;
        let mut second = 0u32;
        for &v in votes {
            if v >= top {
                second = top;
                top = v;
            } else if v > second {
                second = v;
            }
        }
        top >= second + self.margin
    }
}

/// Sequential probability ratio test for *binary* tasks.
///
/// Assumes workers answer correctly with probability `worker_accuracy` and
/// tests `H1: truth = 1` against `H0: truth = 0`. After `n1` votes for 1
/// and `n0` votes for 0 the log-likelihood ratio is
/// `(n1 − n0) · ln(p / (1 − p))`; collection stops when it exits the
/// Wald thresholds `[ln(β/(1−α)), ln((1−β)/α)]`.
///
/// For non-binary vote vectors the rule degenerates to the margin rule with
/// an equivalent vote-difference threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sprt {
    /// Assumed worker accuracy `p ∈ (0.5, 1)`.
    pub worker_accuracy: f64,
    /// Type-I error bound α.
    pub alpha: f64,
    /// Type-II error bound β.
    pub beta: f64,
}

impl Default for Sprt {
    fn default() -> Self {
        Self {
            worker_accuracy: 0.75,
            alpha: 0.05,
            beta: 0.05,
        }
    }
}

impl Sprt {
    /// The vote-difference threshold implied by the Wald bounds: stop when
    /// `|n1 − n0| ≥ threshold`.
    pub fn vote_difference_threshold(&self) -> f64 {
        let p = self.worker_accuracy.clamp(0.5 + 1e-9, 1.0 - 1e-9);
        let upper = ((1.0 - self.beta) / self.alpha).ln();
        upper / (p / (1.0 - p)).ln()
    }
}

impl StoppingRule for Sprt {
    fn name(&self) -> &'static str {
        "sprt"
    }

    fn should_stop(&self, votes: &[u32], max_answers: u32) -> bool {
        let total: u32 = votes.iter().sum();
        if total >= max_answers {
            return true;
        }
        let threshold = self.vote_difference_threshold();
        if votes.len() == 2 {
            let diff = (votes[1] as f64 - votes[0] as f64).abs();
            diff >= threshold
        } else {
            // Generalized: top-vs-second difference against the same bound.
            let mut top = 0u32;
            let mut second = 0u32;
            for &v in votes {
                if v >= top {
                    second = top;
                    top = v;
                } else if v > second {
                    second = v;
                }
            }
            (top - second) as f64 >= threshold
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_k_stops_at_k() {
        let r = FixedK { k: 3 };
        assert!(!r.should_stop(&[1, 1], 10));
        assert!(r.should_stop(&[2, 1], 10));
        assert!(r.should_stop(&[3, 1], 10));
    }

    #[test]
    fn fixed_k_respects_cap() {
        let r = FixedK { k: 100 };
        assert!(r.should_stop(&[3, 2], 5), "cap of 5 reached");
    }

    #[test]
    fn margin_rule_waits_for_a_lead() {
        let r = MajorityMargin { margin: 2 };
        assert!(!r.should_stop(&[1, 0], 10));
        assert!(r.should_stop(&[2, 0], 10));
        assert!(!r.should_stop(&[3, 2], 10));
        assert!(r.should_stop(&[4, 2], 10));
    }

    #[test]
    fn margin_rule_stops_at_cap_even_when_tied() {
        let r = MajorityMargin { margin: 3 };
        assert!(r.should_stop(&[5, 5], 10));
    }

    #[test]
    fn margin_rule_multiclass_uses_top_two() {
        let r = MajorityMargin { margin: 2 };
        assert!(!r.should_stop(&[3, 2, 1], 20));
        assert!(r.should_stop(&[4, 2, 1], 20));
    }

    #[test]
    fn sprt_threshold_matches_wald_formula() {
        let s = Sprt {
            worker_accuracy: 0.75,
            alpha: 0.05,
            beta: 0.05,
        };
        let expect = (0.95f64 / 0.05).ln() / (3.0f64).ln();
        assert!((s.vote_difference_threshold() - expect).abs() < 1e-12);
    }

    #[test]
    fn sprt_stops_on_decisive_difference() {
        let s = Sprt::default(); // threshold ≈ 2.68
        assert!(!s.should_stop(&[0, 2], 20));
        assert!(s.should_stop(&[0, 3], 20));
        assert!(s.should_stop(&[3, 0], 20));
        assert!(!s.should_stop(&[2, 3], 20));
    }

    #[test]
    fn sprt_more_accurate_workers_need_fewer_votes() {
        let sloppy = Sprt {
            worker_accuracy: 0.6,
            ..Sprt::default()
        };
        let sharp = Sprt {
            worker_accuracy: 0.9,
            ..Sprt::default()
        };
        assert!(sharp.vote_difference_threshold() < sloppy.vote_difference_threshold());
    }

    #[test]
    fn sprt_respects_cap() {
        let s = Sprt::default();
        assert!(s.should_stop(&[5, 5], 10));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(FixedK { k: 1 }.name(), "fixed_k");
        assert_eq!(MajorityMargin { margin: 1 }.name(), "margin");
        assert_eq!(Sprt::default().name(), "sprt");
    }
}
