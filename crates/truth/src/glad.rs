//! GLAD: Generative model of Labels, Abilities, and Difficulties
//! (Whitehill et al., 2009), generalized to k labels.
//!
//! Model: worker `w` has ability `α_w ∈ ℝ`; task `t` has inverse
//! difficulty `β_t > 0` (parameterized as `β = e^b` so gradient ascent is
//! unconstrained). The probability that `w` answers `t` correctly is
//! `σ(α_w · β_t)`; wrong answers are uniform over the other `k − 1`
//! labels.
//!
//! Inference is EM: the E-step computes task posteriors exactly as in the
//! one-coin model but with a per-(worker, task) correctness probability;
//! the M-step runs a few steps of gradient ascent on the expected complete
//! log-likelihood with respect to all `α` and `b`.

//!
//! The kernel follows the flat deterministic-parallel layout shared with
//! the other EM algorithms: flat posterior tables, the gradient of `b`
//! accumulating over task ranges (task CSR) and the gradient of `α` over
//! worker ranges (worker CSR), each entity's sum running in fixed
//! insertion order — so results are byte-identical at any thread count.
//!
//! GLAD is the kernel that gains the most from the sparse incremental
//! E-step (`config.freeze`, see [`crate::freeze`]): it runs many more
//! iterations than Dawid–Skene and its per-iteration cost is dominated by
//! per-task work (the E-step plus `gradient_steps` difficulty-gradient
//! sweeps), all of which shrinks with the active set. Freezing pins a
//! frozen task's posterior row *and* its difficulty `b_t`; a worker all
//! of whose tasks froze has its ability `α_w` pinned as part of the same
//! semantics (α's gradient depends on α itself, so skipping its update is
//! a modelling choice, not a cached recompute).
//!
//! Freezing also has a worker-side half unique to GLAD: **ability
//! pinning**. The α-gradient walk visits every edge of every worker with
//! at least one active task (frozen tasks' terms depend on the still-
//! moving α, so they cannot be dropped), which would keep the M-step near
//! its dense cost long after most tasks froze. Instead, a worker whose α
//! moves less than `freeze.eps` across a whole M-step for
//! `freeze.patience` consecutive iterations is pinned permanently — its
//! gradient walk is skipped and its α held. Pinning decisions are a pure
//! function of the (thread-invariant) α trajectory and apply identically
//! on the worklist and dense-reference paths, so the bit-equality
//! property tests cover them.

use crowdkit_core::error::{CrowdError, Result};
use crowdkit_core::par::{parallel_active_items_mut, parallel_items_mut};
use crowdkit_core::response::ResponseMatrix;
use crowdkit_core::traits::{InferenceResult, TruthInferencer};

use crowdkit_obs as obs;

use crate::em::{
    argmax_labels, log_normalize, obs_iter, obs_run, posterior_rows, resolve_threads,
    update_priors, vote_fraction_posteriors,
};
use crate::freeze::{ActiveSet, FreezeConfig};

/// Settings for [`Glad`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GladConfig {
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Convergence tolerance on posterior movement.
    pub tol: f64,
    /// Gradient-ascent steps per M-step.
    pub gradient_steps: usize,
    /// Gradient-ascent learning rate.
    pub learning_rate: f64,
    /// L2 pull of abilities/difficulties toward their priors (α→1, b→0);
    /// keeps parameters from diverging on tiny datasets.
    pub regularization: f64,
    /// Worker-pool width for the E/M kernels; `0` picks automatically from
    /// the problem size. Results are byte-identical at every setting.
    pub threads: usize,
    /// Per-task convergence freezing (the sparse incremental E-step).
    /// Disabled by default; see [`FreezeConfig`].
    pub freeze: FreezeConfig,
}

impl Default for GladConfig {
    fn default() -> Self {
        Self {
            max_iters: 60,
            tol: 1e-5,
            gradient_steps: 8,
            learning_rate: 0.05,
            regularization: 0.01,
            threads: 0,
            freeze: FreezeConfig::disabled(),
        }
    }
}

impl GladConfig {
    /// Returns a copy pinned to `threads` kernel threads.
    pub fn with_threads(self, threads: usize) -> Self {
        Self { threads, ..self }
    }

    /// Returns a copy with the given freezing settings.
    pub fn with_freeze(self, freeze: FreezeConfig) -> Self {
        Self { freeze, ..self }
    }
}

/// The GLAD algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct Glad {
    /// Iteration/optimization settings.
    pub config: GladConfig,
}

/// Estimated GLAD parameters, exposed by [`Glad::infer_full`].
#[derive(Debug, Clone, PartialEq)]
pub struct GladParams {
    /// Ability per dense worker index.
    pub abilities: Vec<f64>,
    /// Inverse difficulty `β = e^b` per dense task index.
    pub inverse_difficulties: Vec<f64>,
}

impl Glad {
    /// Creates the algorithm with custom settings.
    pub fn with_config(config: GladConfig) -> Self {
        Self { config }
    }

    /// Runs EM and also returns the fitted ability/difficulty parameters.
    pub fn infer_full(&self, matrix: &ResponseMatrix) -> Result<(InferenceResult, GladParams)> {
        if matrix.is_empty() {
            return Err(CrowdError::EmptyInput("response matrix"));
        }
        let k = matrix.num_labels();
        let n_tasks = matrix.num_tasks();
        let n_workers = matrix.num_workers();
        let wrong_share = 1.0 / (k as f64 - 1.0).max(1.0);
        let cfg = self.config;
        let threads = resolve_threads(cfg.threads, matrix.num_observations() * k);
        let (t_off, t_entries) = matrix.task_csr();
        let (w_off, w_entries) = matrix.worker_csr();

        let mut posteriors = vote_fraction_posteriors(matrix);
        let mut aset = ActiveSet::new(cfg.freeze, n_tasks, k, w_off);
        let mut priors = vec![1.0 / k as f64; k];
        let mut log_priors = vec![0.0f64; k];
        let mut alpha = vec![1.0f64; n_workers];
        let mut b = vec![0.0f64; n_tasks]; // β = e^b
        // Gradient buffers, hoisted out of the gradient-step loop.
        let mut g_alpha = vec![0.0f64; n_workers];
        let mut g_b = vec![0.0f64; n_tasks];

        // Ability pinning: freezing's worker-side half. A worker whose α
        // moved less than `freeze.eps` across a whole M-step for
        // `freeze.patience` consecutive iterations has its ability pinned —
        // the α-gradient edge walk (the dominant M-step cost once tasks
        // freeze) is skipped from then on. Pinning is permanent and applies
        // identically on the worklist and dense-reference paths: it is part
        // of the freezing *semantics*, decided from the α trajectory, which
        // is byte-identical at any thread count.
        let freeze_on = cfg.freeze.enabled();
        let a_patience = cfg.freeze.patience.max(1);
        let mut alpha_prev = if freeze_on { alpha.clone() } else { Vec::new() };
        let mut alpha_streak = vec![0u32; if freeze_on { n_workers } else { 0 }];
        let mut alpha_pinned = vec![false; if freeze_on { n_workers } else { 0 }];

        // Frozen-edge gradient cache: when a task freezes, each of its
        // edges' α-gradient terms is evaluated once (at freeze-time α) and
        // folded into a per-worker constant `g_frozen`; the live α walk
        // then visits only unfrozen edges. Thawing subtracts the exact
        // cached per-edge values again. Like ability pinning this is
        // freezing *semantics* — the same formula on the worklist and
        // dense-reference paths — not a bitwise-transparent cache.
        // `edge_cache` is task-CSR-aligned (one f64 per observation,
        // allocated only when freezing is on).
        let mut frozen_seen = vec![false; if freeze_on { n_tasks } else { 0 }];
        let mut g_frozen = vec![0.0f64; if freeze_on { n_workers } else { 0 }];
        let mut edge_cache = vec![0.0f64; if freeze_on { t_entries.len() } else { 0 }];

        // The per-observation gradient factor:
        // Σ_l T[t][l] · d log P(answer | truth=l) where the derivative of
        // log σ is (1−s)·∂(αβ) and of log(1−s) is −s·∂(αβ).
        let factor = |post: &[f64], a: f64, beta: f64, t: usize, l: usize| {
            let s = sigmoid(a * beta);
            let p_correct = post[t * k + l];
            p_correct * (1.0 - s) - (1.0 - p_correct) * s
        };

        let rec = obs::current();
        let obs_on = rec.enabled();
        let run_start = obs::WallTimer::start();
        // Lineage baseline: the vote-fraction init, i.e. MV's decision.
        let mut lineage = crowdkit_provenance::RunLineage::begin("glad", &posteriors, k);

        let mut iterations = 0;
        let mut converged = false;
        while iterations < cfg.max_iters {
            iterations += 1;
            let t_m = obs_on.then(obs::WallTimer::start);
            update_priors(&posteriors, k, &mut priors);
            for (lp, &p) in log_priors.iter_mut().zip(&priors) {
                *lp = p.max(1e-300).ln();
            }

            // M-step: gradient ascent on α and b. Both gradients are read
            // from the pre-update parameters: g_b accumulates over task
            // ranges (task CSR) and g_α over worker ranges (worker CSR),
            // each entity in fixed insertion order, then the sequential
            // updates apply both. With freezing on, b only moves for
            // active tasks and α only for unfrozen workers; on the
            // worklist path the b-gradient shards over the active set (the
            // compact slots of g_b), everywhere else over the full range.
            for _ in 0..cfg.gradient_steps {
                let post = &posteriors;
                let alpha_r = &alpha;
                let b_r = &b;
                let aset_r = &aset;
                let alpha_pinned_r = &alpha_pinned;
                let task_gradient = |t: usize| {
                    let beta = b_r[t].exp();
                    let mut acc = 0.0;
                    for &(w, l) in &t_entries[t_off[t] as usize..t_off[t + 1] as usize] {
                        let a = alpha_r[w as usize];
                        acc += factor(post, a, beta, t, l as usize) * a * beta;
                    }
                    acc
                };
                if aset.use_worklist() {
                    parallel_active_items_mut(&mut g_b, 1, aset.active(), threads, |_, t, g| {
                        g[0] = task_gradient(t);
                    });
                } else {
                    parallel_items_mut(&mut g_b, 1, threads, |t0, run| {
                        for (i, g) in run.iter_mut().enumerate() {
                            *g = task_gradient(t0 + i);
                        }
                    });
                }
                let g_frozen_r = &g_frozen;
                parallel_items_mut(&mut g_alpha, 1, threads, |w0, run| {
                    for (i, g) in run.iter_mut().enumerate() {
                        let w = w0 + i;
                        // A frozen or ability-pinned worker's α never
                        // moves, so its gradient is never consumed; skip
                        // the walk over its edges.
                        if (freeze_on && alpha_pinned_r[w]) || aset_r.can_skip_worker_update(w) {
                            continue;
                        }
                        let a = alpha_r[w];
                        // Frozen edges contribute their freeze-time cached
                        // terms as one constant; only live edges pay the
                        // transcendental walk.
                        let mut acc = if freeze_on { g_frozen_r[w] } else { 0.0 };
                        for &(t, l) in &w_entries[w_off[w] as usize..w_off[w + 1] as usize] {
                            let t = t as usize;
                            if freeze_on && aset_r.task_frozen(t) {
                                continue;
                            }
                            let beta = b_r[t].exp();
                            acc += factor(post, a, beta, t, l as usize) * beta;
                        }
                        *g = acc;
                    }
                });
                for (w, a) in alpha.iter_mut().enumerate() {
                    if (freeze_on && alpha_pinned[w]) || aset.worker_frozen(w) {
                        continue;
                    }
                    *a += cfg.learning_rate * (g_alpha[w] - cfg.regularization * (*a - 1.0));
                    *a = a.clamp(-8.0, 8.0);
                }
                if aset.use_worklist() {
                    // g_b holds compact per-slot gradients for the active
                    // worklist; each update reads only its own slot and
                    // parameter, so this matches the full-range update on
                    // unfrozen tasks bit for bit.
                    for (slot, &t) in aset.active().iter().enumerate() {
                        let t = t as usize;
                        let bt = &mut b[t];
                        *bt += cfg.learning_rate * (g_b[slot] - cfg.regularization * *bt);
                        *bt = bt.clamp(-4.0, 4.0);
                    }
                } else {
                    for (t, bt) in b.iter_mut().enumerate() {
                        if aset.task_frozen(t) {
                            continue;
                        }
                        *bt += cfg.learning_rate * (g_b[t] - cfg.regularization * *bt);
                        *bt = bt.clamp(-4.0, 4.0);
                    }
                }
            }

            // Ability-pinning decisions, sequential in ascending worker
            // order: compare each α against its value one full M-step ago.
            if freeze_on {
                for w in 0..n_workers {
                    if alpha_pinned[w] {
                        continue;
                    }
                    if (alpha[w] - alpha_prev[w]).abs() < cfg.freeze.eps {
                        alpha_streak[w] += 1;
                        if alpha_streak[w] >= a_patience {
                            alpha_pinned[w] = true;
                        }
                    } else {
                        alpha_streak[w] = 0;
                    }
                    alpha_prev[w] = alpha[w];
                }
            }

            let m_ns = t_m.map_or(0, |t| t.elapsed_ns());
            let t_e = obs_on.then(obs::WallTimer::start);

            // E-step over the active worklist (all tasks while freezing is
            // off), with the one-coin scalar-update trick (each
            // observation contributes a base mass to all labels and a
            // right/wrong correction to its own).
            let log_priors_r = &log_priors;
            let alpha_r = &alpha;
            let b_r = &b;
            let out = aset.sweep(&mut posteriors, t_off, t_entries, threads, |t, row| {
                row.copy_from_slice(log_priors_r);
                let beta = b_r[t].exp();
                let mut base = 0.0;
                for &(w, l) in &t_entries[t_off[t] as usize..t_off[t + 1] as usize] {
                    let s = sigmoid(alpha_r[w as usize] * beta).clamp(1e-9, 1.0 - 1e-9);
                    let right = s.ln();
                    let wrong = ((1.0 - s) * wrong_share).ln();
                    base += wrong;
                    row[l as usize] += right - wrong;
                }
                for x in row.iter_mut() {
                    *x += base;
                }
                log_normalize(row);
            });

            // Fold freeze/thaw transitions into the frozen-edge gradient
            // cache, sequentially in ascending task order. Freezing adds
            // each edge's term evaluated at the just-pinned posterior/b and
            // current α; thawing subtracts the exact cached values.
            if freeze_on && (out.froze > 0 || out.thawed > 0) {
                for t in 0..n_tasks {
                    let now = aset.task_frozen(t);
                    if now == frozen_seen[t] {
                        continue;
                    }
                    frozen_seen[t] = now;
                    let beta = b[t].exp();
                    let lo = t_off[t] as usize;
                    for (e, &(w, l)) in t_entries[lo..t_off[t + 1] as usize].iter().enumerate() {
                        let w = w as usize;
                        if now {
                            let c = factor(&posteriors, alpha[w], beta, t, l as usize) * beta;
                            edge_cache[lo + e] = c;
                            g_frozen[w] += c;
                        } else {
                            g_frozen[w] -= edge_cache[lo + e];
                        }
                    }
                }
            }

            let delta = out.delta;
            if let Some(l) = &mut lineage {
                // Committed table after the sweep — identical bits on the
                // sparse and dense-reference paths, so lineage matches.
                l.observe_iter(iterations, &posteriors);
            }
            if obs_on {
                let e_ns = t_e.map_or(0, |t| t.elapsed_ns());
                obs_iter(&*rec, "glad", iterations, delta, m_ns, e_ns);
                aset.observe(&*rec, "glad", iterations, &out);
            }
            if delta < cfg.tol {
                converged = true;
                break;
            }
        }

        let labels = argmax_labels(&posteriors, k);
        // Scalar worker quality: σ(α) — correctness probability on a task of
        // reference difficulty β = 1.
        let worker_quality: Option<Vec<f64>> = Some(alpha.iter().map(|&a| sigmoid(a)).collect());
        if let Some(l) = lineage.take() {
            l.finish(matrix, &posteriors, worker_quality.as_deref());
        }
        obs_run("glad", matrix, iterations, converged, run_start);
        let params = GladParams {
            abilities: alpha,
            inverse_difficulties: b.iter().map(|&x| x.exp()).collect(),
        };
        Ok((
            InferenceResult {
                labels,
                posteriors: posterior_rows(&posteriors, k),
                worker_quality,
                iterations,
                converged,
            },
            params,
        ))
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl TruthInferencer for Glad {
    fn name(&self) -> &'static str {
        "glad"
    }

    fn infer(&self, matrix: &ResponseMatrix) -> Result<InferenceResult> {
        self.infer_full(matrix).map(|(r, _)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdkit_core::ids::{TaskId, WorkerId};

    fn matrix(rows: &[(u64, u64, u32)], k: usize) -> ResponseMatrix {
        let mut m = ResponseMatrix::new(k);
        for &(t, w, l) in rows {
            m.push(TaskId::new(t), WorkerId::new(w), l).unwrap();
        }
        m
    }

    #[test]
    fn recovers_unanimous_truth() {
        let m = matrix(&[(0, 0, 1), (0, 1, 1), (1, 0, 0), (1, 1, 0)], 2);
        let r = Glad::default().infer(&m).unwrap();
        assert_eq!(r.labels, vec![1, 0]);
    }

    #[test]
    fn ability_separates_good_and_bad_workers() {
        let mut rows = Vec::new();
        for t in 0..40u64 {
            let truth = (t % 2) as u32;
            rows.push((t, 0, truth));
            rows.push((t, 1, truth));
            rows.push((t, 2, truth));
            rows.push((t, 3, 1 - truth)); // adversary
        }
        let m = matrix(&rows, 2);
        let (r, params) = Glad::default().infer_full(&m).unwrap();
        let good = m.worker_index(WorkerId::new(0)).unwrap();
        let bad = m.worker_index(WorkerId::new(3)).unwrap();
        assert!(
            params.abilities[good] > params.abilities[bad],
            "α_good {} vs α_bad {}",
            params.abilities[good],
            params.abilities[bad]
        );
        assert!(params.abilities[bad] < 0.0, "adversary ability negative");
        let q = r.worker_quality.unwrap();
        assert!(q[good] > 0.5 && q[bad] < 0.5);
    }

    #[test]
    fn contested_tasks_get_lower_inverse_difficulty() {
        // Tasks 0..5: unanimous. Task 5: workers split 2–2.
        let mut rows = Vec::new();
        for t in 0..5u64 {
            for w in 0..4u64 {
                rows.push((t, w, 1u32));
            }
        }
        rows.push((5, 0, 1));
        rows.push((5, 1, 1));
        rows.push((5, 2, 0));
        rows.push((5, 3, 0));
        let m = matrix(&rows, 2);
        let (_, params) = Glad::default().infer_full(&m).unwrap();
        let easy = m.task_index(TaskId::new(0)).unwrap();
        let hard = m.task_index(TaskId::new(5)).unwrap();
        assert!(
            params.inverse_difficulties[easy] > params.inverse_difficulties[hard],
            "β_easy {} vs β_hard {}",
            params.inverse_difficulties[easy],
            params.inverse_difficulties[hard]
        );
    }

    #[test]
    fn posteriors_are_distributions() {
        let m = matrix(&[(0, 0, 0), (0, 1, 1), (1, 1, 2)], 3);
        let r = Glad::default().infer(&m).unwrap();
        for row in &r.posteriors {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_empty_matrix() {
        assert!(Glad::default().infer(&ResponseMatrix::new(2)).is_err());
    }

    #[test]
    fn freezing_preserves_labels_and_worker_ranking() {
        // The ability_separates dataset: three faithful workers, one
        // adversary, 40 well-separated tasks. Freezing (ability pinning
        // and the frozen-edge gradient cache included) is an approximation
        // of the dense trajectory, but on separated data it must land on
        // the same labels and the same good/bad worker ordering.
        let mut rows = Vec::new();
        for t in 0..40u64 {
            let truth = (t % 2) as u32;
            rows.push((t, 0, truth));
            rows.push((t, 1, truth));
            rows.push((t, 2, truth));
            rows.push((t, 3, 1 - truth));
        }
        let m = matrix(&rows, 2);
        let dense = Glad::default().infer(&m).unwrap();
        let cfg = GladConfig::default().with_freeze(crate::freeze::FreezeConfig::sparse(1e-3));
        let (sparse, params) = Glad::with_config(cfg).infer_full(&m).unwrap();
        assert_eq!(dense.labels, sparse.labels);
        let good = m.worker_index(WorkerId::new(0)).unwrap();
        let bad = m.worker_index(WorkerId::new(3)).unwrap();
        assert!(params.abilities[good] > params.abilities[bad]);
        assert!(params.abilities[bad] < 0.0);
    }

    #[test]
    fn parameters_stay_bounded() {
        let mut rows = Vec::new();
        for t in 0..10u64 {
            for w in 0..3u64 {
                rows.push((t, w, ((t + w) % 2) as u32));
            }
        }
        let m = matrix(&rows, 2);
        let (_, params) = Glad::default().infer_full(&m).unwrap();
        for &a in &params.abilities {
            assert!((-8.0..=8.0).contains(&a));
        }
        for &bi in &params.inverse_difficulties {
            assert!(bi > 0.0 && bi.is_finite());
        }
    }
}
