//! GLAD: Generative model of Labels, Abilities, and Difficulties
//! (Whitehill et al., 2009), generalized to k labels.
//!
//! Model: worker `w` has ability `α_w ∈ ℝ`; task `t` has inverse
//! difficulty `β_t > 0` (parameterized as `β = e^b` so gradient ascent is
//! unconstrained). The probability that `w` answers `t` correctly is
//! `σ(α_w · β_t)`; wrong answers are uniform over the other `k − 1`
//! labels.
//!
//! Inference is EM: the E-step computes task posteriors exactly as in the
//! one-coin model but with a per-(worker, task) correctness probability;
//! the M-step runs a few steps of gradient ascent on the expected complete
//! log-likelihood with respect to all `α` and `b`.

//!
//! The kernel follows the flat deterministic-parallel layout shared with
//! the other EM algorithms: posteriors ping-pong between two flat `n·k`
//! buffers, the gradient of `b` accumulates over task ranges (task CSR)
//! and the gradient of `α` over worker ranges (worker CSR), each entity's
//! sum running in fixed insertion order — so results are byte-identical at
//! any thread count.

use crowdkit_core::error::{CrowdError, Result};
use crowdkit_core::par::parallel_items_mut;
use crowdkit_core::response::ResponseMatrix;
use crowdkit_core::traits::{InferenceResult, TruthInferencer};

use crowdkit_obs as obs;

use crate::em::{
    argmax_labels, log_normalize, max_abs_diff, obs_iter, obs_run, posterior_rows,
    resolve_threads, update_priors, vote_fraction_posteriors,
};

/// Settings for [`Glad`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GladConfig {
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Convergence tolerance on posterior movement.
    pub tol: f64,
    /// Gradient-ascent steps per M-step.
    pub gradient_steps: usize,
    /// Gradient-ascent learning rate.
    pub learning_rate: f64,
    /// L2 pull of abilities/difficulties toward their priors (α→1, b→0);
    /// keeps parameters from diverging on tiny datasets.
    pub regularization: f64,
    /// Worker-pool width for the E/M kernels; `0` picks automatically from
    /// the problem size. Results are byte-identical at every setting.
    pub threads: usize,
}

impl Default for GladConfig {
    fn default() -> Self {
        Self {
            max_iters: 60,
            tol: 1e-5,
            gradient_steps: 8,
            learning_rate: 0.05,
            regularization: 0.01,
            threads: 0,
        }
    }
}

impl GladConfig {
    /// Returns a copy pinned to `threads` kernel threads.
    pub fn with_threads(self, threads: usize) -> Self {
        Self { threads, ..self }
    }
}

/// The GLAD algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct Glad {
    /// Iteration/optimization settings.
    pub config: GladConfig,
}

/// Estimated GLAD parameters, exposed by [`Glad::infer_full`].
#[derive(Debug, Clone, PartialEq)]
pub struct GladParams {
    /// Ability per dense worker index.
    pub abilities: Vec<f64>,
    /// Inverse difficulty `β = e^b` per dense task index.
    pub inverse_difficulties: Vec<f64>,
}

impl Glad {
    /// Creates the algorithm with custom settings.
    pub fn with_config(config: GladConfig) -> Self {
        Self { config }
    }

    /// Runs EM and also returns the fitted ability/difficulty parameters.
    pub fn infer_full(&self, matrix: &ResponseMatrix) -> Result<(InferenceResult, GladParams)> {
        if matrix.is_empty() {
            return Err(CrowdError::EmptyInput("response matrix"));
        }
        let k = matrix.num_labels();
        let n_tasks = matrix.num_tasks();
        let n_workers = matrix.num_workers();
        let wrong_share = 1.0 / (k as f64 - 1.0).max(1.0);
        let cfg = self.config;
        let threads = resolve_threads(cfg.threads, matrix.num_observations() * k);
        let (t_off, t_entries) = matrix.task_csr();
        let (w_off, w_entries) = matrix.worker_csr();

        let mut posteriors = vote_fraction_posteriors(matrix);
        let mut next = vec![0.0f64; n_tasks * k];
        let mut priors = vec![1.0 / k as f64; k];
        let mut log_priors = vec![0.0f64; k];
        let mut alpha = vec![1.0f64; n_workers];
        let mut b = vec![0.0f64; n_tasks]; // β = e^b
        // Gradient buffers, hoisted out of the gradient-step loop.
        let mut g_alpha = vec![0.0f64; n_workers];
        let mut g_b = vec![0.0f64; n_tasks];

        // The per-observation gradient factor:
        // Σ_l T[t][l] · d log P(answer | truth=l) where the derivative of
        // log σ is (1−s)·∂(αβ) and of log(1−s) is −s·∂(αβ).
        let factor = |post: &[f64], a: f64, beta: f64, t: usize, l: usize| {
            let s = sigmoid(a * beta);
            let p_correct = post[t * k + l];
            p_correct * (1.0 - s) - (1.0 - p_correct) * s
        };

        let rec = obs::current();
        let obs_on = rec.enabled();
        let run_start = obs::WallTimer::start();

        let mut iterations = 0;
        let mut converged = false;
        while iterations < cfg.max_iters {
            iterations += 1;
            let t_m = obs_on.then(obs::WallTimer::start);
            update_priors(&posteriors, k, &mut priors);
            for (lp, &p) in log_priors.iter_mut().zip(&priors) {
                *lp = p.max(1e-300).ln();
            }

            // M-step: gradient ascent on α and b. Both gradients are read
            // from the pre-update parameters: g_b accumulates over task
            // ranges (task CSR) and g_α over worker ranges (worker CSR),
            // each entity in fixed insertion order, then the sequential
            // updates apply both.
            for _ in 0..cfg.gradient_steps {
                let post = &posteriors;
                let alpha_r = &alpha;
                let b_r = &b;
                parallel_items_mut(&mut g_b, 1, threads, |t0, run| {
                    for (i, g) in run.iter_mut().enumerate() {
                        let t = t0 + i;
                        let beta = b_r[t].exp();
                        let mut acc = 0.0;
                        for &(w, l) in &t_entries[t_off[t]..t_off[t + 1]] {
                            let a = alpha_r[w as usize];
                            acc += factor(post, a, beta, t, l as usize) * a * beta;
                        }
                        *g = acc;
                    }
                });
                parallel_items_mut(&mut g_alpha, 1, threads, |w0, run| {
                    for (i, g) in run.iter_mut().enumerate() {
                        let w = w0 + i;
                        let a = alpha_r[w];
                        let mut acc = 0.0;
                        for &(t, l) in &w_entries[w_off[w]..w_off[w + 1]] {
                            let beta = b_r[t as usize].exp();
                            acc += factor(post, a, beta, t as usize, l as usize) * beta;
                        }
                        *g = acc;
                    }
                });
                for (w, a) in alpha.iter_mut().enumerate() {
                    *a += cfg.learning_rate * (g_alpha[w] - cfg.regularization * (*a - 1.0));
                    *a = a.clamp(-8.0, 8.0);
                }
                for (t, bt) in b.iter_mut().enumerate() {
                    *bt += cfg.learning_rate * (g_b[t] - cfg.regularization * *bt);
                    *bt = bt.clamp(-4.0, 4.0);
                }
            }

            let m_ns = t_m.map_or(0, |t| t.elapsed_ns());
            let t_e = obs_on.then(obs::WallTimer::start);

            // E-step over task ranges, with the one-coin scalar-update
            // trick (each observation contributes a base mass to all
            // labels and a right/wrong correction to its own).
            let log_priors_r = &log_priors;
            let alpha_r = &alpha;
            let b_r = &b;
            parallel_items_mut(&mut next, k, threads, |t0, run| {
                for (i, row) in run.chunks_mut(k).enumerate() {
                    let t = t0 + i;
                    row.copy_from_slice(log_priors_r);
                    let beta = b_r[t].exp();
                    let mut base = 0.0;
                    for &(w, l) in &t_entries[t_off[t]..t_off[t + 1]] {
                        let s = sigmoid(alpha_r[w as usize] * beta).clamp(1e-9, 1.0 - 1e-9);
                        let right = s.ln();
                        let wrong = ((1.0 - s) * wrong_share).ln();
                        base += wrong;
                        row[l as usize] += right - wrong;
                    }
                    for x in row.iter_mut() {
                        *x += base;
                    }
                    log_normalize(row);
                }
            });

            let delta = max_abs_diff(&posteriors, &next);
            std::mem::swap(&mut posteriors, &mut next);
            if obs_on {
                let e_ns = t_e.map_or(0, |t| t.elapsed_ns());
                obs_iter(&*rec, "glad", iterations, delta, m_ns, e_ns);
            }
            if delta < cfg.tol {
                converged = true;
                break;
            }
        }
        obs_run("glad", matrix, iterations, converged, run_start);

        let labels = argmax_labels(&posteriors, k);
        // Scalar worker quality: σ(α) — correctness probability on a task of
        // reference difficulty β = 1.
        let worker_quality = Some(alpha.iter().map(|&a| sigmoid(a)).collect());
        let params = GladParams {
            abilities: alpha,
            inverse_difficulties: b.iter().map(|&x| x.exp()).collect(),
        };
        Ok((
            InferenceResult {
                labels,
                posteriors: posterior_rows(&posteriors, k),
                worker_quality,
                iterations,
                converged,
            },
            params,
        ))
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl TruthInferencer for Glad {
    fn name(&self) -> &'static str {
        "glad"
    }

    fn infer(&self, matrix: &ResponseMatrix) -> Result<InferenceResult> {
        self.infer_full(matrix).map(|(r, _)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdkit_core::ids::{TaskId, WorkerId};

    fn matrix(rows: &[(u64, u64, u32)], k: usize) -> ResponseMatrix {
        let mut m = ResponseMatrix::new(k);
        for &(t, w, l) in rows {
            m.push(TaskId::new(t), WorkerId::new(w), l).unwrap();
        }
        m
    }

    #[test]
    fn recovers_unanimous_truth() {
        let m = matrix(&[(0, 0, 1), (0, 1, 1), (1, 0, 0), (1, 1, 0)], 2);
        let r = Glad::default().infer(&m).unwrap();
        assert_eq!(r.labels, vec![1, 0]);
    }

    #[test]
    fn ability_separates_good_and_bad_workers() {
        let mut rows = Vec::new();
        for t in 0..40u64 {
            let truth = (t % 2) as u32;
            rows.push((t, 0, truth));
            rows.push((t, 1, truth));
            rows.push((t, 2, truth));
            rows.push((t, 3, 1 - truth)); // adversary
        }
        let m = matrix(&rows, 2);
        let (r, params) = Glad::default().infer_full(&m).unwrap();
        let good = m.worker_index(WorkerId::new(0)).unwrap();
        let bad = m.worker_index(WorkerId::new(3)).unwrap();
        assert!(
            params.abilities[good] > params.abilities[bad],
            "α_good {} vs α_bad {}",
            params.abilities[good],
            params.abilities[bad]
        );
        assert!(params.abilities[bad] < 0.0, "adversary ability negative");
        let q = r.worker_quality.unwrap();
        assert!(q[good] > 0.5 && q[bad] < 0.5);
    }

    #[test]
    fn contested_tasks_get_lower_inverse_difficulty() {
        // Tasks 0..5: unanimous. Task 5: workers split 2–2.
        let mut rows = Vec::new();
        for t in 0..5u64 {
            for w in 0..4u64 {
                rows.push((t, w, 1u32));
            }
        }
        rows.push((5, 0, 1));
        rows.push((5, 1, 1));
        rows.push((5, 2, 0));
        rows.push((5, 3, 0));
        let m = matrix(&rows, 2);
        let (_, params) = Glad::default().infer_full(&m).unwrap();
        let easy = m.task_index(TaskId::new(0)).unwrap();
        let hard = m.task_index(TaskId::new(5)).unwrap();
        assert!(
            params.inverse_difficulties[easy] > params.inverse_difficulties[hard],
            "β_easy {} vs β_hard {}",
            params.inverse_difficulties[easy],
            params.inverse_difficulties[hard]
        );
    }

    #[test]
    fn posteriors_are_distributions() {
        let m = matrix(&[(0, 0, 0), (0, 1, 1), (1, 1, 2)], 3);
        let r = Glad::default().infer(&m).unwrap();
        for row in &r.posteriors {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_empty_matrix() {
        assert!(Glad::default().infer(&ResponseMatrix::new(2)).is_err());
    }

    #[test]
    fn parameters_stay_bounded() {
        let mut rows = Vec::new();
        for t in 0..10u64 {
            for w in 0..3u64 {
                rows.push((t, w, ((t + w) % 2) as u32));
            }
        }
        let m = matrix(&rows, 2);
        let (_, params) = Glad::default().infer_full(&m).unwrap();
        for &a in &params.abilities {
            assert!((-8.0..=8.0).contains(&a));
        }
        for &bi in &params.inverse_difficulties {
            assert!(bi > 0.0 && bi.is_finite());
        }
    }
}
