//! Gold-standard (qualification) based quality control.
//!
//! The tutorial's quality-control axis includes *qualification via gold
//! questions*: seed the task stream with questions whose answers are known,
//! score workers on them, and either weight or eliminate workers by their
//! gold accuracy. Unlike the EM family this needs no model assumptions —
//! at the price of spending part of the budget on questions whose answers
//! you already know.
//!
//! * [`GoldSet`] — the known questions and scoring.
//! * [`estimate_worker_quality`] — per-worker gold accuracy with Laplace
//!   smoothing.
//! * [`GoldWeightedVote`] — a [`TruthInferencer`] that weights votes by
//!   gold accuracy and drops workers below an elimination threshold.

use std::collections::BTreeMap;

use crowdkit_core::error::{CrowdError, Result};
use crowdkit_core::ids::{TaskId, WorkerId};
use crowdkit_core::response::ResponseMatrix;
use crowdkit_core::traits::{InferenceResult, TruthInferencer};

use crate::em::{argmax_labels, normalize, posterior_rows};

/// A set of tasks with known answers, used to score workers.
#[derive(Debug, Clone, Default)]
pub struct GoldSet {
    answers: BTreeMap<TaskId, u32>,
}

impl GoldSet {
    /// Creates an empty gold set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set from `(task, true label)` pairs.
    pub fn from_pairs<I: IntoIterator<Item = (TaskId, u32)>>(pairs: I) -> Self {
        Self {
            answers: pairs.into_iter().collect(),
        }
    }

    /// Registers a gold task.
    pub fn insert(&mut self, task: TaskId, label: u32) {
        self.answers.insert(task, label);
    }

    /// The known label of a task, if it is gold.
    pub fn label(&self, task: TaskId) -> Option<u32> {
        self.answers.get(&task).copied()
    }

    /// Whether a task is gold.
    pub fn contains(&self, task: TaskId) -> bool {
        self.answers.contains_key(&task)
    }

    /// Number of gold tasks.
    pub fn len(&self) -> usize {
        self.answers.len()
    }

    /// True if no gold tasks are registered.
    pub fn is_empty(&self) -> bool {
        self.answers.is_empty()
    }
}

/// Per-worker gold performance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoldScore {
    /// Gold questions the worker answered.
    pub answered: u32,
    /// Of those, answered correctly.
    pub correct: u32,
    /// Laplace-smoothed accuracy estimate `(correct + 1) / (answered + 2)`.
    pub accuracy: f64,
}

/// Scores every worker in `matrix` against the gold set.
///
/// Workers who answered no gold questions get the uninformative prior
/// accuracy of 0.5.
pub fn estimate_worker_quality(
    matrix: &ResponseMatrix,
    gold: &GoldSet,
) -> BTreeMap<WorkerId, GoldScore> {
    let mut scores: BTreeMap<WorkerId, (u32, u32)> = BTreeMap::new();
    for w in 0..matrix.num_workers() {
        scores.insert(matrix.worker_id(w), (0, 0));
    }
    for o in matrix.observations() {
        let task = matrix.task_id(o.task);
        if let Some(truth) = gold.label(task) {
            let e = scores.entry(matrix.worker_id(o.worker)).or_insert((0, 0));
            e.0 += 1;
            if o.label == truth {
                e.1 += 1;
            }
        }
    }
    scores
        .into_iter()
        .map(|(w, (answered, correct))| {
            (
                w,
                GoldScore {
                    answered,
                    correct,
                    accuracy: (correct as f64 + 1.0) / (answered as f64 + 2.0),
                },
            )
        })
        .collect()
}

/// Majority vote weighted by gold accuracy, with hard elimination of
/// workers below `elimination_threshold` (their votes count zero).
///
/// Gold tasks themselves are answered from the gold set, not from votes —
/// you never let the crowd overrule a known answer.
#[derive(Debug, Clone)]
pub struct GoldWeightedVote {
    gold: GoldSet,
    /// Workers with gold accuracy below this are eliminated.
    pub elimination_threshold: f64,
}

impl GoldWeightedVote {
    /// Creates the inferencer with the standard spam threshold of 0.5
    /// (workers at or below chance are eliminated).
    pub fn new(gold: GoldSet) -> Self {
        Self {
            gold,
            elimination_threshold: 0.5,
        }
    }

    /// Overrides the elimination threshold (builder style).
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.elimination_threshold = threshold;
        self
    }
}

impl TruthInferencer for GoldWeightedVote {
    fn name(&self) -> &'static str {
        "gold_wmv"
    }

    fn infer(&self, matrix: &ResponseMatrix) -> Result<InferenceResult> {
        if matrix.is_empty() {
            return Err(CrowdError::EmptyInput("response matrix"));
        }
        let run_start = crowdkit_obs::WallTimer::start();
        let k = matrix.num_labels();
        let scores = estimate_worker_quality(matrix, &self.gold);
        let weight_of = |w: usize| -> f64 {
            let s = scores[&matrix.worker_id(w)];
            if s.accuracy <= self.elimination_threshold {
                0.0
            } else {
                // Log-odds weighting: the theoretically optimal vote weight
                // for a one-coin worker.
                (s.accuracy / (1.0 - s.accuracy)).ln().max(0.0)
            }
        };

        let (offsets, entries) = matrix.task_csr();
        let mut posteriors = vec![0.0f64; matrix.num_tasks() * k];
        for (t, row) in posteriors.chunks_mut(k).enumerate() {
            for &(w, l) in &entries[offsets[t] as usize..offsets[t + 1] as usize] {
                row[l as usize] += weight_of(w as usize);
            }
            normalize(row);
        }
        let mut labels = argmax_labels(&posteriors, k);
        let mut posteriors = posterior_rows(&posteriors, k);

        // Gold tasks are fixed to their known answers.
        for t in 0..matrix.num_tasks() {
            if let Some(truth) = self.gold.label(matrix.task_id(t)) {
                labels[t] = truth;
                for (l, p) in posteriors[t].iter_mut().enumerate() {
                    *p = if l == truth as usize { 1.0 } else { 0.0 };
                }
            }
        }

        let worker_quality = Some(
            (0..matrix.num_workers())
                .map(|w| scores[&matrix.worker_id(w)].accuracy)
                .collect(),
        );
        crate::em::obs_run("gold_wmv", matrix, 1, true, run_start);
        Ok(InferenceResult {
            labels,
            posteriors,
            worker_quality,
            iterations: 1,
            converged: true,
        })
    }
}

/// Picks every `stride`-th task id from `tasks` as gold, returning the ids
/// chosen — the canonical "inject 10 % gold" pattern (`stride = 10`).
///
/// # Panics
/// Panics if `stride == 0`.
pub fn inject_gold_stride(task_ids: &[TaskId], truths: &[u32], stride: usize) -> GoldSet {
    assert!(stride > 0, "stride must be positive");
    assert_eq!(task_ids.len(), truths.len(), "length mismatch");
    let mut gold = GoldSet::new();
    for i in (0..task_ids.len()).step_by(stride) {
        gold.insert(task_ids[i], truths[i]);
    }
    gold
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(i: u64) -> TaskId {
        TaskId::new(i)
    }
    fn wid(i: u64) -> WorkerId {
        WorkerId::new(i)
    }

    fn matrix(rows: &[(u64, u64, u32)]) -> ResponseMatrix {
        let mut m = ResponseMatrix::new(2);
        for &(t, w, l) in rows {
            m.push(tid(t), wid(w), l).unwrap();
        }
        m
    }

    #[test]
    fn gold_set_basics() {
        let mut g = GoldSet::new();
        assert!(g.is_empty());
        g.insert(tid(1), 1);
        assert_eq!(g.label(tid(1)), Some(1));
        assert_eq!(g.label(tid(2)), None);
        assert!(g.contains(tid(1)));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn worker_scores_count_gold_answers_only() {
        // Tasks 0, 1 are gold (truth 1, 0); task 2 is not.
        let gold = GoldSet::from_pairs([(tid(0), 1), (tid(1), 0)]);
        let m = matrix(&[
            (0, 0, 1), // w0 right
            (1, 0, 0), // w0 right
            (0, 1, 0), // w1 wrong
            (1, 1, 0), // w1 right
            (2, 0, 1), // non-gold: ignored for scoring
        ]);
        let scores = estimate_worker_quality(&m, &gold);
        let s0 = scores[&wid(0)];
        let s1 = scores[&wid(1)];
        assert_eq!((s0.answered, s0.correct), (2, 2));
        assert_eq!((s1.answered, s1.correct), (2, 1));
        assert!((s0.accuracy - 3.0 / 4.0).abs() < 1e-12, "laplace smoothing");
        assert!((s1.accuracy - 2.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn unscored_workers_get_the_prior() {
        let gold = GoldSet::from_pairs([(tid(0), 1)]);
        let m = matrix(&[(1, 5, 0)]);
        let scores = estimate_worker_quality(&m, &gold);
        assert_eq!(scores[&wid(5)].answered, 0);
        assert_eq!(scores[&wid(5)].accuracy, 0.5);
    }

    #[test]
    fn gold_vote_eliminates_workers_who_fail_gold() {
        // Worker 9 aces 4 gold tasks; workers 1..=2 fail them all. On the
        // contested task 100, the two bad workers outvote the good one —
        // elimination must side with the good worker.
        let mut rows = Vec::new();
        for t in 0..4u64 {
            rows.push((t, 9, 1));
            rows.push((t, 1, 0));
            rows.push((t, 2, 0));
        }
        rows.push((100, 9, 1));
        rows.push((100, 1, 0));
        rows.push((100, 2, 0));
        let m = matrix(&rows);
        let gold = GoldSet::from_pairs((0..4).map(|t| (tid(t), 1)));
        let algo = GoldWeightedVote::new(gold);
        let r = algo.infer(&m).unwrap();
        let t100 = m.task_index(tid(100)).unwrap();
        assert_eq!(r.labels[t100], 1, "eliminated workers cannot outvote");
        // Gold tasks fixed to truth.
        for t in 0..4u64 {
            let idx = m.task_index(tid(t)).unwrap();
            assert_eq!(r.labels[idx], 1);
            assert_eq!(r.confidence(idx), 1.0);
        }
        let q = r.worker_quality.unwrap();
        assert!(q[m.worker_index(wid(9)).unwrap()] > 0.8);
        assert!(q[m.worker_index(wid(1)).unwrap()] < 0.2);
    }

    #[test]
    fn gold_vote_rejects_empty_matrix() {
        let algo = GoldWeightedVote::new(GoldSet::new());
        assert!(algo.infer(&ResponseMatrix::new(2)).is_err());
    }

    #[test]
    fn inject_gold_stride_selects_every_nth() {
        let ids: Vec<TaskId> = (0..10).map(tid).collect();
        let truths: Vec<u32> = (0..10).map(|i| (i % 2) as u32).collect();
        let gold = inject_gold_stride(&ids, &truths, 3);
        assert_eq!(gold.len(), 4); // indices 0, 3, 6, 9
        assert_eq!(gold.label(tid(0)), Some(0));
        assert_eq!(gold.label(tid(3)), Some(1));
        assert_eq!(gold.label(tid(1)), None);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_panics() {
        inject_gold_stride(&[], &[], 0);
    }
}
