//! Shared machinery for the EM-family algorithms.
//!
//! All EM variants in this crate share the same skeleton: initialize task
//! posteriors from votes, alternate worker-model M-steps with posterior
//! E-steps, and stop when posteriors move less than a tolerance. This
//! module holds the pieces that are identical across them so each algorithm
//! file contains only its model-specific E/M maths.
//!
//! # Flat state and deterministic parallelism
//!
//! Posterior tables live in one contiguous `Vec<f64>` (`t * k + l`
//! indexing) rather than `Vec<Vec<f64>>`; the helpers here operate on that
//! flat layout. E-steps parallelize over task ranges and M-step soft
//! counts over worker ranges with
//! [`crowdkit_core::par::parallel_items_mut`], whose fixed contiguous
//! partitioning keeps results byte-identical at any thread count.
//! Cross-entity reductions (priors, convergence deltas) stay sequential in
//! a fixed order — they are `O(n·k)` against the E-step's `O(obs·k)`, so
//! there is nothing to win by sharding them.

use crowdkit_core::par::default_threads;
use crowdkit_core::response::ResponseMatrix;
use crowdkit_metrics as metrics;
use crowdkit_obs::{self as obs, Event};

/// Floor applied before `ln` so log-space tables stay finite.
pub(crate) const LN_FLOOR: f64 = 1e-300;

/// Normalizes `row` in place to sum to one; falls back to uniform when the
/// total mass is zero (all-zero rows appear with empty smoothing).
pub(crate) fn normalize(row: &mut [f64]) {
    let total: f64 = row.iter().sum();
    if total > 0.0 {
        for x in row.iter_mut() {
            *x /= total;
        }
    } else {
        let u = 1.0 / row.len() as f64;
        for x in row.iter_mut() {
            *x = u;
        }
    }
}

/// Exponentiates and normalizes a log-space row in place, subtracting the
/// max first for numerical stability.
pub(crate) fn log_normalize(row: &mut [f64]) {
    let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    for x in row.iter_mut() {
        *x = (*x - max).exp();
    }
    normalize(row);
}

/// Initial task posteriors as one flat `num_tasks * k` buffer: the
/// per-task vote fractions (soft majority vote), which is the standard EM
/// initialization in the Dawid–Skene literature. Runs off the flat CSR
/// task grouping.
pub(crate) fn vote_fraction_posteriors(matrix: &ResponseMatrix) -> Vec<f64> {
    let k = matrix.num_labels();
    let (offsets, entries) = matrix.task_csr();
    let mut post = vec![0.0f64; matrix.num_tasks() * k];
    for (t, row) in post.chunks_mut(k).enumerate() {
        for &(_, l) in &entries[offsets[t] as usize..offsets[t + 1] as usize] {
            row[l as usize] += 1.0;
        }
        normalize(row);
    }
    post
}

/// Picks the argmax label of each `k`-wide row of a flat posterior table
/// (ties → smallest index, so results are deterministic).
pub(crate) fn argmax_labels(posteriors: &[f64], k: usize) -> Vec<u32> {
    posteriors
        .chunks(k)
        .map(|row| {
            let mut best = 0usize;
            for (i, &p) in row.iter().enumerate().skip(1) {
                if p > row[best] {
                    best = i;
                }
            }
            best as u32
        })
        .collect()
}

/// Class priors implied by a flat posterior table:
/// `prior[l] = mean_t posterior[t * k + l]`. Sequential fixed-order sum —
/// part of the deterministic-reduction rule.
pub(crate) fn update_priors(posteriors: &[f64], k: usize, priors: &mut [f64]) {
    let n = (posteriors.len() / k) as f64;
    priors.fill(0.0);
    for row in posteriors.chunks(k) {
        for (l, &p) in row.iter().enumerate() {
            priors[l] += p;
        }
    }
    for p in priors.iter_mut() {
        *p /= n;
    }
}

/// Converts a flat `n * k` posterior table into the row-per-task shape of
/// [`crowdkit_core::traits::InferenceResult`].
pub(crate) fn posterior_rows(flat: &[f64], k: usize) -> Vec<Vec<f64>> {
    flat.chunks(k).map(<[f64]>::to_vec).collect()
}

/// Resolves a configured thread count: `0` means *auto* — use the shared
/// default pool width, but only once the per-iteration work (`≈ obs · k`
/// flops) is large enough that scoped-spawn overhead cannot dominate.
/// Explicit values are honored verbatim so equivalence tests can pin
/// 1/2/8-thread runs.
pub(crate) fn resolve_threads(requested: usize, work: usize) -> usize {
    const AUTO_PAR_MIN_WORK: usize = 64 * 1024;
    match requested {
        0 => {
            if work < AUTO_PAR_MIN_WORK {
                1
            } else {
                default_threads()
            }
        }
        n => n,
    }
}

/// Emits the per-iteration `truth.iter` telemetry event. The convergence
/// `delta` (max posterior change) stands in for the log-likelihood
/// trajectory: every EM loop already computes it, it tracks the same
/// convergence signal, and recording it costs no extra kernel pass. Phase
/// timings ride in wall-clock fields, outside the determinism boundary.
pub(crate) fn obs_iter(
    rec: &dyn obs::Recorder,
    algo: &'static str,
    iter: usize,
    delta: f64,
    m_ns: u64,
    e_ns: u64,
) {
    let m = metrics::current();
    if let Some(am) = m.truth.algo(algo) {
        am.iters.inc();
        am.sweep_ns.record(m_ns + e_ns);
    }
    rec.record(
        Event::new("truth.iter")
            .str("algo", algo)
            .u64("iter", iter as u64)
            .f64("delta", delta)
            .wall("m_ns", m_ns)
            .wall("e_ns", e_ns),
    );
}

/// Emits the `truth.run` summary event every [`TruthInferencer`] run ends
/// with (iterative or not): problem shape, EM effort, convergence.
///
/// [`TruthInferencer`]: crowdkit_core::traits::TruthInferencer
pub(crate) fn obs_run(
    algo: &'static str,
    matrix: &ResponseMatrix,
    iterations: usize,
    converged: bool,
    start: obs::WallTimer,
) {
    let m = metrics::current();
    if let Some(am) = m.truth.algo(algo) {
        am.runs.inc();
    }
    if !obs::enabled() {
        return;
    }
    obs::record(
        Event::new("truth.run")
            .str("algo", algo)
            .u64("tasks", matrix.num_tasks() as u64)
            .u64("workers", matrix.num_workers() as u64)
            .u64("observations", matrix.num_observations() as u64)
            .u64("iters", iterations as u64)
            .u64("converged", u64::from(converged))
            .wall("run_ns", start.elapsed_ns()),
    );
}

/// Convergence/iteration settings shared by the EM algorithms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmConfig {
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Convergence tolerance on the max posterior change.
    pub tol: f64,
    /// Laplace smoothing mass added when estimating worker parameters;
    /// keeps estimates defined for workers with few answers.
    pub smoothing: f64,
    /// Worker-pool width for the E/M kernels. `0` (the default) picks
    /// automatically from the problem size; any explicit value is used
    /// as-is. Results are byte-identical at every setting.
    pub threads: usize,
    /// Per-task convergence freezing (the sparse incremental E-step).
    /// Disabled by default, which reproduces the dense kernels bit for
    /// bit; see [`crate::freeze::FreezeConfig`].
    pub freeze: crate::freeze::FreezeConfig,
}

impl Default for EmConfig {
    fn default() -> Self {
        Self {
            max_iters: 100,
            tol: 1e-6,
            smoothing: 0.01,
            threads: 0,
            freeze: crate::freeze::FreezeConfig::disabled(),
        }
    }
}

impl EmConfig {
    /// Returns a copy pinned to `threads` kernel threads.
    pub fn with_threads(self, threads: usize) -> Self {
        Self { threads, ..self }
    }

    /// Returns a copy with the given freezing settings.
    pub fn with_freeze(self, freeze: crate::freeze::FreezeConfig) -> Self {
        Self { freeze, ..self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdkit_core::ids::{TaskId, WorkerId};

    #[test]
    fn normalize_handles_zero_mass() {
        let mut row = [0.0, 0.0];
        normalize(&mut row);
        assert_eq!(row, [0.5, 0.5]);
        let mut row = [2.0, 6.0];
        normalize(&mut row);
        assert_eq!(row, [0.25, 0.75]);
    }

    #[test]
    fn vote_fractions_reflect_counts() {
        let mut m = ResponseMatrix::new(2);
        m.push(TaskId::new(0), WorkerId::new(0), 1).unwrap();
        m.push(TaskId::new(0), WorkerId::new(1), 1).unwrap();
        m.push(TaskId::new(0), WorkerId::new(2), 0).unwrap();
        let post = vote_fraction_posteriors(&m);
        assert!((post[1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn argmax_breaks_ties_toward_smaller_index() {
        let labels = argmax_labels(&[0.5, 0.5, 0.1, 0.9], 2);
        assert_eq!(labels, vec![0, 1]);
    }

    #[test]
    fn priors_average_posteriors() {
        let post = [1.0, 0.0, 0.0, 1.0];
        let mut priors = vec![0.0, 0.0];
        update_priors(&post, 2, &mut priors);
        assert_eq!(priors, vec![0.5, 0.5]);
    }

    #[test]
    fn posterior_rows_round_trip() {
        let flat = [0.25, 0.75, 1.0, 0.0];
        assert_eq!(
            posterior_rows(&flat, 2),
            vec![vec![0.25, 0.75], vec![1.0, 0.0]]
        );
    }

    #[test]
    fn thread_resolution_honors_explicit_and_clamps_auto() {
        assert_eq!(resolve_threads(3, 10), 3, "explicit wins regardless of size");
        assert_eq!(resolve_threads(1, usize::MAX), 1);
        assert_eq!(resolve_threads(0, 16), 1, "tiny problems stay sequential");
        assert!(resolve_threads(0, 100_000_000) >= 1);
    }
}
