//! Shared machinery for the EM-family algorithms.
//!
//! All EM variants in this crate share the same skeleton: initialize task
//! posteriors from votes, alternate worker-model M-steps with posterior
//! E-steps, and stop when posteriors move less than a tolerance. This
//! module holds the pieces that are identical across them so each algorithm
//! file contains only its model-specific E/M maths.

use crowdkit_core::response::ResponseMatrix;

/// Normalizes `row` in place to sum to one; falls back to uniform when the
/// total mass is zero (all-zero rows appear with empty smoothing).
pub(crate) fn normalize(row: &mut [f64]) {
    let total: f64 = row.iter().sum();
    if total > 0.0 {
        for x in row.iter_mut() {
            *x /= total;
        }
    } else {
        let u = 1.0 / row.len() as f64;
        for x in row.iter_mut() {
            *x = u;
        }
    }
}

/// Initial task posteriors: the per-task vote fractions (soft majority
/// vote), which is the standard EM initialization in the Dawid–Skene
/// literature.
pub(crate) fn vote_fraction_posteriors(matrix: &ResponseMatrix) -> Vec<Vec<f64>> {
    let k = matrix.num_labels();
    let mut post = vec![vec![0.0f64; k]; matrix.num_tasks()];
    for o in matrix.observations() {
        post[o.task][o.label as usize] += 1.0;
    }
    for row in &mut post {
        normalize(row);
    }
    post
}

/// Largest absolute difference between two posterior tables.
pub(crate) fn max_abs_diff(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    a.iter()
        .zip(b)
        .flat_map(|(ra, rb)| ra.iter().zip(rb).map(|(x, y)| (x - y).abs()))
        .fold(0.0, f64::max)
}

/// Picks the argmax label of each posterior row (ties → smallest index, so
/// results are deterministic).
pub(crate) fn argmax_labels(posteriors: &[Vec<f64>]) -> Vec<u32> {
    posteriors
        .iter()
        .map(|row| {
            let mut best = 0usize;
            for (i, &p) in row.iter().enumerate().skip(1) {
                if p > row[best] {
                    best = i;
                }
            }
            best as u32
        })
        .collect()
}

/// Class priors implied by posteriors: `prior[l] = mean_t posterior[t][l]`.
pub(crate) fn update_priors(posteriors: &[Vec<f64>], priors: &mut [f64]) {
    let n = posteriors.len() as f64;
    for p in priors.iter_mut() {
        *p = 0.0;
    }
    for row in posteriors {
        for (l, &p) in row.iter().enumerate() {
            priors[l] += p;
        }
    }
    for p in priors.iter_mut() {
        *p /= n;
    }
}

/// Convergence/iteration settings shared by the EM algorithms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmConfig {
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Convergence tolerance on the max posterior change.
    pub tol: f64,
    /// Laplace smoothing mass added when estimating worker parameters;
    /// keeps estimates defined for workers with few answers.
    pub smoothing: f64,
}

impl Default for EmConfig {
    fn default() -> Self {
        Self {
            max_iters: 100,
            tol: 1e-6,
            smoothing: 0.01,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdkit_core::ids::{TaskId, WorkerId};

    #[test]
    fn normalize_handles_zero_mass() {
        let mut row = [0.0, 0.0];
        normalize(&mut row);
        assert_eq!(row, [0.5, 0.5]);
        let mut row = [2.0, 6.0];
        normalize(&mut row);
        assert_eq!(row, [0.25, 0.75]);
    }

    #[test]
    fn vote_fractions_reflect_counts() {
        let mut m = ResponseMatrix::new(2);
        m.push(TaskId::new(0), WorkerId::new(0), 1).unwrap();
        m.push(TaskId::new(0), WorkerId::new(1), 1).unwrap();
        m.push(TaskId::new(0), WorkerId::new(2), 0).unwrap();
        let post = vote_fraction_posteriors(&m);
        assert!((post[0][1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn argmax_breaks_ties_toward_smaller_index() {
        let labels = argmax_labels(&[vec![0.5, 0.5], vec![0.1, 0.9]]);
        assert_eq!(labels, vec![0, 1]);
    }

    #[test]
    fn priors_average_posteriors() {
        let post = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let mut priors = vec![0.0, 0.0];
        update_priors(&post, &mut priors);
        assert_eq!(priors, vec![0.5, 0.5]);
    }

    #[test]
    fn max_abs_diff_finds_largest_gap() {
        let a = vec![vec![0.5, 0.5], vec![0.9, 0.1]];
        let b = vec![vec![0.5, 0.5], vec![0.6, 0.4]];
        assert!((max_abs_diff(&a, &b) - 0.3).abs() < 1e-12);
    }
}
