//! Per-task convergence freezing and the active-set worklist.
//!
//! Dense EM spends most of its late iterations recomputing posteriors that
//! no longer move: on the million-scale workload the bulk of tasks settle
//! within a handful of iterations while a small contested frontier keeps
//! the loop alive. This module implements **incremental (sparse) E-steps**
//! shared by the Dawid–Skene, one-coin and GLAD kernels:
//!
//! * a task whose posterior max-delta stays below `eps` for `patience`
//!   consecutive iterations is **frozen** — its posterior row is pinned,
//!   it is dropped from the E-step worklist, and (for GLAD) its difficulty
//!   parameter stops updating;
//! * frozen tasks still contribute their pinned rows to every M-step
//!   (priors and worker models read the full posterior table), so the
//!   M-step needs no correction terms and no reordered reductions;
//! * a worker all of whose tasks are frozen has worker-model inputs that
//!   can no longer change, so its parameter recompute is skipped — for
//!   Dawid–Skene/one-coin this is a pure no-op (recomputing from pinned
//!   inputs reproduces the same bits), for GLAD it is part of the freezing
//!   semantics (its ability is pinned);
//! * optionally, every `recheck_every` iterations all frozen rows are
//!   recomputed once; rows that drifted at least `eps` from their pinned
//!   value **thaw** back into the active set, bounding the approximation
//!   error of permanent freezing.
//!
//! # Determinism contract
//!
//! Freezing decisions are a pure function of the posterior trajectory,
//! which is byte-identical at any thread count, so the active set itself
//! is deterministic. The worklist shards over active slots via
//! [`parallel_active_items_mut`]; every cross-task reduction (the global
//! delta, streak bookkeeping, worklist rebuild) is sequential in ascending
//! task order. [`FreezeConfig::dense_reference`] runs the *same freezing
//! semantics* with full-range dense sweeps and no worklist machinery —
//! the equivalence property tests pin the two paths bit-identical, which
//! is exactly the guarantee that the active-set optimization changed the
//! cost and nothing else.
//!
//! Telemetry: `truth.freeze` / `truth.thaw` events carry the per-iteration
//! active-set size so `crowdtrace replay --folded` shows where EM time
//! actually goes (see `DESIGN.md` §11).

use crowdkit_core::par::{parallel_active_items_mut, parallel_items_mut};
use crowdkit_obs::{self as obs, Event};

/// Convergence-freezing settings shared by the EM kernels.
///
/// The default (`eps == 0.0`) disables freezing entirely: no task ever
/// freezes (a max-delta is never `< 0.0`), the worklist stays full, and
/// the kernels reproduce the dense pre-freezing behaviour bit for bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreezeConfig {
    /// Per-task freeze tolerance on the posterior max-delta. `<= 0.0`
    /// disables freezing.
    pub eps: f64,
    /// Number of consecutive below-`eps` iterations (R in the docs)
    /// before a task freezes. Clamped to at least 1.
    pub patience: u32,
    /// Recompute frozen rows every this many iterations and thaw any that
    /// drifted `>= eps`; `0` never rechecks (frozen is permanent).
    pub recheck_every: u32,
    /// Evaluate the identical freezing semantics with full dense sweeps
    /// instead of the active-set worklist. Test/bench aid: the equivalence
    /// property tests compare this path against the worklist path
    /// bit-for-bit.
    pub dense_reference: bool,
}

impl Default for FreezeConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

impl FreezeConfig {
    /// Freezing off: the kernels behave exactly like the dense originals.
    pub const fn disabled() -> Self {
        Self {
            eps: 0.0,
            patience: 2,
            recheck_every: 0,
            dense_reference: false,
        }
    }

    /// Freezing on with tolerance `eps` and the default patience of 2.
    pub const fn sparse(eps: f64) -> Self {
        Self {
            eps,
            patience: 2,
            recheck_every: 0,
            dense_reference: false,
        }
    }

    /// Returns a copy with the given patience (R).
    pub const fn with_patience(self, patience: u32) -> Self {
        Self { patience, ..self }
    }

    /// Returns a copy that rechecks frozen rows every `every` iterations.
    pub const fn with_recheck(self, every: u32) -> Self {
        Self {
            recheck_every: every,
            ..self
        }
    }

    /// Returns a copy pinned to the dense-reference evaluation path.
    pub const fn with_dense_reference(self, on: bool) -> Self {
        Self {
            dense_reference: on,
            ..self
        }
    }

    /// True when freezing is active.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.eps > 0.0
    }
}

/// What one E-step sweep did, for convergence checks and telemetry.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SweepOutcome {
    /// Max posterior change over the recomputed (non-discarded) rows —
    /// the kernels' convergence delta.
    pub delta: f64,
    /// Tasks newly frozen this iteration.
    pub froze: usize,
    /// Tasks thawed by a recheck this iteration.
    pub thawed: usize,
    /// Active (unfrozen) tasks after this iteration.
    pub active_len: usize,
    /// Total frozen tasks after this iteration.
    pub frozen_total: usize,
}

/// The shared sparse-EM state: worklist, streaks, pinned flags, and the
/// arena scratch every iteration reuses (no per-iteration allocation).
pub(crate) struct ActiveSet {
    cfg: FreezeConfig,
    k: usize,
    n_tasks: usize,
    /// Unfrozen task indices, ascending. The E-step worklist.
    active: Vec<u32>,
    /// Arena for worklist rebuilds (ping-pongs with `active`).
    rebuild: Vec<u32>,
    /// Consecutive below-eps iterations per task.
    streak: Vec<u32>,
    /// Pinned flag per task.
    frozen: Vec<bool>,
    /// Per worker: number of its observations on unfrozen tasks. Zero
    /// means every input to this worker's model is pinned.
    worker_live: Vec<u32>,
    /// Per worker: the M-step recompute is a guaranteed bitwise no-op.
    /// Set one full sweep *after* `worker_live` reaches zero — the sweep
    /// that froze the last task also moved its row, so the next M-step
    /// must recompute once before the cached value is in sync.
    worker_synced: Vec<bool>,
    /// Workers whose live count hit zero this sweep, promoted into
    /// `worker_synced` at the start of the next sweep.
    newly_frozen_workers: Vec<u32>,
    /// Compact per-sweep scratch: one `(row, delta)` slot of width `k + 1`
    /// per computed task. Sized for a full sweep and reused every
    /// iteration.
    scratch: Vec<f64>,
    /// 1-based iteration counter driving the recheck schedule.
    iter: u32,
    frozen_total: usize,
}

impl ActiveSet {
    /// Builds the state for `n_tasks` tasks over a `k`-label space;
    /// `w_off` is the worker-CSR offset array (worker degrees seed the
    /// liveness counters).
    pub fn new(cfg: FreezeConfig, n_tasks: usize, k: usize, w_off: &[u32]) -> Self {
        let cfg = FreezeConfig {
            patience: cfg.patience.max(1),
            ..cfg
        };
        Self {
            cfg,
            k,
            n_tasks,
            active: (0..n_tasks as u32).collect(),
            rebuild: Vec::with_capacity(n_tasks),
            streak: vec![0; if cfg.enabled() { n_tasks } else { 0 }],
            frozen: vec![false; if cfg.enabled() { n_tasks } else { 0 }],
            worker_live: if cfg.enabled() {
                w_off.windows(2).map(|w| w[1] - w[0]).collect()
            } else {
                Vec::new()
            },
            worker_synced: vec![false; if cfg.enabled() { w_off.len().saturating_sub(1) } else { 0 }],
            newly_frozen_workers: Vec::new(),
            scratch: vec![0.0; n_tasks * (k + 1)],
            iter: 0,
            frozen_total: 0,
        }
    }

    /// The current worklist (ascending task order).
    #[inline]
    pub fn active(&self) -> &[u32] {
        &self.active
    }

    /// True when every task is frozen — the run is done. (The kernels
    /// need no explicit check: an empty worklist yields a zero sweep
    /// delta, which trips their normal convergence test.)
    #[cfg(test)]
    pub fn all_frozen(&self) -> bool {
        self.cfg.enabled() && self.frozen_total == self.n_tasks
    }

    /// Whether task `t`'s parameters are pinned (GLAD difficulty, row
    /// updates). Semantics, identical in both evaluation modes.
    #[inline]
    pub fn task_frozen(&self, t: usize) -> bool {
        self.cfg.enabled() && self.frozen[t]
    }

    /// Whether worker `w`'s parameters are pinned because all of its
    /// tasks froze. Semantics, identical in both evaluation modes.
    #[inline]
    pub fn worker_frozen(&self, w: usize) -> bool {
        self.cfg.enabled() && self.worker_live[w] == 0
    }

    /// Whether the kernel may skip recomputing worker `w`'s model this
    /// M-step. Pure machinery: once the worker's posterior rows have been
    /// pinned for a full sweep, the previous M-step already computed from
    /// exactly these rows, so recomputing reproduces the same bits. The
    /// dense-reference path recomputes anyway and the equivalence tests
    /// verify the claim. (The one-sweep delay matters: the sweep that
    /// froze the worker's last task also moved that task's row.)
    #[inline]
    pub fn can_skip_worker_update(&self, w: usize) -> bool {
        self.cfg.enabled() && !self.cfg.dense_reference && self.worker_synced[w]
    }

    /// Whether the worklist path is live (freezing on, not the dense
    /// reference). Kernels use this to choose active-set sharding for
    /// their own per-task side loops (e.g. GLAD's difficulty gradient).
    #[inline]
    pub fn use_worklist(&self) -> bool {
        self.cfg.enabled() && !self.cfg.dense_reference
    }

    /// Runs one E-step sweep: computes new posterior rows via
    /// `compute(task, row_out)` (a pure function of shared read-only
    /// state), commits them to `posteriors`, and advances the freezing
    /// state machine. Returns the sweep's convergence delta and
    /// freeze/thaw counts.
    pub fn sweep<F>(
        &mut self,
        posteriors: &mut [f64],
        t_off: &[u32],
        t_entries: &[(u32, u32)],
        threads: usize,
        compute: F,
    ) -> SweepOutcome
    where
        F: Fn(usize, &mut [f64]) + Sync,
    {
        self.iter += 1;
        let k = self.k;
        // Promote workers frozen during the previous sweep: the M-step
        // between that sweep and this one has recomputed their models from
        // the final pinned rows, so from here on a recompute is a bitwise
        // no-op. (A thaw in the meantime clears the flag and bumps
        // `worker_live`, so the stale promotion is discarded.)
        while let Some(w) = self.newly_frozen_workers.pop() {
            if self.worker_live[w as usize] == 0 {
                self.worker_synced[w as usize] = true;
            }
        }
        let recheck = self.cfg.enabled()
            && self.cfg.recheck_every > 0
            && self.iter.is_multiple_of(self.cfg.recheck_every)
            && self.frozen_total > 0;
        // Full-range sweeps: freezing off (everything is active), the
        // dense reference (that is the point), or a recheck iteration
        // (frozen rows must be recomputed too). Otherwise shard over the
        // worklist only.
        let full = !self.use_worklist() || recheck;

        let stride = k + 1;
        if full {
            let post: &[f64] = posteriors;
            let compute = &compute;
            parallel_items_mut(
                &mut self.scratch[..self.n_tasks * stride],
                stride,
                threads,
                |t0, run| {
                    for (i, item) in run.chunks_mut(stride).enumerate() {
                        let t = t0 + i;
                        let (row, d) = item.split_at_mut(k);
                        compute(t, row);
                        d[0] = row_delta(row, &post[t * k..t * k + k]);
                    }
                },
            );
        } else {
            let post: &[f64] = posteriors;
            let compute = &compute;
            parallel_active_items_mut(
                &mut self.scratch,
                stride,
                &self.active,
                threads,
                |_, t, item| {
                    let (row, d) = item.split_at_mut(k);
                    compute(t, row);
                    d[0] = row_delta(row, &post[t * k..t * k + k]);
                },
            );
        }

        // Sequential commit in ascending task order: scatter rows, fold
        // the global delta, advance streaks, apply freeze/thaw
        // transitions. This is the fixed-order reduction the determinism
        // contract requires.
        let mut out = SweepOutcome::default();
        let enabled = self.cfg.enabled();
        let mut membership_changed = false;
        let commit_one = |slot: usize,
                          t: usize,
                          this: &mut Self,
                          posteriors: &mut [f64],
                          out: &mut SweepOutcome,
                          membership_changed: &mut bool| {
            let item = &this.scratch[slot * stride..slot * stride + stride];
            let (row, delta) = (&item[..k], item[k]);
            if enabled && this.frozen[t] {
                // Only reachable on full-range sweeps. Recheck: thaw rows
                // that drifted; otherwise the computed row is discarded
                // and the pinned value stands.
                if recheck && delta >= this.cfg.eps {
                    posteriors[t * k..t * k + k].copy_from_slice(row);
                    this.frozen[t] = false;
                    this.streak[t] = 0;
                    this.frozen_total -= 1;
                    for &(w, _) in entries_of(t_off, t_entries, t) {
                        this.worker_live[w as usize] += 1;
                        this.worker_synced[w as usize] = false;
                    }
                    out.thawed += 1;
                    out.delta = out.delta.max(delta);
                    *membership_changed = true;
                }
                return;
            }
            posteriors[t * k..t * k + k].copy_from_slice(row);
            out.delta = out.delta.max(delta);
            if enabled {
                if delta < this.cfg.eps {
                    this.streak[t] += 1;
                    if this.streak[t] >= this.cfg.patience {
                        this.frozen[t] = true;
                        this.frozen_total += 1;
                        for &(w, _) in entries_of(t_off, t_entries, t) {
                            this.worker_live[w as usize] -= 1;
                            if this.worker_live[w as usize] == 0 {
                                this.newly_frozen_workers.push(w);
                            }
                        }
                        out.froze += 1;
                        *membership_changed = true;
                    }
                } else {
                    this.streak[t] = 0;
                }
            }
        };
        if full {
            for t in 0..self.n_tasks {
                commit_one(t, t, self, posteriors, &mut out, &mut membership_changed);
            }
        } else {
            let active = std::mem::take(&mut self.active);
            for (slot, &t) in active.iter().enumerate() {
                commit_one(
                    slot,
                    t as usize,
                    self,
                    posteriors,
                    &mut out,
                    &mut membership_changed,
                );
            }
            self.active = active;
        }

        if enabled && membership_changed {
            self.rebuild.clear();
            self.rebuild
                .extend((0..self.n_tasks as u32).filter(|&t| !self.frozen[t as usize]));
            std::mem::swap(&mut self.active, &mut self.rebuild);
        }
        out.active_len = if enabled { self.active.len() } else { self.n_tasks };
        out.frozen_total = self.frozen_total;
        out
    }

    /// Emits the `truth.freeze` / `truth.thaw` telemetry for one sweep.
    /// Freeze/thaw counts and the active-set size are deterministic
    /// fields: the freezing trajectory is byte-identical across runs and
    /// thread counts.
    pub fn observe(&self, rec: &dyn obs::Recorder, algo: &'static str, iter: usize, out: &SweepOutcome) {
        if out.froze > 0 || out.thawed > 0 {
            let m = crowdkit_metrics::current();
            m.truth.freezes.add(out.froze as u64);
            m.truth.thaws.add(out.thawed as u64);
            m.truth.active_tasks.set(out.active_len as i64);
            m.truth.frozen_tasks.set(out.frozen_total as i64);
        }
        if out.froze > 0 {
            rec.record(
                Event::new("truth.freeze")
                    .str("algo", algo)
                    .u64("iter", iter as u64)
                    .u64("froze", out.froze as u64)
                    .u64("active", out.active_len as u64)
                    .u64("frozen_total", out.frozen_total as u64),
            );
        }
        if out.thawed > 0 {
            rec.record(
                Event::new("truth.thaw")
                    .str("algo", algo)
                    .u64("iter", iter as u64)
                    .u64("thawed", out.thawed as u64)
                    .u64("active", out.active_len as u64)
                    .u64("frozen_total", out.frozen_total as u64),
            );
        }
    }
}

/// Task `t`'s CSR entry slice.
#[inline]
fn entries_of<'a>(t_off: &[u32], t_entries: &'a [(u32, u32)], t: usize) -> &'a [(u32, u32)] {
    &t_entries[t_off[t] as usize..t_off[t + 1] as usize]
}

/// Max absolute difference between one recomputed row and its previous
/// value — the per-task convergence delta.
#[inline]
fn row_delta(new: &[f64], old: &[f64]) -> f64 {
    new.iter()
        .zip(old)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csr_for(n_tasks: usize, n_workers: usize) -> (Vec<u32>, Vec<(u32, u32)>, Vec<u32>) {
        // One observation per (task, worker) pair: task t answered by
        // worker t % n_workers only.
        let mut t_off = vec![0u32; n_tasks + 1];
        let mut t_entries = Vec::new();
        for t in 0..n_tasks {
            t_entries.push(((t % n_workers) as u32, 0u32));
            t_off[t + 1] = t_off[t] + 1;
        }
        let mut degrees = vec![0u32; n_workers];
        for &(w, _) in &t_entries {
            degrees[w as usize] += 1;
        }
        let mut w_off = vec![0u32; n_workers + 1];
        for w in 0..n_workers {
            w_off[w + 1] = w_off[w] + degrees[w];
        }
        (t_off, t_entries, w_off)
    }

    #[test]
    fn disabled_config_keeps_every_task_active() {
        let (t_off, t_entries, w_off) = csr_for(4, 2);
        let mut aset = ActiveSet::new(FreezeConfig::disabled(), 4, 1, &w_off);
        let mut post = vec![0.0f64; 4];
        for _ in 0..5 {
            let out = aset.sweep(&mut post, &t_off, &t_entries, 1, |_, row| row[0] = 1.0);
            assert_eq!(out.froze, 0);
            assert_eq!(out.active_len, 4);
            assert!(!aset.all_frozen());
        }
        assert_eq!(post, vec![1.0; 4]);
    }

    #[test]
    fn tasks_freeze_after_patience_and_pin_their_rows() {
        let (t_off, t_entries, w_off) = csr_for(3, 3);
        let cfg = FreezeConfig::sparse(0.5).with_patience(2);
        let mut aset = ActiveSet::new(cfg, 3, 1, &w_off);
        let mut post = vec![0.0f64; 3];
        // Task 2 keeps moving by 1.0 (>= eps); tasks 0, 1 settle at 0.1.
        let compute = |t: usize, row: &mut [f64], i: f64| {
            row[0] = if t == 2 { i } else { 0.1 };
        };
        let mut outs = Vec::new();
        for i in 0..4 {
            let c = |t: usize, row: &mut [f64]| compute(t, row, (i + 1) as f64);
            outs.push(aset.sweep(&mut post, &t_off, &t_entries, 1, c));
        }
        // Iter 1: deltas 0.1 under eps → streak 1. Iter 2: streak 2 →
        // tasks 0 and 1 freeze.
        assert_eq!(outs[0].froze, 0);
        assert_eq!(outs[1].froze, 2);
        assert_eq!(outs[1].active_len, 1);
        assert_eq!(aset.active(), &[2]);
        assert!(aset.task_frozen(0) && aset.task_frozen(1) && !aset.task_frozen(2));
        // Workers 0 and 1 only touch frozen tasks now.
        assert!(aset.worker_frozen(0) && aset.worker_frozen(1) && !aset.worker_frozen(2));
        assert!(aset.can_skip_worker_update(0));
        // Frozen rows stay pinned at their freeze-time value while the
        // active task keeps tracking the compute function.
        assert_eq!(post[0], 0.1);
        assert_eq!(post[2], 4.0);
        // Delta only reflects the active frontier.
        assert_eq!(outs[3].delta, 1.0);
    }

    #[test]
    fn recheck_thaws_drifted_rows() {
        let (t_off, t_entries, w_off) = csr_for(2, 2);
        let cfg = FreezeConfig::sparse(0.5).with_patience(1).with_recheck(2);
        let mut aset = ActiveSet::new(cfg, 2, 1, &w_off);
        let mut post = vec![0.0f64; 2];
        // Sweep 1: both rows land on 0.1 (delta 0.1 < eps, patience 1) →
        // both freeze, worklist empties.
        let out = aset.sweep(&mut post, &t_off, &t_entries, 1, |_, row| row[0] = 0.1);
        assert_eq!(out.froze, 2);
        assert!(aset.all_frozen());
        // Sweep 2 is a recheck: task 0's recomputed row has drifted far
        // from its pinned value → it thaws; task 1 stays pinned.
        let out = aset.sweep(&mut post, &t_off, &t_entries, 1, |t, row| {
            row[0] = if t == 0 { 9.0 } else { 0.1 }
        });
        assert_eq!(out.thawed, 1);
        assert_eq!(out.froze, 0);
        assert_eq!(aset.active(), &[0]);
        assert!((post[0] - 9.0).abs() < 1e-12, "thawed row committed");
        assert!(!aset.worker_frozen(0));
        assert!(aset.worker_frozen(1));
    }

    #[test]
    fn dense_reference_tracks_the_same_membership() {
        let (t_off, t_entries, w_off) = csr_for(3, 3);
        let run = |dense: bool| {
            let cfg = FreezeConfig::sparse(0.5).with_patience(1).with_dense_reference(dense);
            let mut aset = ActiveSet::new(cfg, 3, 1, &w_off);
            let mut post = vec![0.0f64; 3];
            let mut deltas = Vec::new();
            for i in 0..4 {
                let c = |t: usize, row: &mut [f64]| {
                    row[0] = if t == 0 { (i + 1) as f64 } else { 0.2 };
                };
                deltas.push(aset.sweep(&mut post, &t_off, &t_entries, 1, c).delta);
            }
            (post, deltas)
        };
        let (post_w, deltas_w) = run(false);
        let (post_d, deltas_d) = run(true);
        assert_eq!(post_w, post_d, "worklist and dense reference diverged");
        assert_eq!(deltas_w, deltas_d);
    }
}
