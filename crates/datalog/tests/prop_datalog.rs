//! Property-based tests for the crowd-Datalog layer: AST pretty-print →
//! reparse round-trips, and semantic invariants of evaluation.

use crowdkit_datalog::ast::{Atom, Clause, CmpOp, Const, Literal, Program, Rule, Term};
use crowdkit_datalog::{parse_program, Engine, EngineConfig, NullResolver};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// AST generators
// ---------------------------------------------------------------------------

fn const_strategy() -> impl Strategy<Value = Const> {
    prop_oneof![
        (-1000i64..1000).prop_map(Const::Int),
        "[a-z][a-z0-9 _]{0,8}".prop_map(Const::Str),
        // Strings that exercise escaping.
        Just(Const::Str("say \"hi\"".into())),
        Just(Const::Str("back\\slash".into())),
    ]
}

fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        "[A-Z][a-z0-9]{0,4}".prop_map(Term::Var),
        const_strategy().prop_map(Term::Const),
        Just(Term::Wildcard),
    ]
}

fn atom_strategy() -> impl Strategy<Value = Atom> {
    (
        "[a-mo-z][a-z0-9_]{0,6}", // avoid the keyword "not"
        prop::collection::vec(term_strategy(), 1..4),
    )
        .prop_map(|(name, args)| Atom::new(name, args))
}

fn ground_atom_strategy() -> impl Strategy<Value = Atom> {
    (
        "[a-mo-z][a-z0-9_]{0,6}",
        prop::collection::vec(const_strategy().prop_map(Term::Const), 1..4),
    )
        .prop_map(|(name, args)| Atom::new(name, args))
}

fn literal_strategy() -> impl Strategy<Value = Literal> {
    prop_oneof![
        atom_strategy().prop_map(Literal::Pos),
        atom_strategy().prop_map(Literal::Neg),
        (term_strategy(), term_strategy()).prop_map(|(l, r)| {
            Literal::Cmp(l, CmpOp::Ne, r)
        }),
    ]
}

fn clause_strategy() -> impl Strategy<Value = Clause> {
    prop_oneof![
        // Ground fact.
        ground_atom_strategy().prop_map(|head| Clause::Rule(Rule { head, body: vec![], aggregates: vec![] })),
        // Rule with a body.
        (atom_strategy(), prop::collection::vec(literal_strategy(), 1..4))
            .prop_map(|(head, body)| Clause::Rule(Rule { head, body, aggregates: vec![] })),
        // Crowd declaration.
        ("[a-mo-z][a-z0-9_]{0,6}", 1usize..4)
            .prop_map(|(predicate, arity)| Clause::CrowdDecl { predicate, arity }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The pretty-printer's output always reparses to the same AST.
    /// (Programs need not be *valid* — safety is the engine's concern, not
    /// the parser's.)
    #[test]
    fn pretty_print_reparses(clauses in prop::collection::vec(clause_strategy(), 0..8)) {
        let program = Program { clauses };
        let printed = program.to_string();
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("failed to reparse:\n{printed}\nerror: {e}"));
        prop_assert_eq!(program, reparsed);
    }

    /// Adding facts to a negation-free program never removes derived
    /// tuples (monotonicity of positive Datalog).
    #[test]
    fn positive_programs_are_monotone(
        edges in prop::collection::vec((0u8..6, 0u8..6), 1..12),
        extra in (0u8..6, 0u8..6),
    ) {
        let base_src = {
            let mut s = String::new();
            for (a, b) in &edges {
                s.push_str(&format!("edge({a}, {b}).\n"));
            }
            s.push_str("path(X, Y) :- edge(X, Y).\n");
            s.push_str("path(X, Z) :- edge(X, Y), path(Y, Z).\n");
            s
        };
        let bigger_src = format!("{base_src}edge({}, {}).\n", extra.0, extra.1);

        let run = |src: &str| {
            let engine = Engine::new(parse_program(src).unwrap()).unwrap();
            let (db, _) = engine.run(&mut NullResolver).unwrap();
            db.relation("path")
        };
        let small = run(&base_src);
        let big = run(&bigger_src);
        for tuple in &small {
            prop_assert!(
                big.contains(tuple),
                "tuple {tuple:?} lost after adding a fact"
            );
        }
    }

    /// Evaluation is deterministic: same program → same database.
    #[test]
    fn evaluation_is_deterministic(
        edges in prop::collection::vec((0u8..5, 0u8..5), 1..10)
    ) {
        let mut src = String::new();
        for (a, b) in &edges {
            src.push_str(&format!("e({a}, {b}).\n"));
        }
        src.push_str("r(X, Y) :- e(X, Y).\nr(X, Z) :- e(X, Y), r(Y, Z).\n");
        src.push_str("loner(X) :- e(X, _), not r(X, X).\n");
        let run = || {
            let engine = Engine::new(parse_program(&src).unwrap()).unwrap();
            let (db, _) = engine.run(&mut NullResolver).unwrap();
            (db.relation("r"), db.relation("loner"))
        };
        prop_assert_eq!(run(), run());
    }

    /// The parser never panics on arbitrary input (errors are Results).
    #[test]
    fn parser_total_on_arbitrary_input(src in ".{0,200}") {
        let _ = parse_program(&src);
    }

    /// Transitive closure contains exactly the reachable pairs (checked
    /// against a BFS reference).
    #[test]
    fn closure_matches_bfs_reference(
        edges in prop::collection::vec((0u8..5, 0u8..5), 0..12)
    ) {
        let mut src = String::new();
        for (a, b) in &edges {
            src.push_str(&format!("edge({a}, {b}).\n"));
        }
        src.push_str("path(X, Y) :- edge(X, Y).\n");
        src.push_str("path(X, Z) :- edge(X, Y), path(Y, Z).\n");
        let engine = Engine::new(parse_program(&src).unwrap()).unwrap();
        let (db, _) = engine.run(&mut NullResolver).unwrap();

        // BFS reference.
        let mut reach = std::collections::HashSet::new();
        for start in 0u8..5 {
            let mut frontier = vec![start];
            let mut seen = std::collections::HashSet::new();
            while let Some(cur) = frontier.pop() {
                for &(a, b) in &edges {
                    if a == cur && seen.insert(b) {
                        reach.insert((start, b));
                        frontier.push(b);
                    }
                }
            }
        }
        let derived: std::collections::HashSet<(u8, u8)> = db
            .relation("path")
            .into_iter()
            .map(|row| match (&row[0], &row[1]) {
                (Const::Int(a), Const::Int(b)) => (*a as u8, *b as u8),
                _ => unreachable!(),
            })
            .collect();
        prop_assert_eq!(derived, reach);
    }

    /// Semi-naive and naive evaluation compute identical databases.
    #[test]
    fn semi_naive_matches_naive(
        edges in prop::collection::vec((0u8..6, 0u8..6), 0..14)
    ) {
        let mut src = String::new();
        for (a, b) in &edges {
            src.push_str(&format!("e({a}, {b}).\n"));
        }
        src.push_str("r(X, Y) :- e(X, Y).\nr(X, Z) :- e(X, Y), r(Y, Z).\n");
        src.push_str("self_loop(X) :- r(X, X).\n");
        src.push_str("acyclic(X) :- e(X, _), not self_loop(X).\n");
        let program = parse_program(&src).unwrap();
        let run = |semi_naive: bool| {
            let engine = Engine::new(program.clone()).unwrap().with_config(EngineConfig {
                semi_naive,
                ..EngineConfig::default()
            });
            let (db, _) = engine.run(&mut NullResolver).unwrap();
            (db.relation("r"), db.relation("self_loop"), db.relation("acyclic"))
        };
        prop_assert_eq!(run(true), run(false));
    }
}
