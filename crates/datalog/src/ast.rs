//! Abstract syntax for crowd-Datalog programs.

use std::fmt;

/// A constant value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Const {
    /// An integer constant.
    Int(i64),
    /// A string constant.
    Str(String),
}

impl Const {
    /// String form without quoting (for prompts).
    pub fn display_raw(&self) -> String {
        match self {
            Const::Int(i) => i.to_string(),
            Const::Str(s) => s.clone(),
        }
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Int(i) => write!(f, "{i}"),
            Const::Str(s) => write!(f, "\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
        }
    }
}

/// A term: a variable, a constant, or the anonymous wildcard `_`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A named variable (`X`, `City`).
    Var(String),
    /// A constant.
    Const(Const),
    /// The wildcard `_`: matches anything, binds nothing.
    Wildcard,
}

impl Term {
    /// Shorthand for a string constant term.
    pub fn str(s: impl Into<String>) -> Self {
        Term::Const(Const::Str(s.into()))
    }

    /// Shorthand for an integer constant term.
    pub fn int(i: i64) -> Self {
        Term::Const(Const::Int(i))
    }

    /// Shorthand for a variable term.
    pub fn var(name: impl Into<String>) -> Self {
        Term::Var(name.into())
    }

    /// True if this term is a variable or wildcard.
    pub fn is_free(&self) -> bool {
        matches!(self, Term::Var(_) | Term::Wildcard)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
            Term::Wildcard => write!(f, "_"),
        }
    }
}

/// A predicate applied to terms: `parent(X, "bob")`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Predicate name.
    pub predicate: String,
    /// Argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(predicate: impl Into<String>, args: Vec<Term>) -> Self {
        Self {
            predicate: predicate.into(),
            args,
        }
    }

    /// The atom's arity.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Variables appearing in the atom, in order of first appearance.
    pub fn variables(&self) -> Vec<&str> {
        let mut vars = Vec::new();
        for t in &self.args {
            if let Term::Var(v) = t {
                if !vars.contains(&v.as_str()) {
                    vars.push(v.as_str());
                }
            }
        }
        vars
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.predicate)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// Comparison operators usable in rule bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluates the operator on two constants. Ordering comparisons
    /// require both sides to be the same variant; mixed types are false
    /// except for (in)equality, which compares structurally.
    pub fn eval(self, a: &Const, b: &Const) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => match (a, b) {
                (Const::Int(x), Const::Int(y)) => match self {
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                    _ => unreachable!(),
                },
                (Const::Str(x), Const::Str(y)) => match self {
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                    _ => unreachable!(),
                },
                _ => false,
            },
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A body literal: a (possibly negated) atom, or a comparison.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Literal {
    /// A positive atom.
    Pos(Atom),
    /// A negated atom (`not p(X)`).
    Neg(Atom),
    /// A comparison between two terms.
    Cmp(Term, CmpOp, Term),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Pos(a) => write!(f, "{a}"),
            Literal::Neg(a) => write!(f, "not {a}"),
            Literal::Cmp(l, op, r) => write!(f, "{l} {op} {r}"),
        }
    }
}

/// Aggregate functions usable in rule heads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Number of distinct values.
    Count,
    /// Sum of distinct integer values.
    Sum,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        };
        write!(f, "{s}")
    }
}

/// One aggregated head position: `total(X, count<Y>)` has an `AggSlot`
/// at position 1 aggregating variable `Y`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggSlot {
    /// Index in the head's argument list (the corresponding `head.args`
    /// entry is a placeholder wildcard).
    pub pos: usize,
    /// The aggregate function.
    pub func: AggFunc,
    /// The body variable being aggregated.
    pub var: String,
}

/// A rule `head :- body` (facts are rules with an empty body and ground
/// head). Aggregate rules additionally carry [`AggSlot`]s; aggregation is
/// over the *set* of distinct bindings (Datalog set semantics), grouped by
/// the head's non-aggregate arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// The derived atom. Aggregated positions hold [`Term::Wildcard`]
    /// placeholders; see [`Rule::aggregates`].
    pub head: Atom,
    /// The conditions; empty for facts.
    pub body: Vec<Literal>,
    /// Aggregated head positions (empty for ordinary rules).
    pub aggregates: Vec<AggSlot>,
}

impl Rule {
    /// True if this rule is a ground fact.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty() && self.head.args.iter().all(|t| matches!(t, Term::Const(_)))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.head.predicate)?;
        for (i, a) in self.head.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match self.aggregates.iter().find(|s| s.pos == i) {
                Some(slot) => write!(f, "{}<{}>", slot.func, slot.var)?,
                None => write!(f, "{a}")?,
            }
        }
        write!(f, ")")?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, l) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{l}")?;
            }
        }
        write!(f, ".")
    }
}

/// A top-level program item.
#[derive(Debug, Clone, PartialEq)]
pub enum Clause {
    /// A fact or rule.
    Rule(Rule),
    /// A crowd-predicate declaration `@crowd name/arity.`.
    CrowdDecl {
        /// Declared predicate name.
        predicate: String,
        /// Declared arity.
        arity: usize,
    },
}

/// A parsed program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Items in source order.
    pub clauses: Vec<Clause>,
}

impl Program {
    /// All rules (including facts), in source order.
    pub fn rules(&self) -> impl Iterator<Item = &Rule> {
        self.clauses.iter().filter_map(|c| match c {
            Clause::Rule(r) => Some(r),
            _ => None,
        })
    }

    /// Declared crowd predicates as `(name, arity)`.
    pub fn crowd_predicates(&self) -> Vec<(&str, usize)> {
        self.clauses
            .iter()
            .filter_map(|c| match c {
                Clause::CrowdDecl { predicate, arity } => Some((predicate.as_str(), *arity)),
                _ => None,
            })
            .collect()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.clauses {
            match c {
                Clause::Rule(r) => writeln!(f, "{r}")?,
                Clause::CrowdDecl { predicate, arity } => {
                    writeln!(f, "@crowd {predicate}/{arity}.")?
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_display_quotes_strings() {
        assert_eq!(Const::Int(42).to_string(), "42");
        assert_eq!(Const::Str("bob".into()).to_string(), "\"bob\"");
        assert_eq!(
            Const::Str("say \"hi\"".into()).to_string(),
            "\"say \\\"hi\\\"\""
        );
    }

    #[test]
    fn atom_variables_dedup_in_order() {
        let a = Atom::new(
            "p",
            vec![Term::var("X"), Term::str("c"), Term::var("Y"), Term::var("X")],
        );
        assert_eq!(a.variables(), vec!["X", "Y"]);
        assert_eq!(a.arity(), 4);
    }

    #[test]
    fn cmp_eval_semantics() {
        let i = |x| Const::Int(x);
        assert!(CmpOp::Lt.eval(&i(1), &i(2)));
        assert!(!CmpOp::Lt.eval(&i(2), &i(1)));
        assert!(CmpOp::Ne.eval(&i(1), &Const::Str("1".into())));
        assert!(!CmpOp::Eq.eval(&i(1), &Const::Str("1".into())));
        // Ordering across types is false.
        assert!(!CmpOp::Lt.eval(&i(1), &Const::Str("z".into())));
        let s = |x: &str| Const::Str(x.into());
        assert!(CmpOp::Le.eval(&s("a"), &s("b")));
        assert!(CmpOp::Ge.eval(&s("b"), &s("b")));
    }

    #[test]
    fn rule_display_round_shape() {
        let r = Rule {
            head: Atom::new("ancestor", vec![Term::var("X"), Term::var("Z")]),
            body: vec![
                Literal::Pos(Atom::new("parent", vec![Term::var("X"), Term::var("Y")])),
                Literal::Pos(Atom::new("ancestor", vec![Term::var("Y"), Term::var("Z")])),
            ],
            aggregates: vec![],
        };
        assert_eq!(
            r.to_string(),
            "ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z)."
        );
    }

    #[test]
    fn fact_detection() {
        let fact = Rule {
            head: Atom::new("p", vec![Term::str("a")]),
            body: vec![],
            aggregates: vec![],
        };
        assert!(fact.is_fact());
        let open_head = Rule {
            head: Atom::new("p", vec![Term::var("X")]),
            body: vec![],
            aggregates: vec![],
        };
        assert!(!open_head.is_fact());
    }

    #[test]
    fn program_accessors() {
        let p = Program {
            clauses: vec![
                Clause::CrowdDecl {
                    predicate: "city_of".into(),
                    arity: 2,
                },
                Clause::Rule(Rule {
                    head: Atom::new("p", vec![Term::str("a")]),
                    body: vec![],
                    aggregates: vec![],
                }),
            ],
        };
        assert_eq!(p.crowd_predicates(), vec![("city_of", 2)]);
        assert_eq!(p.rules().count(), 1);
    }
}
