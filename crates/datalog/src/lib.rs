//! # crowdkit-datalog
//!
//! A Datalog engine with *crowd predicates* — the Deco-flavoured
//! declarative layer of crowdkit.
//!
//! Deco (Parameswaran et al., 2012) modelled crowdsourced data as
//! relations whose tuples can be *fetched* from people on demand during
//! query evaluation; CyLog modelled them as rules with *open predicates*
//! whose valuations come from workers. This crate implements the shared
//! core of those designs on a classical foundation:
//!
//! * [`ast`] — terms, atoms, literals, rules, programs; plus a
//!   pretty-printer whose output re-parses (round-trip tested).
//! * [`parser`] — a hand-written lexer + recursive-descent parser for the
//!   surface syntax below.
//! * [`engine`] — stratified semi-naive bottom-up evaluation with
//!   negation, comparison built-ins, and on-demand crowd fetches with
//!   per-binding caching and a global fetch budget (Deco's resolution
//!   limits).
//! * [`resolver`] — how fetches reach the crowd: [`resolver::CrowdResolver`]
//!   is the interface, [`resolver::TableResolver`] serves tests/known
//!   worlds, [`resolver::OracleResolver`] buys answers from any
//!   [`crowdkit_core::traits::CrowdOracle`] and reconciles them by
//!   plurality.
//!
//! ## Surface syntax
//!
//! ```text
//! % facts and rules
//! parent("alice", "bob").
//! ancestor(X, Y) :- parent(X, Y).
//! ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
//!
//! % a crowd predicate: arity 2, fetched on demand
//! @crowd city_of/2.
//! in_tokyo(R) :- restaurant(R), city_of(R, C), C = "tokyo".
//!
//! % stratified negation and comparisons
//! childless(X) :- person(X), not parent(X, _).
//!
//! % stratified aggregation (count / sum / min / max over distinct values)
//! descendants(X, count<Y>) :- ancestor(X, Y).
//! ```
//!
//! Evaluating the second program asks the crowd for `city_of(r, ?)` once
//! per restaurant (cached thereafter) instead of materializing a city
//! table — exactly the on-demand, pay-per-tuple behaviour the declarative
//! crowdsourcing systems were built around. Experiment E11 measures the
//! fetch savings.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod engine;
pub mod parser;
pub mod resolver;

pub use ast::{Atom, Clause, Const, Literal, Program, Rule, Term};
pub use engine::{Database, Engine, EngineConfig, EvalStats};
pub use parser::parse_program;
pub use resolver::{CrowdResolver, NullResolver, OracleResolver, TableResolver};
