//! Lexer and recursive-descent parser for crowd-Datalog.
//!
//! The grammar (see the crate docs for examples):
//!
//! ```text
//! program    := item*
//! item       := crowd_decl | clause
//! crowd_decl := "@crowd" IDENT "/" INT "."
//! clause     := head ( ":-" body )? "."
//! head       := IDENT "(" headterm ( "," headterm )* ")"
//! headterm   := term | ("count"|"sum"|"min"|"max") "<" VARIABLE ">"
//! body       := literal ( "," literal )*
//! literal    := "not" atom | atom | term cmp term
//! cmp        := "=" | "!=" | "<" | "<=" | ">" | ">="
//! atom       := IDENT "(" term ( "," term )* ")"
//! term       := VARIABLE | "_" | INT | STRING
//! ```
//!
//! Identifiers starting lowercase are predicates; starting uppercase are
//! variables. `%` begins a line comment. Errors carry line/column.

use crowdkit_core::error::{CrowdError, Result};

use crate::ast::{AggFunc, AggSlot, Atom, Clause, CmpOp, Const, Literal, Program, Rule, Term};

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),   // lowercase-initial identifier
    Var(String),     // uppercase-initial identifier
    Int(i64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    ColonDash,
    At,
    Slash,
    Underscore,
    Cmp(CmpOp),
    Not,
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, msg: impl Into<String>) -> CrowdError {
        CrowdError::parse(self.line, self.col, msg)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'%') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn lex(mut self) -> Result<Vec<Spanned>> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else { break };
            let tok = match c {
                b'(' => {
                    self.bump();
                    Tok::LParen
                }
                b')' => {
                    self.bump();
                    Tok::RParen
                }
                b',' => {
                    self.bump();
                    Tok::Comma
                }
                b'.' => {
                    self.bump();
                    Tok::Dot
                }
                b'@' => {
                    self.bump();
                    Tok::At
                }
                b'/' => {
                    self.bump();
                    Tok::Slash
                }
                b'_' => {
                    self.bump();
                    // A bare underscore is the wildcard; `_foo` is invalid.
                    if matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
                        return Err(self.err("identifiers may not start with '_'"));
                    }
                    Tok::Underscore
                }
                b':' => {
                    self.bump();
                    if self.peek() == Some(b'-') {
                        self.bump();
                        Tok::ColonDash
                    } else {
                        return Err(self.err("expected ':-'"));
                    }
                }
                b'=' => {
                    self.bump();
                    Tok::Cmp(CmpOp::Eq)
                }
                b'!' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Cmp(CmpOp::Ne)
                    } else {
                        return Err(self.err("expected '!='"));
                    }
                }
                b'<' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Cmp(CmpOp::Le)
                    } else {
                        Tok::Cmp(CmpOp::Lt)
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Cmp(CmpOp::Ge)
                    } else {
                        Tok::Cmp(CmpOp::Gt)
                    }
                }
                b'"' => {
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            Some(b'"') => break,
                            Some(b'\\') => match self.bump() {
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                Some(b'n') => s.push('\n'),
                                _ => return Err(self.err("invalid escape in string")),
                            },
                            Some(c) => s.push(c as char),
                            None => return Err(self.err("unterminated string literal")),
                        }
                    }
                    Tok::Str(s)
                }
                c if c.is_ascii_digit() || c == b'-' => {
                    let mut s = String::new();
                    if c == b'-' {
                        s.push(self.bump().unwrap() as char); // crowdkit-lint: allow(PANIC001) — peek() returned Some for this byte just above
                        if !matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                            return Err(self.err("expected digits after '-'"));
                        }
                    }
                    while let Some(d) = self.peek() {
                        if d.is_ascii_digit() {
                            s.push(self.bump().unwrap() as char); // crowdkit-lint: allow(PANIC001) — peek() returned Some for this byte just above
                        } else {
                            break;
                        }
                    }
                    let v: i64 = s
                        .parse()
                        .map_err(|_| self.err(format!("integer out of range: {s}")))?;
                    Tok::Int(v)
                }
                c if c.is_ascii_alphabetic() => {
                    let mut s = String::new();
                    while let Some(d) = self.peek() {
                        if d.is_ascii_alphanumeric() || d == b'_' {
                            s.push(self.bump().unwrap() as char); // crowdkit-lint: allow(PANIC001) — peek() returned Some for this byte just above
                        } else {
                            break;
                        }
                    }
                    if s == "not" {
                        Tok::Not
                    } else if s.as_bytes()[0].is_ascii_uppercase() {
                        Tok::Var(s)
                    } else {
                        Tok::Ident(s)
                    }
                }
                other => {
                    return Err(self.err(format!("unexpected character '{}'", other as char)))
                }
            };
            out.push(Spanned { tok, line, col });
        }
        Ok(out)
    }
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn err_at(&self, msg: impl Into<String>) -> CrowdError {
        match self.toks.get(self.pos) {
            Some(s) => CrowdError::parse(s.line, s.col, msg),
            None => {
                let (l, c) = self
                    .toks
                    .last()
                    .map(|s| (s.line, s.col))
                    .unwrap_or((1, 1));
                CrowdError::parse(l, c, format!("{} (at end of input)", msg.into()))
            }
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<()> {
        if self.peek() == Some(tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err_at(format!("expected {what}")))
        }
    }

    fn program(&mut self) -> Result<Program> {
        let mut clauses = Vec::new();
        while self.peek().is_some() {
            if self.peek() == Some(&Tok::At) {
                clauses.push(self.crowd_decl()?);
            } else {
                clauses.push(Clause::Rule(self.clause()?));
            }
        }
        Ok(Program { clauses })
    }

    fn crowd_decl(&mut self) -> Result<Clause> {
        self.expect(&Tok::At, "'@'")?;
        match self.bump() {
            Some(Tok::Ident(kw)) if kw == "crowd" => {}
            _ => return Err(self.err_at("expected 'crowd' after '@'")),
        }
        let predicate = match self.bump() {
            Some(Tok::Ident(name)) => name,
            _ => return Err(self.err_at("expected predicate name in @crowd declaration")),
        };
        self.expect(&Tok::Slash, "'/'")?;
        let arity = match self.bump() {
            Some(Tok::Int(n)) if n > 0 => n as usize,
            _ => return Err(self.err_at("expected positive arity after '/'")),
        };
        self.expect(&Tok::Dot, "'.'")?;
        Ok(Clause::CrowdDecl { predicate, arity })
    }

    fn clause(&mut self) -> Result<Rule> {
        let (head, aggregates) = self.head_atom()?;
        let mut body = Vec::new();
        if self.peek() == Some(&Tok::ColonDash) {
            self.pos += 1;
            loop {
                body.push(self.literal()?);
                if self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::Dot, "'.' at end of clause")?;
        if !aggregates.is_empty() && body.is_empty() {
            return Err(self.err_at("aggregate heads require a rule body"));
        }
        Ok(Rule {
            head,
            body,
            aggregates,
        })
    }

    /// Parses a head atom, which may contain aggregate slots like
    /// `count<Y>`; aggregated positions become wildcard placeholders.
    fn head_atom(&mut self) -> Result<(Atom, Vec<AggSlot>)> {
        let name = match self.bump() {
            Some(Tok::Ident(name)) => name,
            _ => return Err(self.err_at("expected predicate name")),
        };
        self.expect(&Tok::LParen, "'('")?;
        let mut args = Vec::new();
        let mut aggregates = Vec::new();
        loop {
            // Aggregate slot: IDENT '<' VAR '>' with a known function name.
            let agg_func = match (self.peek(), self.toks.get(self.pos + 1).map(|s| &s.tok)) {
                (Some(Tok::Ident(name)), Some(Tok::Cmp(CmpOp::Lt))) => Some(name.clone()),
                _ => None,
            };
            if let Some(func) = agg_func {
                let func = match func.as_str() {
                    "count" => Some(AggFunc::Count),
                    "sum" => Some(AggFunc::Sum),
                    "min" => Some(AggFunc::Min),
                    "max" => Some(AggFunc::Max),
                    _ => None,
                };
                if let Some(func) = func {
                    self.pos += 2; // IDENT '<'
                    let var = match self.bump() {
                        Some(Tok::Var(v)) => v,
                        _ => return Err(self.err_at("expected a variable inside the aggregate")),
                    };
                    match self.bump() {
                        Some(Tok::Cmp(CmpOp::Gt)) => {}
                        _ => return Err(self.err_at("expected '>' closing the aggregate")),
                    }
                    aggregates.push(AggSlot {
                        pos: args.len(),
                        func,
                        var,
                    });
                    args.push(Term::Wildcard);
                    match self.bump() {
                        Some(Tok::Comma) => continue,
                        Some(Tok::RParen) => break,
                        _ => return Err(self.err_at("expected ',' or ')' in argument list")),
                    }
                }
            }
            args.push(self.term()?);
            match self.bump() {
                Some(Tok::Comma) => continue,
                Some(Tok::RParen) => break,
                _ => return Err(self.err_at("expected ',' or ')' in argument list")),
            }
        }
        Ok((Atom::new(name, args), aggregates))
    }

    fn literal(&mut self) -> Result<Literal> {
        if self.peek() == Some(&Tok::Not) {
            self.pos += 1;
            return Ok(Literal::Neg(self.atom()?));
        }
        // Lookahead: `IDENT (` is an atom; otherwise parse a comparison.
        if matches!(self.peek(), Some(Tok::Ident(_)))
            && matches!(self.toks.get(self.pos + 1).map(|s| &s.tok), Some(Tok::LParen))
        {
            return Ok(Literal::Pos(self.atom()?));
        }
        let left = self.term()?;
        let op = match self.bump() {
            Some(Tok::Cmp(op)) => op,
            _ => return Err(self.err_at("expected comparison operator")),
        };
        let right = self.term()?;
        Ok(Literal::Cmp(left, op, right))
    }

    fn atom(&mut self) -> Result<Atom> {
        let name = match self.bump() {
            Some(Tok::Ident(name)) => name,
            _ => return Err(self.err_at("expected predicate name")),
        };
        self.expect(&Tok::LParen, "'('")?;
        let mut args = Vec::new();
        loop {
            args.push(self.term()?);
            match self.bump() {
                Some(Tok::Comma) => continue,
                Some(Tok::RParen) => break,
                _ => return Err(self.err_at("expected ',' or ')' in argument list")),
            }
        }
        Ok(Atom::new(name, args))
    }

    fn term(&mut self) -> Result<Term> {
        match self.bump() {
            Some(Tok::Var(v)) => Ok(Term::Var(v)),
            Some(Tok::Int(i)) => Ok(Term::Const(Const::Int(i))),
            Some(Tok::Str(s)) => Ok(Term::Const(Const::Str(s))),
            Some(Tok::Underscore) => Ok(Term::Wildcard),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err_at("expected a term (variable, constant, or '_')"))
            }
        }
    }
}

/// Parses a crowd-Datalog program.
pub fn parse_program(src: &str) -> Result<Program> {
    let toks = Lexer::new(src).lex()?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_facts_rules_and_decls() {
        let src = r#"
            % genealogy
            parent("alice", "bob").
            parent("bob", "carol").
            ancestor(X, Y) :- parent(X, Y).
            ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
            @crowd city_of/2.
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.rules().count(), 4);
        assert_eq!(p.crowd_predicates(), vec![("city_of", 2)]);
        let first = p.rules().next().unwrap();
        assert!(first.is_fact());
        assert_eq!(first.head.predicate, "parent");
    }

    #[test]
    fn parses_negation_comparisons_and_wildcards() {
        let src = r#"
            adult(X) :- person(X, Age), Age >= 18.
            childless(X) :- person(X, _), not parent(X, _).
            different(X, Y) :- p(X), p(Y), X != Y.
        "#;
        let p = parse_program(src).unwrap();
        let rules: Vec<&Rule> = p.rules().collect();
        assert!(matches!(rules[0].body[1], Literal::Cmp(_, CmpOp::Ge, _)));
        assert!(matches!(rules[1].body[1], Literal::Neg(_)));
        assert!(matches!(
            rules[1].body[0].clone(),
            Literal::Pos(a) if a.args[1] == Term::Wildcard
        ));
    }

    #[test]
    fn parses_integers_including_negative() {
        let p = parse_program(r#"score("x", -5). score("y", 10)."#).unwrap();
        let rules: Vec<&Rule> = p.rules().collect();
        assert_eq!(rules[0].head.args[1], Term::int(-5));
        assert_eq!(rules[1].head.args[1], Term::int(10));
    }

    #[test]
    fn string_escapes_round_trip() {
        let p = parse_program(r#"quote("say \"hi\"\n")."#).unwrap();
        let r = p.rules().next().unwrap();
        assert_eq!(r.head.args[0], Term::str("say \"hi\"\n"));
    }

    #[test]
    fn pretty_print_reparses_identically() {
        let src = r#"
            parent("alice", "bob").
            ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z), X != Z.
            @crowd rating/2.
            good(R) :- restaurant(R), rating(R, S), S >= 4.
            lonely(X) :- node(X), not edge(X, _).
        "#;
        let p1 = parse_program(src).unwrap();
        let printed = p1.to_string();
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p1, p2, "pretty-printed program must reparse to itself");
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse_program("p(X) :- q(X)").unwrap_err();
        match err {
            CrowdError::Parse { line, message, .. } => {
                assert_eq!(line, 1);
                assert!(message.contains("'.'"), "message: {message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_tokens() {
        assert!(parse_program("p(#).").is_err());
        assert!(parse_program("p(_x).").is_err());
        assert!(parse_program("@crowd p/0.").is_err());
        assert!(parse_program(r#"p("unterminated)."#).is_err());
        assert!(parse_program("p(X) : q(X).").is_err());
    }

    #[test]
    fn comments_are_ignored() {
        let p = parse_program("% nothing here\np(\"a\"). % trailing\n").unwrap();
        assert_eq!(p.rules().count(), 1);
    }
}
