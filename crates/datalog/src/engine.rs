//! Stratified bottom-up evaluation with on-demand crowd fetches.
//!
//! Evaluation follows the textbook pipeline — safety validation,
//! stratification over negation, per-stratum semi-naive fixpoint — with
//! one crowd-specific twist: when a rule's body reaches a *crowd
//! predicate* atom whose arguments are bound except for exactly one
//! position, and the stored relation has no matching tuple, the engine
//! issues a *fetch* through the [`CrowdResolver`]. Fetches are cached per
//! `(predicate, bound-values)` key and capped by
//! [`EngineConfig::max_fetches`] — Deco's resolution-limit discipline, so
//! a recursive program cannot spend unboundedly.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use crowdkit_core::error::{CrowdError, Result};

use crate::ast::{AggFunc, Clause, Const, Literal, Program, Rule, Term};
use crate::resolver::CrowdResolver;

/// The evaluated instance: one tuple set per predicate.
#[derive(Debug, Clone, Default)]
pub struct Database {
    relations: HashMap<String, HashSet<Vec<Const>>>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a tuple; returns true if it was new.
    pub fn insert(&mut self, predicate: &str, tuple: Vec<Const>) -> bool {
        self.relations
            .entry(predicate.to_owned())
            .or_default()
            .insert(tuple)
    }

    /// Whether a ground tuple is present.
    pub fn contains(&self, predicate: &str, tuple: &[Const]) -> bool {
        self.relations
            .get(predicate)
            .map(|r| r.contains(tuple))
            .unwrap_or(false)
    }

    /// All tuples of a relation, sorted for deterministic output.
    pub fn relation(&self, predicate: &str) -> Vec<Vec<Const>> {
        let mut rows: Vec<Vec<Const>> = self
            .relations
            .get(predicate)
            .map(|r| r.iter().cloned().collect())
            .unwrap_or_default();
        rows.sort();
        rows
    }

    /// Number of tuples in a relation.
    pub fn len(&self, predicate: &str) -> usize {
        self.relations.get(predicate).map(HashSet::len).unwrap_or(0)
    }

    /// True when the database holds no tuples at all.
    pub fn is_empty(&self) -> bool {
        self.relations.values().all(HashSet::is_empty)
    }

    fn rows(&self, predicate: &str) -> Option<&HashSet<Vec<Const>>> {
        self.relations.get(predicate)
    }
}

/// Engine limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Maximum crowd fetches per run (Deco resolution limit).
    pub max_fetches: usize,
    /// Cap on fixpoint iterations per stratum (guards buggy programs).
    pub max_iterations: usize,
    /// Use semi-naive evaluation (delta-restricted rule re-evaluation)
    /// instead of re-running every rule against the full database each
    /// round. Semantics are identical; semi-naive avoids re-deriving the
    /// whole relation per round and is the production setting. Naive mode
    /// exists for the evaluation-strategy ablation bench.
    pub semi_naive: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_fetches: 10_000,
            max_iterations: 10_000,
            semi_naive: true,
        }
    }
}

/// Statistics from one evaluation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Crowd fetches issued (cache misses that reached the resolver).
    pub fetches: usize,
    /// Fetches suppressed by the per-binding cache.
    pub fetch_cache_hits: usize,
    /// Tuples added to crowd relations by fetches.
    pub crowd_tuples: usize,
    /// Total fixpoint iterations across strata.
    pub iterations: usize,
    /// Crowd answers purchased by the resolver.
    pub questions_asked: u64,
}

/// The crowd-Datalog evaluator.
#[derive(Debug, Clone)]
pub struct Engine {
    program: Program,
    crowd_preds: BTreeMap<String, usize>,
    config: EngineConfig,
}

impl Engine {
    /// Validates `program` and builds an engine.
    ///
    /// Rejects: unsafe rules (head/negation/comparison variables not bound
    /// by a positive body atom), crowd predicates appearing as rule heads,
    /// arity clashes with `@crowd` declarations, and unstratifiable
    /// negation.
    pub fn new(program: Program) -> Result<Self> {
        let mut crowd_preds = BTreeMap::new();
        for c in &program.clauses {
            if let Clause::CrowdDecl { predicate, arity } = c {
                if crowd_preds.insert(predicate.clone(), *arity).is_some() {
                    return Err(CrowdError::Semantic(format!(
                        "duplicate @crowd declaration for '{predicate}'"
                    )));
                }
            }
        }

        for rule in program.rules() {
            validate_rule(rule, &crowd_preds)?;
        }
        stratify(&program)?; // fail fast on unstratifiable programs

        Ok(Self {
            program,
            crowd_preds,
            config: EngineConfig::default(),
        })
    }

    /// Overrides the engine limits (builder style).
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// The declared crowd predicates.
    pub fn crowd_predicates(&self) -> impl Iterator<Item = (&str, usize)> {
        self.crowd_preds.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Evaluates the program to fixpoint, pulling crowd tuples through
    /// `resolver` as needed.
    pub fn run<R: CrowdResolver + ?Sized>(
        &self,
        resolver: &mut R,
    ) -> Result<(Database, EvalStats)> {
        let mut db = Database::new();
        let mut stats = EvalStats::default();
        let mut fetched: HashSet<(String, Vec<(usize, Const)>)> = HashSet::new();

        // Facts first.
        for rule in self.program.rules() {
            if rule.body.is_empty() {
                let tuple: Vec<Const> = rule
                    .head
                    .args
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => Ok(c.clone()),
                        _ => Err(CrowdError::Semantic(format!(
                            "fact {} has non-ground head",
                            rule.head
                        ))),
                    })
                    .collect::<Result<_>>()?;
                db.insert(&rule.head.predicate, tuple);
            }
        }

        let strata = stratify(&self.program)?;
        let mut by_stratum: BTreeMap<usize, Vec<&Rule>> = BTreeMap::new();
        for rule in self.program.rules() {
            if rule.body.is_empty() {
                continue;
            }
            let s = strata.get(&rule.head.predicate).copied().unwrap_or(0);
            by_stratum.entry(s).or_default().push(rule);
        }

        for rules in by_stratum.values() {
            // Aggregate rules run first: stratification guarantees their
            // inputs are complete, so one pass suffices (after fetching).
            let (agg_rules, normal): (Vec<&Rule>, Vec<&Rule>) =
                rules.iter().partition(|r| !r.aggregates.is_empty());
            for rule in agg_rules {
                let fetched_tuples =
                    self.fetch_pass(rule, &db, resolver, &mut fetched, &mut stats)?;
                for (pred, tuple) in fetched_tuples {
                    if db.insert(&pred, tuple) {
                        stats.crowd_tuples += 1;
                    }
                }
                for tuple in self.eval_aggregate(rule, &db)? {
                    db.insert(&rule.head.predicate, tuple);
                }
            }
            if self.config.semi_naive {
                self.eval_stratum_semi_naive(&normal, &mut db, resolver, &mut fetched, &mut stats)?;
            } else {
                self.eval_stratum_naive(&normal, &mut db, resolver, &mut fetched, &mut stats)?;
            }
        }

        stats.questions_asked = resolver.questions_asked();
        Ok((db, stats))
    }

    /// Naive fixpoint: every round re-evaluates every rule against the
    /// full database.
    fn eval_stratum_naive<R: CrowdResolver + ?Sized>(
        &self,
        rules: &[&Rule],
        db: &mut Database,
        resolver: &mut R,
        fetched: &mut HashSet<(String, Vec<(usize, Const)>)>,
        stats: &mut EvalStats,
    ) -> Result<()> {
        loop {
            stats.iterations += 1;
            if stats.iterations > self.config.max_iterations {
                return Err(CrowdError::Execution(
                    "fixpoint iteration limit exceeded".into(),
                ));
            }
            let mut changed = false;
            for rule in rules {
                // Fetch pass first so this evaluation sees its own crowd
                // tuples.
                let fetched_tuples = self.fetch_pass(rule, db, resolver, fetched, stats)?;
                for (pred, tuple) in fetched_tuples {
                    if db.insert(&pred, tuple) {
                        stats.crowd_tuples += 1;
                        changed = true;
                    }
                }
                let derived = self.eval_rule(rule, db, None)?;
                for tuple in derived {
                    if db.insert(&rule.head.predicate, tuple) {
                        changed = true;
                    }
                }
            }
            if !changed {
                return Ok(());
            }
        }
    }

    /// Semi-naive fixpoint: after the first full round, a rule is
    /// re-evaluated only with one positive body atom restricted to the
    /// previous round's newly derived tuples (its *delta*), so unchanged
    /// portions of the database are never re-joined.
    fn eval_stratum_semi_naive<R: CrowdResolver + ?Sized>(
        &self,
        rules: &[&Rule],
        db: &mut Database,
        resolver: &mut R,
        fetched: &mut HashSet<(String, Vec<(usize, Const)>)>,
        stats: &mut EvalStats,
    ) -> Result<()> {
        let mut delta: HashMap<String, HashSet<Vec<Const>>> = HashMap::new();
        let record_delta =
            |delta: &mut HashMap<String, HashSet<Vec<Const>>>, pred: &str, tuple: Vec<Const>| {
                delta.entry(pred.to_owned()).or_default().insert(tuple);
            };

        // Round 0: full evaluation seeds the deltas.
        stats.iterations += 1;
        for rule in rules {
            let fetched_tuples = self.fetch_pass(rule, db, resolver, fetched, stats)?;
            for (pred, tuple) in fetched_tuples {
                if db.insert(&pred, tuple.clone()) {
                    stats.crowd_tuples += 1;
                    record_delta(&mut delta, &pred, tuple);
                }
            }
            for tuple in self.eval_rule(rule, db, None)? {
                if db.insert(&rule.head.predicate, tuple.clone()) {
                    record_delta(&mut delta, &rule.head.predicate, tuple);
                }
            }
        }

        while !delta.is_empty() {
            stats.iterations += 1;
            if stats.iterations > self.config.max_iterations {
                return Err(CrowdError::Execution(
                    "fixpoint iteration limit exceeded".into(),
                ));
            }
            let mut next: HashMap<String, HashSet<Vec<Const>>> = HashMap::new();
            for rule in rules {
                // Crowd fetches can be enabled by new bindings from the
                // delta; the fetch pass is cheap thanks to its cache.
                let fetched_tuples = self.fetch_pass(rule, db, resolver, fetched, stats)?;
                for (pred, tuple) in fetched_tuples {
                    if db.insert(&pred, tuple.clone()) {
                        stats.crowd_tuples += 1;
                        record_delta(&mut next, &pred, tuple);
                    }
                }
                // One delta-restricted evaluation per positive atom whose
                // predicate changed last round.
                for (i, lit) in rule.body.iter().enumerate() {
                    let Literal::Pos(atom) = lit else { continue };
                    let Some(d) = delta.get(&atom.predicate) else {
                        continue;
                    };
                    if d.is_empty() {
                        continue;
                    }
                    for tuple in self.eval_rule(rule, db, Some((i, d)))? {
                        if db.insert(&rule.head.predicate, tuple.clone()) {
                            record_delta(&mut next, &rule.head.predicate, tuple);
                        }
                    }
                }
            }
            delta = next;
        }
        Ok(())
    }

    /// Evaluates one rule against the database, returning derived head
    /// tuples. When `restrict` is given, the positive atom at that body
    /// index matches only the supplied delta tuples.
    fn eval_rule(
        &self,
        rule: &Rule,
        db: &Database,
        restrict: Option<(usize, &HashSet<Vec<Const>>)>,
    ) -> Result<Vec<Vec<Const>>> {
        let mut results = Vec::new();
        let mut binding: HashMap<String, Const> = HashMap::new();
        self.join(rule, 0, db, restrict, &mut binding, &mut results)?;
        Ok(results)
    }

    /// Evaluates one aggregate rule: enumerates all body bindings, groups
    /// them by the head's non-aggregate arguments, and computes each
    /// aggregate over the *set* of distinct values of its variable within
    /// the group (Datalog set semantics).
    fn eval_aggregate(&self, rule: &Rule, db: &Database) -> Result<Vec<Vec<Const>>> {
        let mut bindings = Vec::new();
        let mut b = HashMap::new();
        let body_only = Rule {
            head: rule.head.clone(),
            body: rule.body.clone(),
            aggregates: Vec::new(),
        };
        self.enumerate_bindings(&body_only, 0, db, &mut b, &mut bindings)?;

        // Group key: resolved non-aggregate head arguments.
        let mut groups: BTreeMap<Vec<Const>, Vec<BTreeSet<Const>>> = BTreeMap::new();
        for binding in &bindings {
            let mut key = Vec::new();
            for (i, t) in rule.head.args.iter().enumerate() {
                if rule.aggregates.iter().any(|s| s.pos == i) {
                    continue;
                }
                let v = match t {
                    Term::Const(c) => c.clone(),
                    Term::Var(v) => binding
                        .get(v)
                        .cloned()
                        .ok_or_else(|| {
                            CrowdError::Semantic(format!("unbound head variable {v} in {rule}"))
                        })?,
                    Term::Wildcard => unreachable!("validated: no stray head wildcards"),
                };
                key.push(v);
            }
            let sets = groups
                .entry(key)
                .or_insert_with(|| vec![BTreeSet::new(); rule.aggregates.len()]);
            for (slot_idx, slot) in rule.aggregates.iter().enumerate() {
                let v = binding.get(&slot.var).cloned().ok_or_else(|| {
                    CrowdError::Semantic(format!(
                        "unbound aggregate variable {} in {rule}",
                        slot.var
                    ))
                })?;
                sets[slot_idx].insert(v);
            }
        }

        let mut out = Vec::with_capacity(groups.len());
        for (key, sets) in groups {
            let mut tuple = Vec::with_capacity(rule.head.args.len());
            let mut key_iter = key.into_iter();
            for i in 0..rule.head.args.len() {
                match rule.aggregates.iter().position(|s| s.pos == i) {
                    Some(slot_idx) => {
                        tuple.push(apply_aggregate(
                            rule.aggregates[slot_idx].func,
                            &sets[slot_idx],
                            rule,
                        )?);
                    }
                    None => tuple.push(key_iter.next().expect("key arity matches")), // crowdkit-lint: allow(PANIC001) — key tuple was built with one entry per non-aggregate position
                }
            }
            out.push(tuple);
        }
        Ok(out)
    }

    /// Issues fetches for crowd atoms in `rule`: for each positive crowd
    /// atom, enumerates the bindings of the rule's prefix literals under
    /// the current database, and for every binding with exactly one free
    /// position in the crowd atom (and no stored match) asks the resolver.
    /// Returns the fetched tuples for the caller to insert.
    fn fetch_pass<R: CrowdResolver + ?Sized>(
        &self,
        rule: &Rule,
        db: &Database,
        resolver: &mut R,
        fetched: &mut HashSet<(String, Vec<(usize, Const)>)>,
        stats: &mut EvalStats,
    ) -> Result<Vec<(String, Vec<Const>)>> {
        let mut pending: Vec<(String, Vec<Const>)> = Vec::new();
        // Identify crowd atoms and evaluate the rule prefix before each to
        // enumerate candidate bindings.
        for (idx, lit) in rule.body.iter().enumerate() {
            let Literal::Pos(atom) = lit else { continue };
            let Some(&arity) = self.crowd_preds.get(&atom.predicate) else {
                continue;
            };
            if atom.arity() != arity {
                return Err(CrowdError::Semantic(format!(
                    "crowd predicate '{}' used with arity {} but declared /{arity}",
                    atom.predicate,
                    atom.arity()
                )));
            }

            // Enumerate bindings of the prefix literals [0, idx).
            let prefix = Rule {
                head: rule.head.clone(),
                body: rule.body[..idx].to_vec(),
                aggregates: Vec::new(),
            };
            let mut bindings = Vec::new();
            let mut b = HashMap::new();
            self.enumerate_bindings(&prefix, 0, db, &mut b, &mut bindings)?;

            for binding in &bindings {
                // Determine bound/free positions of the crowd atom.
                let mut bound: Vec<(usize, Const)> = Vec::new();
                let mut free: Vec<usize> = Vec::new();
                for (pos, term) in atom.args.iter().enumerate() {
                    match term {
                        Term::Const(c) => bound.push((pos, c.clone())),
                        Term::Var(v) => match binding.get(v) {
                            Some(c) => bound.push((pos, c.clone())),
                            None => free.push(pos),
                        },
                        Term::Wildcard => free.push(pos),
                    }
                }
                if free.len() != 1 {
                    continue; // fetch only single-free-position patterns
                }
                let free_pos = free[0];
                let key = (atom.predicate.clone(), bound.clone());
                if fetched.contains(&key) {
                    stats.fetch_cache_hits += 1;
                    continue;
                }
                // If matching tuples already exist, no fetch is needed.
                let have_match = db
                    .rows(&atom.predicate)
                    .map(|rows| {
                        rows.iter()
                            .any(|row| bound.iter().all(|(i, v)| &row[*i] == v))
                    })
                    .unwrap_or(false);
                if have_match {
                    fetched.insert(key);
                    continue;
                }
                if stats.fetches >= self.config.max_fetches {
                    continue; // budget spent: evaluate with what we have
                }
                stats.fetches += 1;
                fetched.insert(key);
                let values = resolver.resolve(&atom.predicate, &bound, free_pos, arity)?;
                for v in values {
                    let mut tuple = vec![Const::Int(0); arity];
                    for (i, c) in &bound {
                        tuple[*i] = c.clone();
                    }
                    tuple[free_pos] = v;
                    pending.push((atom.predicate.clone(), tuple));
                }
            }
        }
        Ok(pending)
    }

    /// Left-to-right join over `rule.body[lit_idx..]`, extending `binding`
    /// and pushing completed head tuples into `results`. A positive atom
    /// whose index matches `restrict` iterates only the delta tuples.
    fn join(
        &self,
        rule: &Rule,
        lit_idx: usize,
        db: &Database,
        restrict: Option<(usize, &HashSet<Vec<Const>>)>,
        binding: &mut HashMap<String, Const>,
        results: &mut Vec<Vec<Const>>,
    ) -> Result<()> {
        if lit_idx == rule.body.len() {
            let tuple: Vec<Const> = rule
                .head
                .args
                .iter()
                .map(|t| match t {
                    Term::Const(c) => Ok(c.clone()),
                    Term::Var(v) => binding.get(v).cloned().ok_or_else(|| {
                        CrowdError::Semantic(format!(
                            "unbound head variable {v} in rule {rule}"
                        ))
                    }),
                    Term::Wildcard => Err(CrowdError::Semantic(format!(
                        "wildcard in rule head: {rule}"
                    ))),
                })
                .collect::<Result<_>>()?;
            results.push(tuple);
            return Ok(());
        }
        match &rule.body[lit_idx] {
            Literal::Pos(atom) => {
                let rows: &HashSet<Vec<Const>> = match restrict {
                    Some((i, delta)) if i == lit_idx => delta,
                    _ => match db.rows(&atom.predicate) {
                        Some(rows) => rows,
                        None => return Ok(()),
                    },
                };
                for row in rows {
                    if row.len() != atom.arity() {
                        continue;
                    }
                    let mut added: Vec<String> = Vec::new();
                    let mut ok = true;
                    for (term, value) in atom.args.iter().zip(row) {
                        match term {
                            Term::Const(c) => {
                                if c != value {
                                    ok = false;
                                    break;
                                }
                            }
                            Term::Wildcard => {}
                            Term::Var(v) => match binding.get(v) {
                                Some(existing) => {
                                    if existing != value {
                                        ok = false;
                                        break;
                                    }
                                }
                                None => {
                                    binding.insert(v.clone(), value.clone());
                                    added.push(v.clone());
                                }
                            },
                        }
                    }
                    if ok {
                        self.join(rule, lit_idx + 1, db, restrict, binding, results)?;
                    }
                    for v in added {
                        binding.remove(&v);
                    }
                }
                Ok(())
            }
            Literal::Neg(atom) => {
                // All non-wildcard terms must be ground here (validated).
                let exists = db
                    .rows(&atom.predicate)
                    .map(|rows| {
                        rows.iter().any(|row| {
                            row.len() == atom.arity()
                                && atom.args.iter().zip(row).all(|(t, v)| match t {
                                    Term::Const(c) => c == v,
                                    Term::Var(name) => binding.get(name) == Some(v),
                                    Term::Wildcard => true,
                                })
                        })
                    })
                    .unwrap_or(false);
                if !exists {
                    self.join(rule, lit_idx + 1, db, restrict, binding, results)?;
                }
                Ok(())
            }
            Literal::Cmp(l, op, r) => {
                let lv = resolve_term(l, binding)?;
                let rv = resolve_term(r, binding)?;
                if op.eval(&lv, &rv) {
                    self.join(rule, lit_idx + 1, db, restrict, binding, results)?;
                }
                Ok(())
            }
        }
    }

    /// Enumerates complete bindings of a (prefix) rule body without
    /// producing head tuples.
    fn enumerate_bindings(
        &self,
        prefix: &Rule,
        lit_idx: usize,
        db: &Database,
        binding: &mut HashMap<String, Const>,
        out: &mut Vec<HashMap<String, Const>>,
    ) -> Result<()> {
        if lit_idx == prefix.body.len() {
            out.push(binding.clone());
            return Ok(());
        }
        match &prefix.body[lit_idx] {
            Literal::Pos(atom) => {
                let Some(rows) = db.rows(&atom.predicate) else {
                    return Ok(());
                };
                for row in rows {
                    if row.len() != atom.arity() {
                        continue;
                    }
                    let mut added: Vec<String> = Vec::new();
                    let mut ok = true;
                    for (term, value) in atom.args.iter().zip(row) {
                        match term {
                            Term::Const(c) => {
                                if c != value {
                                    ok = false;
                                    break;
                                }
                            }
                            Term::Wildcard => {}
                            Term::Var(v) => match binding.get(v) {
                                Some(existing) => {
                                    if existing != value {
                                        ok = false;
                                        break;
                                    }
                                }
                                None => {
                                    binding.insert(v.clone(), value.clone());
                                    added.push(v.clone());
                                }
                            },
                        }
                    }
                    if ok {
                        self.enumerate_bindings(prefix, lit_idx + 1, db, binding, out)?;
                    }
                    for v in added {
                        binding.remove(&v);
                    }
                }
                Ok(())
            }
            Literal::Neg(atom) => {
                let exists = db
                    .rows(&atom.predicate)
                    .map(|rows| {
                        rows.iter().any(|row| {
                            row.len() == atom.arity()
                                && atom.args.iter().zip(row).all(|(t, v)| match t {
                                    Term::Const(c) => c == v,
                                    Term::Var(name) => binding.get(name) == Some(v),
                                    Term::Wildcard => true,
                                })
                        })
                    })
                    .unwrap_or(false);
                if !exists {
                    self.enumerate_bindings(prefix, lit_idx + 1, db, binding, out)?;
                }
                Ok(())
            }
            Literal::Cmp(l, op, r) => {
                let lv = resolve_term(l, binding)?;
                let rv = resolve_term(r, binding)?;
                if op.eval(&lv, &rv) {
                    self.enumerate_bindings(prefix, lit_idx + 1, db, binding, out)?;
                }
                Ok(())
            }
        }
    }
}

/// Computes one aggregate over a non-empty set of distinct values.
fn apply_aggregate(func: AggFunc, values: &BTreeSet<Const>, rule: &Rule) -> Result<Const> {
    debug_assert!(!values.is_empty(), "groups exist only for matched bindings");
    match func {
        AggFunc::Count => Ok(Const::Int(values.len() as i64)),
        AggFunc::Sum => {
            let mut total = 0i64;
            for v in values {
                match v {
                    Const::Int(i) => total += i,
                    Const::Str(s) => {
                        return Err(CrowdError::Semantic(format!(
                            "sum over non-integer value \"{s}\" in {rule}"
                        )))
                    }
                }
            }
            Ok(Const::Int(total))
        }
        AggFunc::Min => Ok(values.iter().min().expect("non-empty").clone()), // crowdkit-lint: allow(PANIC001) — aggregate groups exist only for matched (non-empty) bindings
        AggFunc::Max => Ok(values.iter().max().expect("non-empty").clone()), // crowdkit-lint: allow(PANIC001) — aggregate groups exist only for matched (non-empty) bindings
    }
}

fn resolve_term(t: &Term, binding: &HashMap<String, Const>) -> Result<Const> {
    match t {
        Term::Const(c) => Ok(c.clone()),
        Term::Var(v) => binding
            .get(v)
            .cloned()
            .ok_or_else(|| CrowdError::Semantic(format!("unbound variable {v} in comparison"))),
        Term::Wildcard => Err(CrowdError::Semantic(
            "wildcard not allowed in comparison".into(),
        )),
    }
}

/// Safety validation of one rule.
fn validate_rule(rule: &Rule, crowd_preds: &BTreeMap<String, usize>) -> Result<()> {
    if rule.body.is_empty() {
        if !rule.head.args.iter().all(|t| matches!(t, Term::Const(_))) {
            return Err(CrowdError::Semantic(format!(
                "fact {} must be ground",
                rule.head
            )));
        }
        return Ok(());
    }
    if crowd_preds.contains_key(&rule.head.predicate) {
        return Err(CrowdError::Semantic(format!(
            "crowd predicate '{}' may not be derived by rules",
            rule.head.predicate
        )));
    }

    // Variables bound by positive atoms.
    let mut bound: BTreeSet<&str> = BTreeSet::new();
    for lit in &rule.body {
        if let Literal::Pos(a) = lit {
            for v in a.variables() {
                bound.insert(v);
            }
        }
    }
    for v in rule.head.variables() {
        if !bound.contains(v) {
            return Err(CrowdError::Semantic(format!(
                "unsafe rule: head variable {v} not bound by a positive body atom in {rule}"
            )));
        }
    }
    for slot in &rule.aggregates {
        if !bound.contains(slot.var.as_str()) {
            return Err(CrowdError::Semantic(format!(
                "unsafe aggregate: variable {} not bound by a positive body atom in {rule}",
                slot.var
            )));
        }
        if rule.head.variables().contains(&slot.var.as_str()) {
            return Err(CrowdError::Semantic(format!(
                "aggregate variable {} may not also be a group-by variable in {rule}",
                slot.var
            )));
        }
    }
    if rule.aggregates.is_empty()
        && rule.head.args.iter().any(|t| matches!(t, Term::Wildcard))
    {
        return Err(CrowdError::Semantic(format!(
            "wildcard in rule head: {rule}"
        )));
    }
    for lit in &rule.body {
        match lit {
            Literal::Neg(a) => {
                for v in a.variables() {
                    if !bound.contains(v) {
                        return Err(CrowdError::Semantic(format!(
                            "unsafe negation: variable {v} not bound by a positive atom in {rule}"
                        )));
                    }
                }
            }
            Literal::Cmp(l, _, r) => {
                for t in [l, r] {
                    if let Term::Var(v) = t {
                        if !bound.contains(v.as_str()) {
                            return Err(CrowdError::Semantic(format!(
                                "unsafe comparison: variable {v} not bound by a positive atom in {rule}"
                            )));
                        }
                    }
                    if matches!(t, Term::Wildcard) {
                        return Err(CrowdError::Semantic(format!(
                            "wildcard not allowed in comparison in {rule}"
                        )));
                    }
                }
            }
            Literal::Pos(_) => {}
        }
    }
    Ok(())
}

/// Computes the stratum of each IDB predicate; errors if negation occurs
/// through a cycle.
fn stratify(program: &Program) -> Result<HashMap<String, usize>> {
    let mut preds: BTreeSet<&str> = BTreeSet::new();
    for rule in program.rules() {
        preds.insert(&rule.head.predicate);
        for lit in &rule.body {
            match lit {
                Literal::Pos(a) | Literal::Neg(a) => {
                    preds.insert(&a.predicate);
                }
                Literal::Cmp(..) => {}
            }
        }
    }
    let mut stratum: HashMap<String, usize> =
        preds.iter().map(|p| ((*p).to_owned(), 0)).collect();
    let n = preds.len().max(1);

    for round in 0..=(n * n) {
        let mut changed = false;
        for rule in program.rules() {
            let head_s = stratum[&rule.head.predicate];
            let mut need = head_s;
            // Aggregation, like negation, must see its inputs complete:
            // every body predicate of an aggregate rule sits strictly below.
            let agg_bump = usize::from(!rule.aggregates.is_empty());
            for lit in &rule.body {
                match lit {
                    Literal::Pos(a) => need = need.max(stratum[&a.predicate] + agg_bump),
                    Literal::Neg(a) => need = need.max(stratum[&a.predicate] + 1),
                    Literal::Cmp(..) => {}
                }
            }
            if need > head_s {
                stratum.insert(rule.head.predicate.clone(), need);
                changed = true;
            }
        }
        if !changed {
            return Ok(stratum);
        }
        if round == n * n {
            break;
        }
    }
    Err(CrowdError::Semantic(
        "program is not stratifiable: negation through recursion".into(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::resolver::{NullResolver, TableResolver};

    fn run(src: &str) -> Database {
        let program = parse_program(src).unwrap();
        let engine = Engine::new(program).unwrap();
        let (db, _) = engine.run(&mut NullResolver).unwrap();
        db
    }

    fn s(x: &str) -> Const {
        Const::Str(x.into())
    }

    #[test]
    fn transitive_closure() {
        let db = run(r#"
            edge("a", "b"). edge("b", "c"). edge("c", "d").
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- edge(X, Y), path(Y, Z).
        "#);
        assert_eq!(db.len("path"), 6);
        assert!(db.contains("path", &[s("a"), s("d")]));
        assert!(!db.contains("path", &[s("d"), s("a")]));
    }

    #[test]
    fn stratified_negation() {
        let db = run(r#"
            node("a"). node("b"). node("c").
            edge("a", "b").
            has_out(X) :- edge(X, _).
            sink(X) :- node(X), not has_out(X).
        "#);
        assert_eq!(db.relation("sink"), vec![vec![s("b")], vec![s("c")]]);
    }

    #[test]
    fn comparisons_filter() {
        let db = run(r#"
            score("x", 10). score("y", 3). score("z", 10).
            high(N) :- score(N, S), S >= 10.
            pairs(A, B) :- score(A, S), score(B, S), A < B.
        "#);
        assert_eq!(db.relation("high"), vec![vec![s("x")], vec![s("z")]]);
        assert_eq!(db.relation("pairs"), vec![vec![s("x"), s("z")]]);
    }

    #[test]
    fn unstratifiable_program_rejected() {
        let program = parse_program(r#"
            p(X) :- q(X), not r(X).
            r(X) :- q(X), not p(X).
            q("a").
        "#).unwrap();
        assert!(matches!(Engine::new(program), Err(CrowdError::Semantic(_))));
    }

    #[test]
    fn unsafe_rules_rejected() {
        for src in [
            r#"p(X) :- q(Y)."#,                    // head var unbound
            r#"p(X) :- q(X), not r(Y)."#,          // negated var unbound
            r#"p(X) :- q(X), Y > 1."#,             // comparison var unbound
            r#"p(X)."#,                            // non-ground fact
        ] {
            let program = parse_program(src).unwrap();
            assert!(Engine::new(program).is_err(), "should reject: {src}");
        }
    }

    #[test]
    fn crowd_head_rejected() {
        let program = parse_program(r#"
            @crowd c/1.
            c(X) :- p(X).
        "#).unwrap();
        assert!(Engine::new(program).is_err());
    }

    #[test]
    fn crowd_fetch_fills_missing_values() {
        let program = parse_program(r#"
            restaurant("joes"). restaurant("moes").
            @crowd city_of/2.
            located(R, C) :- restaurant(R), city_of(R, C).
        "#).unwrap();
        let engine = Engine::new(program).unwrap();
        let mut resolver = TableResolver::new();
        resolver.insert("city_of", vec![s("joes"), s("tokyo")]);
        resolver.insert("city_of", vec![s("moes"), s("osaka")]);
        let (db, stats) = engine.run(&mut resolver).unwrap();
        assert_eq!(db.len("located"), 2);
        assert!(db.contains("located", &[s("joes"), s("tokyo")]));
        assert_eq!(stats.fetches, 2, "one fetch per restaurant");
        assert_eq!(stats.crowd_tuples, 2);
        // Cache prevents refetching across fixpoint iterations.
        assert!(stats.fetch_cache_hits > 0 || stats.fetches == 2);
    }

    #[test]
    fn fetch_cache_prevents_duplicate_asks() {
        let program = parse_program(r#"
            r("a"). r("b").
            @crowd v/2.
            out1(X, V) :- r(X), v(X, V).
            out2(X, V) :- r(X), v(X, V), V != "none".
        "#).unwrap();
        let engine = Engine::new(program).unwrap();
        let mut resolver = TableResolver::new();
        resolver.insert("v", vec![s("a"), s("x")]);
        resolver.insert("v", vec![s("b"), s("y")]);
        let (_, stats) = engine.run(&mut resolver).unwrap();
        assert_eq!(stats.fetches, 2, "two bindings, each fetched once across both rules");
    }

    #[test]
    fn fetch_budget_caps_crowd_spend() {
        let program = parse_program(r#"
            r("a"). r("b"). r("c"). r("d").
            @crowd v/2.
            out(X, V) :- r(X), v(X, V).
        "#).unwrap();
        let engine = Engine::new(program).unwrap().with_config(EngineConfig {
            max_fetches: 2,
            max_iterations: 100,
            semi_naive: true,
        });
        let mut resolver = TableResolver::new();
        for x in ["a", "b", "c", "d"] {
            resolver.insert("v", vec![s(x), s("val")]);
        }
        let (db, stats) = engine.run(&mut resolver).unwrap();
        assert_eq!(stats.fetches, 2);
        assert_eq!(db.len("out"), 2, "only fetched bindings produce output");
    }

    #[test]
    fn crowd_predicate_facts_preempt_fetches() {
        let program = parse_program(r#"
            r("a").
            @crowd v/2.
            v("a", "known").
            out(X, V) :- r(X), v(X, V).
        "#).unwrap();
        let engine = Engine::new(program).unwrap();
        let mut resolver = TableResolver::new();
        resolver.insert("v", vec![s("a"), s("crowdval")]);
        let (db, stats) = engine.run(&mut resolver).unwrap();
        assert_eq!(stats.fetches, 0, "stored tuple suppresses the fetch");
        assert!(db.contains("out", &[s("a"), s("known")]));
    }

    #[test]
    fn fetch_with_selection_after_join() {
        // Only tokyo restaurants surface, but every restaurant is fetched
        // (the filter runs after the fetch — machine-first ordering is the
        // optimizer's job, tested in crowdkit-sql).
        let program = parse_program(r#"
            restaurant("joes"). restaurant("moes").
            @crowd city_of/2.
            in_tokyo(R) :- restaurant(R), city_of(R, C), C = "tokyo".
        "#).unwrap();
        let engine = Engine::new(program).unwrap();
        let mut resolver = TableResolver::new();
        resolver.insert("city_of", vec![s("joes"), s("tokyo")]);
        resolver.insert("city_of", vec![s("moes"), s("osaka")]);
        let (db, stats) = engine.run(&mut resolver).unwrap();
        assert_eq!(db.relation("in_tokyo"), vec![vec![s("joes")]]);
        assert_eq!(stats.fetches, 2);
    }

    #[test]
    fn recursion_with_crowd_predicate_is_bounded_by_cache() {
        // The crowd supplies successor edges; recursion walks them. The
        // fetch cache (plus budget) keeps evaluation finite.
        let program = parse_program(r#"
            start("n0").
            @crowd next/2.
            reach(X) :- start(X).
            reach(Y) :- reach(X), next(X, Y).
        "#).unwrap();
        let engine = Engine::new(program).unwrap().with_config(EngineConfig {
            max_fetches: 10,
            max_iterations: 1000,
            semi_naive: true,
        });
        let mut resolver = TableResolver::new();
        for i in 0..3 {
            resolver.insert("next", vec![s(&format!("n{i}")), s(&format!("n{}", i + 1))]);
        }
        let (db, stats) = engine.run(&mut resolver).unwrap();
        // n0..n3 reachable; fetch for n3 returns nothing and is cached.
        assert_eq!(db.len("reach"), 4);
        assert_eq!(stats.fetches, 4);
    }

    #[test]
    fn empty_relation_queries_are_empty() {
        let db = run(r#"p("a")."#);
        assert!(db.relation("missing").is_empty());
        assert_eq!(db.len("missing"), 0);
    }

    #[test]
    fn duplicate_crowd_decl_rejected() {
        let program = parse_program("@crowd v/2.\n@crowd v/2.").unwrap();
        assert!(Engine::new(program).is_err());
    }

    #[test]
    fn crowd_arity_mismatch_rejected_at_run() {
        let program = parse_program(r#"
            r("a").
            @crowd v/3.
            out(X, V) :- r(X), v(X, V).
        "#).unwrap();
        let engine = Engine::new(program).unwrap();
        let err = engine.run(&mut NullResolver).unwrap_err();
        assert!(matches!(err, CrowdError::Semantic(_)));
    }

    #[test]
    fn same_generation_classic() {
        let db = run(r#"
            flat("a", "b"). flat("c", "d").
            up("x", "a"). up("y", "c").
            down("b", "p"). down("d", "q").
            sg(X, Y) :- flat(X, Y).
            sg(X, Y) :- up(X, A), sg(A, B), down(B, Y).
        "#);
        assert!(db.contains("sg", &[s("x"), s("p")]));
        assert!(db.contains("sg", &[s("y"), s("q")]));
        assert!(!db.contains("sg", &[s("x"), s("q")]));
    }
}

#[cfg(test)]
mod aggregate_tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::resolver::{NullResolver, TableResolver};

    fn run(src: &str) -> Database {
        let engine = Engine::new(parse_program(src).unwrap()).unwrap();
        engine.run(&mut NullResolver).unwrap().0
    }

    fn s(x: &str) -> Const {
        Const::Str(x.into())
    }
    fn i(x: i64) -> Const {
        Const::Int(x)
    }

    #[test]
    fn count_groups_by_head_variables_with_set_semantics() {
        let db = run(r#"
            order("ada", 1). order("ada", 2). order("ada", 2). order("bob", 9).
            total(C, count<O>) :- order(C, O).
        "#);
        // Duplicate fact order("ada", 2) collapses under set semantics.
        assert_eq!(
            db.relation("total"),
            vec![vec![s("ada"), i(2)], vec![s("bob"), i(1)]]
        );
    }

    #[test]
    fn sum_min_max_over_distinct_values() {
        let db = run(r#"
            score("t1", 10). score("t1", 30). score("t2", 5).
            stats(T, sum<S>, min<S>, max<S>) :- score(T, S).
        "#);
        assert_eq!(
            db.relation("stats"),
            vec![
                vec![s("t1"), i(40), i(10), i(30)],
                vec![s("t2"), i(5), i(5), i(5)],
            ]
        );
    }

    #[test]
    fn aggregates_marginalize_non_grouped_body_variables() {
        // Count distinct cities per person, ignoring the year variable.
        let db = run(r#"
            visit("ada", "tokyo", 2019). visit("ada", "tokyo", 2021).
            visit("ada", "osaka", 2020).
            cities(P, count<C>) :- visit(P, C, _).
        "#);
        assert_eq!(db.relation("cities"), vec![vec![s("ada"), i(2)]]);
    }

    #[test]
    fn downstream_rules_consume_aggregates() {
        let db = run(r#"
            edge("a", "b"). edge("a", "c"). edge("b", "c").
            degree(X, count<Y>) :- edge(X, Y).
            hub(X) :- degree(X, D), D >= 2.
        "#);
        assert_eq!(db.relation("hub"), vec![vec![s("a")]]);
    }

    #[test]
    fn aggregate_over_crowd_fetched_tuples() {
        let program = parse_program(r#"
            item("x"). item("y").
            @crowd rating/2.
            rated(I, R) :- item(I), rating(I, R).
            n_rated(count<I>) :- rated(I, _).
        "#).unwrap();
        let engine = Engine::new(program).unwrap();
        let mut resolver = TableResolver::new();
        resolver.insert("rating", vec![s("x"), i(4)]);
        resolver.insert("rating", vec![s("y"), i(5)]);
        let (db, stats) = engine.run(&mut resolver).unwrap();
        assert_eq!(db.relation("n_rated"), vec![vec![i(2)]]);
        assert_eq!(stats.fetches, 2);
    }

    #[test]
    fn empty_groups_produce_no_tuples() {
        let db = run(r#"
            p("a").
            c(count<X>) :- q(X).
        "#);
        assert!(db.relation("c").is_empty(), "no matching bindings → no groups");
    }

    #[test]
    fn sum_over_strings_is_rejected() {
        let program = parse_program(r#"
            p("a", "oops").
            t(X, sum<Y>) :- p(X, Y).
        "#).unwrap();
        let engine = Engine::new(program).unwrap();
        assert!(matches!(
            engine.run(&mut NullResolver).unwrap_err(),
            CrowdError::Semantic(_)
        ));
    }

    #[test]
    fn recursion_through_aggregation_is_rejected() {
        let program = parse_program(r#"
            base("a", 1).
            p(X, Y) :- base(X, Y).
            p(X, C) :- t(X, C).
            t(X, count<Y>) :- p(X, Y).
        "#).unwrap();
        assert!(matches!(Engine::new(program), Err(CrowdError::Semantic(_))));
    }

    #[test]
    fn aggregate_variable_must_be_bound() {
        let program = parse_program(r#"
            p("a").
            t(X, count<Y>) :- p(X).
        "#).unwrap();
        assert!(Engine::new(program).is_err());
    }

    #[test]
    fn aggregate_variable_cannot_be_grouped() {
        let program = parse_program(r#"
            p("a", 1).
            t(Y, count<Y>) :- p(_, Y).
        "#).unwrap();
        assert!(Engine::new(program).is_err());
    }

    #[test]
    fn aggregate_fact_is_rejected_at_parse() {
        assert!(parse_program("t(count<Y>).").is_err());
    }

    #[test]
    fn aggregate_rules_pretty_print_and_reparse() {
        let src = "stats(T, sum<S>, min<S>, max<S>) :- score(T, S).\n";
        let p1 = parse_program(src).unwrap();
        let printed = p1.to_string();
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p1, p2, "printed:\n{printed}");
    }

    #[test]
    fn semi_naive_and_naive_agree_on_aggregates() {
        let src = r#"
            edge("a", "b"). edge("b", "c"). edge("a", "c"). edge("c", "d").
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- edge(X, Y), path(Y, Z).
            reach(X, count<Y>) :- path(X, Y).
        "#;
        let program = parse_program(src).unwrap();
        let run_mode = |semi_naive: bool| {
            let engine = Engine::new(program.clone()).unwrap().with_config(EngineConfig {
                semi_naive,
                ..EngineConfig::default()
            });
            engine.run(&mut NullResolver).unwrap().0.relation("reach")
        };
        let semi = run_mode(true);
        assert_eq!(semi, run_mode(false));
        assert_eq!(
            semi,
            vec![
                vec![s("a"), i(3)],
                vec![s("b"), i(2)],
                vec![s("c"), i(1)],
            ]
        );
    }
}
