//! How crowd-predicate fetches reach people.
//!
//! The engine calls [`CrowdResolver::resolve`] when a rule needs tuples of
//! a crowd predicate for a specific binding of its bound arguments — e.g.
//! `city_of("joe's diner", C)` asks for the value of `C`. Three
//! implementations:
//!
//! * [`NullResolver`] — answers nothing; evaluation is machine-only.
//! * [`TableResolver`] — answers from a ground-truth table; the
//!   deterministic test/benchmark resolver.
//! * [`OracleResolver`] — buys `votes` open-text answers per fetch from a
//!   [`CrowdOracle`] and reconciles them by normalized plurality, exactly
//!   like the FILL operator.

use std::collections::{BTreeMap, HashMap};

use crowdkit_core::ask::AskRequest;
use crowdkit_core::error::Result;
use crowdkit_core::ids::IdGen;
use crowdkit_core::task::Task;
use crowdkit_core::traits::CrowdOracle;
use crowdkit_obs::{self as obs, Event};

use crate::ast::Const;

/// Supplies values for the single free position of a crowd-predicate
/// fetch.
pub trait CrowdResolver {
    /// Returns candidate constants for position `free_pos` of
    /// `predicate/arity`, given the other positions' values in `bound`
    /// (sorted by position).
    ///
    /// An empty vector means the crowd produced no (reconcilable) answer;
    /// the engine caches that result and will not re-ask.
    fn resolve(
        &mut self,
        predicate: &str,
        bound: &[(usize, Const)],
        free_pos: usize,
        arity: usize,
    ) -> Result<Vec<Const>>;

    /// Crowd answers purchased so far (0 for offline resolvers).
    fn questions_asked(&self) -> u64;
}

/// A resolver that never returns tuples.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullResolver;

impl CrowdResolver for NullResolver {
    fn resolve(
        &mut self,
        _predicate: &str,
        _bound: &[(usize, Const)],
        _free_pos: usize,
        _arity: usize,
    ) -> Result<Vec<Const>> {
        Ok(Vec::new())
    }

    fn questions_asked(&self) -> u64 {
        0
    }
}

/// Answers fetches from an in-memory ground-truth table.
#[derive(Debug, Default, Clone)]
pub struct TableResolver {
    tables: HashMap<String, Vec<Vec<Const>>>,
    fetches: u64,
}

impl TableResolver {
    /// Creates an empty resolver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a ground tuple for `predicate`.
    pub fn insert(&mut self, predicate: impl Into<String>, tuple: Vec<Const>) {
        self.tables.entry(predicate.into()).or_default().push(tuple);
    }

    /// Number of resolve calls served.
    pub fn fetches(&self) -> u64 {
        self.fetches
    }
}

impl CrowdResolver for TableResolver {
    fn resolve(
        &mut self,
        predicate: &str,
        bound: &[(usize, Const)],
        free_pos: usize,
        _arity: usize,
    ) -> Result<Vec<Const>> {
        self.fetches += 1;
        let Some(rows) = self.tables.get(predicate) else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        for row in rows {
            if bound.iter().all(|(i, v)| row.get(*i) == Some(v)) {
                if let Some(v) = row.get(free_pos) {
                    if !out.contains(v) {
                        out.push(v.clone());
                    }
                }
            }
        }
        Ok(out)
    }

    fn questions_asked(&self) -> u64 {
        // Table lookups are free; this resolver models a perfect crowd and
        // is counted by `fetches()` instead.
        0
    }
}

/// Buys answers from a [`CrowdOracle`], `votes` per fetch, reconciled by
/// normalized plurality. Ties and empty answers resolve to nothing.
///
/// `make_task` renders the worker-facing question for a fetch; in
/// simulation it attaches the latent truth. Reconciled text that parses as
/// an integer becomes [`Const::Int`], otherwise [`Const::Str`].
pub struct OracleResolver<'a, O: CrowdOracle + ?Sized, F> {
    oracle: &'a O,
    votes: u32,
    make_task: F,
    ids: IdGen,
    questions: u64,
}

impl<'a, O, F> OracleResolver<'a, O, F>
where
    O: CrowdOracle + ?Sized,
    F: FnMut(crowdkit_core::ids::TaskId, &str, &[(usize, Const)], usize) -> Task,
{
    /// Creates a resolver over `oracle` buying `votes` answers per fetch.
    pub fn new(oracle: &'a O, votes: u32, make_task: F) -> Self {
        Self {
            oracle,
            votes,
            make_task,
            ids: IdGen::new(),
            questions: 0,
        }
    }
}

impl<'a, O, F> CrowdResolver for OracleResolver<'a, O, F>
where
    O: CrowdOracle + ?Sized,
    F: FnMut(crowdkit_core::ids::TaskId, &str, &[(usize, Const)], usize) -> Task,
{
    fn resolve(
        &mut self,
        predicate: &str,
        bound: &[(usize, Const)],
        free_pos: usize,
        _arity: usize,
    ) -> Result<Vec<Const>> {
        let task = (self.make_task)(self.ids.next_task(), predicate, bound, free_pos);
        // Key-ordered: the tally fold below must not depend on hash order.
        let mut counts: BTreeMap<String, u32> = BTreeMap::new();
        let out = self
            .oracle
            .ask(&AskRequest::new(&task).with_redundancy(self.votes.max(1) as usize))?;
        if let Some(e) = &out.shortfall {
            if !e.is_resource_exhaustion() {
                return Err(e.clone());
            }
        }
        for a in &out.answers {
            self.questions += 1;
            if let Some(text) = a.value.as_text() {
                let norm = text.trim().to_lowercase();
                if !norm.is_empty() {
                    *counts.entry(norm).or_insert(0) += 1;
                }
            }
        }
        let mut tallies: Vec<(String, u32)> = counts.into_iter().collect();
        tallies.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let resolved = match tallies.as_slice() {
            [] => Vec::new(),
            [(_, c1), (_, c2), ..] if c1 == c2 => Vec::new(), // tie: no verdict
            [(top, _), ..] => {
                let value = match top.parse::<i64>() {
                    Ok(i) => Const::Int(i),
                    Err(_) => Const::Str(top.clone()),
                };
                vec![value]
            }
        };
        if obs::enabled() {
            obs::record(
                Event::new("datalog.fetch")
                    .str("predicate", predicate)
                    .u64("answers", out.answers.len() as u64)
                    .u64("resolved", u64::from(!resolved.is_empty())),
            );
        }
        Ok(resolved)
    }

    fn questions_asked(&self) -> u64 {
        self.questions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdkit_core::answer::{Answer, AnswerValue};
    use crowdkit_core::ids::{TaskId, WorkerId};
    use crowdkit_core::task::TaskKind;

    #[test]
    fn null_resolver_returns_nothing() {
        let mut r = NullResolver;
        assert_eq!(
            r.resolve("p", &[(0, Const::Int(1))], 1, 2).unwrap(),
            Vec::<Const>::new()
        );
        assert_eq!(r.questions_asked(), 0);
    }

    #[test]
    fn table_resolver_filters_by_bound_positions() {
        let mut r = TableResolver::new();
        r.insert(
            "city_of",
            vec![Const::Str("joes".into()), Const::Str("tokyo".into())],
        );
        r.insert(
            "city_of",
            vec![Const::Str("moes".into()), Const::Str("osaka".into())],
        );
        let vals = r
            .resolve("city_of", &[(0, Const::Str("joes".into()))], 1, 2)
            .unwrap();
        assert_eq!(vals, vec![Const::Str("tokyo".into())]);
        assert_eq!(r.fetches(), 1);
        // Unknown binding → empty.
        assert!(r
            .resolve("city_of", &[(0, Const::Str("zoes".into()))], 1, 2)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn table_resolver_dedups_values() {
        let mut r = TableResolver::new();
        r.insert("p", vec![Const::Int(1), Const::Int(9)]);
        r.insert("p", vec![Const::Int(2), Const::Int(9)]);
        // Free position 1 with nothing bound: value 9 appears once.
        let vals = r.resolve("p", &[], 1, 2).unwrap();
        assert_eq!(vals, vec![Const::Int(9)]);
    }

    /// Oracle scripting a fixed sequence of text answers.
    struct ScriptOracle {
        script: Vec<String>,
        i: std::cell::Cell<usize>,
    }

    impl ScriptOracle {
        fn new(script: Vec<String>) -> Self {
            Self {
                script,
                i: std::cell::Cell::new(0),
            }
        }
    }

    impl CrowdOracle for ScriptOracle {
        fn ask_one(&self, task: &Task) -> Result<Answer> {
            let i = self.i.get();
            let text = self.script[i % self.script.len()].clone();
            self.i.set(i + 1);
            Ok(Answer::bare(
                task.id,
                WorkerId::new((i + 1) as u64),
                AnswerValue::Text(text),
            ))
        }
        fn remaining_budget(&self) -> Option<f64> {
            None
        }
        fn answers_delivered(&self) -> u64 {
            self.i.get() as u64
        }
    }

    fn make_task(
        id: TaskId,
        pred: &str,
        bound: &[(usize, Const)],
        _free: usize,
    ) -> Task {
        let desc: Vec<String> = bound.iter().map(|(i, c)| format!("{i}={c}")).collect();
        Task::new(id, TaskKind::OpenText, format!("{pred}({})", desc.join(",")))
    }

    #[test]
    fn oracle_resolver_reconciles_by_plurality() {
        let oracle = ScriptOracle::new(vec!["Tokyo".into(), "tokyo ".into(), "Osaka".into()]);
        let mut r = OracleResolver::new(&oracle, 3, make_task);
        let vals = r
            .resolve("city_of", &[(0, Const::Str("joes".into()))], 1, 2)
            .unwrap();
        assert_eq!(vals, vec![Const::Str("tokyo".into())]);
        assert_eq!(r.questions_asked(), 3);
    }

    #[test]
    fn oracle_resolver_parses_integers() {
        let oracle = ScriptOracle::new(vec!["4".into()]);
        let mut r = OracleResolver::new(&oracle, 1, make_task);
        let vals = r.resolve("rating", &[], 1, 2).unwrap();
        assert_eq!(vals, vec![Const::Int(4)]);
    }

    #[test]
    fn oracle_resolver_ties_resolve_to_nothing() {
        let oracle = ScriptOracle::new(vec!["a".into(), "b".into()]);
        let mut r = OracleResolver::new(&oracle, 2, make_task);
        assert!(r.resolve("p", &[], 0, 1).unwrap().is_empty());
    }
}
