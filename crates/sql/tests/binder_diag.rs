//! Binder diagnostics: name and type errors surface as `CrowdError::Bind`
//! with the line/column of the offending token — never as a panic.

use crowdkit_core::error::CrowdError;
use crowdkit_sql::Session;

fn session() -> Session {
    let s = Session::new();
    s.execute_ddl("CREATE TABLE products (id INT, name TEXT, category CROWD TEXT)")
        .unwrap();
    s.execute_ddl("CREATE TABLE brands (bid INT, name TEXT)")
        .unwrap();
    s.execute_ddl("INSERT INTO products VALUES (1, 'p', NULL)")
        .unwrap();
    s
}

/// Runs EXPLAIN and returns the Bind diagnostic it must produce.
fn bind_err(s: &Session, sql: &str) -> (usize, usize, String) {
    match s.explain(sql, true) {
        Err(CrowdError::Bind {
            line,
            column,
            message,
        }) => (line, column, message),
        other => panic!("expected a Bind error for {sql:?}, got {other:?}"),
    }
}

#[test]
fn unknown_column_reports_its_position() {
    let s = session();
    let (line, column, message) = bind_err(&s, "SELECT nme FROM products");
    assert_eq!((line, column), (1, 8));
    assert!(message.contains("unknown column `nme`"), "{message}");
}

#[test]
fn unknown_table_reports_its_position() {
    let s = session();
    let (line, column, message) = bind_err(&s, "SELECT id FROM producs");
    assert_eq!((line, column), (1, 16));
    assert!(message.contains("producs"), "{message}");
}

#[test]
fn unknown_qualified_column_names_the_table() {
    let s = session();
    let (_, _, message) = bind_err(&s, "SELECT products.nope FROM products");
    assert!(
        message.contains("table `products` has no column `nope`"),
        "{message}"
    );
}

#[test]
fn qualifier_not_in_from_clause_is_reported() {
    let s = session();
    let (_, _, message) = bind_err(&s, "SELECT brands.name FROM products");
    assert!(
        message.contains("table `brands` is not in the FROM clause"),
        "{message}"
    );
}

#[test]
fn ambiguous_column_asks_for_qualification() {
    let s = session();
    let (line, column, message) =
        bind_err(&s, "SELECT name FROM products, brands");
    assert_eq!((line, column), (1, 8));
    assert!(message.contains("ambiguous column `name`"), "{message}");
    assert!(message.contains("qualify"), "{message}");
}

#[test]
fn type_mismatch_reports_both_types() {
    let s = session();
    let (_, _, message) = bind_err(&s, "SELECT id FROM products WHERE id = 'x'");
    assert!(message.contains("type mismatch"), "{message}");
    assert!(message.contains("INT") && message.contains("TEXT"), "{message}");
}

#[test]
fn errors_on_later_lines_carry_the_right_line_number() {
    let s = session();
    let (line, _, message) = bind_err(&s, "SELECT id\nFROM products\nWHERE nope = 1");
    assert_eq!(line, 3);
    assert!(message.contains("nope"), "{message}");
}

#[test]
fn bind_errors_never_panic_across_statement_shapes() {
    let s = session();
    // A sweep of malformed-but-parseable queries: every one must return
    // an error (Bind or otherwise), never panic.
    for sql in [
        "SELECT missing FROM products",
        "SELECT id FROM missing",
        "SELECT products.missing FROM products",
        "SELECT brands.bid FROM products",
        "SELECT name FROM products, brands",
        "SELECT id FROM products WHERE name = 3",
        "SELECT id FROM products WHERE id = name",
        "SELECT id FROM products ORDER BY missing",
        "SELECT id FROM products WHERE CROWDEQUAL(id, missing)",
        "SELECT COUNT(*) FROM products WHERE missing = 1",
    ] {
        assert!(s.explain(sql, true).is_err(), "{sql} should fail to bind");
        assert!(s.explain(sql, false).is_err());
        assert!(s.query_machine(sql).is_err());
    }
}
