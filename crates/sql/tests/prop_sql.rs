//! Property-based tests for the CrowdSQL layer: lexer/parser totality,
//! machine-plan equivalence between the naive and optimized planners, and
//! value semantics.

use crowdkit_core::answer::Answer;
use crowdkit_core::error::Result as CrowdResult;
use crowdkit_core::ids::WorkerId;
use crowdkit_core::task::Task;
use crowdkit_core::traits::CrowdOracle;
use crowdkit_sql::exec::SimTaskFactory;
use crowdkit_sql::lexer::lex;
use crowdkit_sql::parser::parse_statement;
use crowdkit_sql::{QueryOpts, Session, Value};
use proptest::prelude::*;

/// An unmetered oracle that answers every task with its attached truth.
struct TruthfulOracle {
    delivered: std::cell::Cell<u64>,
}

impl CrowdOracle for TruthfulOracle {
    fn ask_one(&self, task: &Task) -> CrowdResult<Answer> {
        self.delivered.set(self.delivered.get() + 1);
        Ok(Answer::bare(
            task.id,
            WorkerId::new(self.delivered.get()),
            task.truth.clone().expect("sim tasks carry truth"),
        ))
    }
    fn remaining_budget(&self) -> Option<f64> {
        None
    }
    fn answers_delivered(&self) -> u64 {
        self.delivered.get()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The lexer and parser never panic on arbitrary input.
    #[test]
    fn lexer_and_parser_are_total(src in ".{0,200}") {
        let _ = lex(&src);
        let _ = parse_statement(&src);
    }

    /// Machine-only queries produce the same multiset of rows under the
    /// naive and optimized planners (the optimizer may only change crowd
    /// cost, never machine answers).
    #[test]
    fn planners_agree_on_machine_queries(
        rows in prop::collection::vec((0i64..50, 0i64..10), 1..40),
        lo in 0i64..10,
    ) {
        let build = || {
            let s = Session::new();
            s.execute_ddl("CREATE TABLE t (id INT, score INT)").unwrap();
            for (id, score) in &rows {
                s.execute_ddl(&format!("INSERT INTO t VALUES ({id}, {score})")).unwrap();
            }
            s
        };
        let sql = format!("SELECT id FROM t WHERE score >= {lo} ORDER BY id ASC");
        // Machine path always uses the optimized plan; compare against a
        // manual reference instead.
        let s = build();
        let got = s.query_machine(&sql).unwrap();
        let mut expect: Vec<i64> = rows
            .iter()
            .filter(|(_, sc)| *sc >= lo)
            .map(|(id, _)| *id)
            .collect();
        expect.sort_unstable();
        let got_ids: Vec<i64> = got
            .iter()
            .map(|r| match r[0] {
                Value::Int(i) => i,
                _ => unreachable!(),
            })
            .collect();
        prop_assert_eq!(got_ids, expect);
    }

    /// LIMIT never returns more rows than requested, and is a prefix of
    /// the unlimited result.
    #[test]
    fn limit_is_a_prefix(
        rows in prop::collection::vec(0i64..100, 1..30),
        k in 0usize..10,
    ) {
        let s = Session::new();
        s.execute_ddl("CREATE TABLE t (id INT)").unwrap();
        for id in &rows {
            s.execute_ddl(&format!("INSERT INTO t VALUES ({id})")).unwrap();
        }
        let all = s.query_machine("SELECT id FROM t ORDER BY id ASC").unwrap();
        let limited = s
            .query_machine(&format!("SELECT id FROM t ORDER BY id ASC LIMIT {k}"))
            .unwrap();
        prop_assert!(limited.len() <= k);
        prop_assert_eq!(&all[..limited.len()], &limited[..]);
    }

    /// Inserted values round-trip through storage and projection.
    #[test]
    fn insert_select_round_trip(
        names in prop::collection::vec("[a-z]{1,8}", 1..20)
    ) {
        let s = Session::new();
        s.execute_ddl("CREATE TABLE t (id INT, name TEXT)").unwrap();
        for (i, n) in names.iter().enumerate() {
            s.execute_ddl(&format!("INSERT INTO t VALUES ({i}, '{n}')")).unwrap();
        }
        let rows = s.query_machine("SELECT name FROM t ORDER BY id ASC").unwrap();
        let got: Vec<String> = rows.iter().map(|r| r[0].display_raw()).collect();
        prop_assert_eq!(got, names);
    }

    /// Value comparison semantics: compare is antisymmetric and sql_eq is
    /// symmetric; NULL propagates as None.
    #[test]
    fn value_semantics(a in -100i64..100, b in -100i64..100) {
        let (va, vb) = (Value::Int(a), Value::Int(b));
        prop_assert_eq!(va.sql_eq(&vb), vb.sql_eq(&va));
        let ord = va.compare(&vb).unwrap();
        prop_assert_eq!(vb.compare(&va).unwrap(), ord.reverse());
        prop_assert_eq!(Value::Null.sql_eq(&va), None);
        prop_assert_eq!(va.compare(&Value::Null), None);
    }

    /// EXPLAIN never differs across invocations (plan determinism), and
    /// quoted identifiers with escapes survive the lexer.
    #[test]
    fn explain_is_deterministic(lo in 0i64..100) {
        let s = Session::new();
        s.execute_ddl("CREATE TABLE t (id INT, tag CROWD TEXT)").unwrap();
        let sql = format!("SELECT tag FROM t WHERE id > {lo}");
        prop_assert_eq!(s.explain(&sql, true).unwrap(), s.explain(&sql, true).unwrap());
        prop_assert_eq!(s.explain(&sql, false).unwrap(), s.explain(&sql, false).unwrap());
    }

    /// The hash equi-join returns exactly what the cross-product +
    /// equality filter returns (checked against a manual reference).
    #[test]
    fn hash_join_matches_cross_product_reference(
        left in prop::collection::vec(0i64..8, 1..20),
        right in prop::collection::vec(0i64..8, 1..20),
    ) {
        let s = Session::new();
        s.execute_ddl("CREATE TABLE l (k INT)").unwrap();
        s.execute_ddl("CREATE TABLE r (k INT)").unwrap();
        for v in &left {
            s.execute_ddl(&format!("INSERT INTO l VALUES ({v})")).unwrap();
        }
        for v in &right {
            s.execute_ddl(&format!("INSERT INTO r VALUES ({v})")).unwrap();
        }
        let plan = s.explain("SELECT COUNT(*) FROM l, r WHERE l.k = r.k", true).unwrap();
        prop_assert!(plan.to_string().contains("HashJoin"), "{}", plan);
        let got = s.query_machine("SELECT COUNT(*) FROM l, r WHERE l.k = r.k").unwrap();
        let expected: i64 = left
            .iter()
            .map(|a| right.iter().filter(|b| *b == a).count() as i64)
            .sum();
        prop_assert_eq!(got, vec![vec![Value::Int(expected)]]);
    }

    /// Crowd queries return byte-identical result sets under the naive
    /// and optimized planners (against a truthful crowd), and the cost
    /// model never predicts the optimized plan to spend more.
    #[test]
    fn optimizer_preserves_crowd_query_results(
        n in 1i64..20,
        lo in 0i64..20,
        votes in 1u32..4,
        batch in 0usize..5,
    ) {
        let run = |opts: &QueryOpts| {
            let s = Session::new();
            s.execute_ddl("CREATE TABLE t (id INT, cat CROWD TEXT)").unwrap();
            for i in 0..n {
                s.execute_ddl(&format!("INSERT INTO t VALUES ({i}, NULL)")).unwrap();
            }
            let oracle = TruthfulOracle { delivered: std::cell::Cell::new(0) };
            let mut f = SimTaskFactory {
                fill_truth: |_: &str, row: &[Value], _: &str| match row[0] {
                    Value::Int(i) if i % 2 == 0 => "a".to_owned(),
                    _ => "b".to_owned(),
                },
                equal_truth: |l: &Value, r: &Value| l == r,
                left_wins_truth: |l: &Value, r: &Value| l.display_raw() > r.display_raw(),
            };
            let sql = format!(
                "SELECT id FROM t WHERE cat = 'a' AND id >= {lo} ORDER BY id ASC"
            );
            s.query_crowd(&sql, &oracle, &mut f, opts).unwrap()
        };
        let (naive_rows, naive) = run(&QueryOpts::naive().votes(votes));
        let (opt_rows, opt) = run(&QueryOpts::new().votes(votes).batch(batch));
        prop_assert_eq!(naive_rows, opt_rows);
        prop_assert!(opt.predicted_spend <= naive.predicted_spend + 1e-9);
        prop_assert!(opt.questions <= naive.questions);
    }
}
