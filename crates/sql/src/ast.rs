//! CrowdSQL abstract syntax.

use crate::value::Value;

/// A (possibly qualified) column reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Table qualifier, if written (`t.c`).
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// An unqualified reference.
    pub fn bare(column: impl Into<String>) -> Self {
        Self {
            table: None,
            column: column.into(),
        }
    }

    /// A qualified reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        Self {
            table: Some(table.into()),
            column: column.into(),
        }
    }
}

impl std::fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// A scalar expression: a column or a literal.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(ColumnRef),
    /// Literal value.
    Literal(Value),
}

impl std::fmt::Display for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(v) => write!(f, "{v}"),
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum CompareOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl std::fmt::Display for CompareOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "!=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// One conjunct of a WHERE clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Machine-evaluable comparison.
    Compare {
        /// Left expression.
        left: Expr,
        /// Operator.
        op: CompareOp,
        /// Right expression.
        right: Expr,
    },
    /// `CROWDEQUAL(a, b)` — crowd-verified semantic equality.
    CrowdEqual {
        /// Left expression.
        left: Expr,
        /// Right expression.
        right: Expr,
    },
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Predicate::Compare { left, op, right } => write!(f, "{left} {op} {right}"),
            Predicate::CrowdEqual { left, right } => write!(f, "CROWDEQUAL({left}, {right})"),
        }
    }
}

/// ORDER BY specification.
#[derive(Debug, Clone, PartialEq)]
pub enum OrderBy {
    /// Machine sort on a column.
    Machine {
        /// The sort column.
        column: ColumnRef,
        /// Ascending?
        asc: bool,
    },
    /// `CROWDORDER(col)` — crowd-judged ordering (always "best first").
    Crowd {
        /// The column whose values workers compare.
        column: ColumnRef,
    },
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// Projected columns; empty = `*` (or `COUNT(*)` when `count` is set).
    pub projection: Vec<ColumnRef>,
    /// True for `SELECT COUNT(*)`: the result is a single row with the
    /// row count.
    pub count: bool,
    /// Tables in the FROM clause (1 = scan, 2 = cross join + predicates).
    pub from: Vec<String>,
    /// Conjunctive WHERE predicates.
    pub predicates: Vec<Predicate>,
    /// Optional ordering.
    pub order_by: Option<OrderBy>,
    /// Optional row limit.
    pub limit: Option<usize>,
}

/// Column declaration in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDecl {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub is_int: bool,
    /// Whether the column is crowd-filled (`CROWD TEXT` / `CROWD INT`).
    pub crowd: bool,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE [CROWD] TABLE name (cols…)`. A crowd *table* marks every
    /// column crowd-fillable and allows open-ended row acquisition.
    CreateTable {
        /// Table name.
        name: String,
        /// Column declarations.
        columns: Vec<ColumnDecl>,
        /// Whole-table crowd flag.
        crowd: bool,
    },
    /// `INSERT INTO name VALUES (…), (…)`.
    Insert {
        /// Target table.
        table: String,
        /// Row literals.
        rows: Vec<Vec<Value>>,
    },
    /// A SELECT query.
    Select(Select),
    /// `EXPLAIN SELECT …` — plan without executing.
    Explain(Select),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let p = Predicate::Compare {
            left: Expr::Column(ColumnRef::qualified("t", "c")),
            op: CompareOp::Le,
            right: Expr::Literal(Value::Int(5)),
        };
        assert_eq!(p.to_string(), "t.c <= 5");
        let q = Predicate::CrowdEqual {
            left: Expr::Column(ColumnRef::bare("a")),
            right: Expr::Literal(Value::text("x")),
        };
        assert_eq!(q.to_string(), "CROWDEQUAL(a, 'x')");
    }
}
