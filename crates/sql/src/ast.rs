//! CrowdSQL abstract syntax.

use crate::value::Value;

/// A 1-based source position attached to AST nodes for diagnostics.
///
/// `Span::default()` (0:0) marks synthesized nodes with no source text;
/// the binder falls back to 1:1 when reporting against them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// 1-based line (0 = synthesized).
    pub line: usize,
    /// 1-based column (0 = synthesized).
    pub col: usize,
}

impl Span {
    /// A span at the given position.
    pub fn at(line: usize, col: usize) -> Self {
        Self { line, col }
    }
}

/// A (possibly qualified) column reference.
///
/// Equality and hashing ignore the span: two references to the same name
/// are the same column no matter where they were written.
#[derive(Debug, Clone, Eq)]
pub struct ColumnRef {
    /// Table qualifier, if written (`t.c`).
    pub table: Option<String>,
    /// Column name.
    pub column: String,
    /// Source position of the reference (for binder diagnostics).
    pub span: Span,
}

impl PartialEq for ColumnRef {
    fn eq(&self, other: &Self) -> bool {
        self.table == other.table && self.column == other.column
    }
}

impl std::hash::Hash for ColumnRef {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.table.hash(state);
        self.column.hash(state);
    }
}

impl ColumnRef {
    /// An unqualified reference.
    pub fn bare(column: impl Into<String>) -> Self {
        Self {
            table: None,
            column: column.into(),
            span: Span::default(),
        }
    }

    /// A qualified reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        Self {
            table: Some(table.into()),
            column: column.into(),
            span: Span::default(),
        }
    }

    /// Attaches a source position.
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = span;
        self
    }
}

impl std::fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// A scalar expression: a column or a literal.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(ColumnRef),
    /// Literal value.
    Literal(Value),
}

impl Expr {
    /// The source position of the expression, if it is a column reference
    /// with one attached.
    pub fn span(&self) -> Option<Span> {
        match self {
            Expr::Column(c) if c.span != Span::default() => Some(c.span),
            _ => None,
        }
    }
}

impl std::fmt::Display for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(v) => write!(f, "{v}"),
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum CompareOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl std::fmt::Display for CompareOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "!=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// One conjunct of a WHERE clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Machine-evaluable comparison.
    Compare {
        /// Left expression.
        left: Expr,
        /// Operator.
        op: CompareOp,
        /// Right expression.
        right: Expr,
    },
    /// `CROWDEQUAL(a, b)` — crowd-verified semantic equality.
    CrowdEqual {
        /// Left expression.
        left: Expr,
        /// Right expression.
        right: Expr,
    },
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Predicate::Compare { left, op, right } => write!(f, "{left} {op} {right}"),
            Predicate::CrowdEqual { left, right } => write!(f, "CROWDEQUAL({left}, {right})"),
        }
    }
}

/// ORDER BY specification.
#[derive(Debug, Clone, PartialEq)]
pub enum OrderBy {
    /// Machine sort on a column.
    Machine {
        /// The sort column.
        column: ColumnRef,
        /// Ascending?
        asc: bool,
    },
    /// `CROWDORDER(col)` — crowd-judged ordering (always "best first").
    Crowd {
        /// The column whose values workers compare.
        column: ColumnRef,
    },
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// Projected columns; empty = `*` (or `COUNT(*)` when `count` is set).
    pub projection: Vec<ColumnRef>,
    /// True for `SELECT COUNT(*)`: the result is a single row with the
    /// row count.
    pub count: bool,
    /// Tables in the FROM clause (1 = scan, 2 = cross join + predicates).
    pub from: Vec<String>,
    /// Source positions of the FROM table names, parallel to `from`
    /// (empty or `Span::default()` entries for synthesized selects).
    pub from_spans: Vec<Span>,
    /// Conjunctive WHERE predicates.
    pub predicates: Vec<Predicate>,
    /// Optional ordering.
    pub order_by: Option<OrderBy>,
    /// Optional row limit.
    pub limit: Option<usize>,
}

/// Column declaration in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDecl {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub is_int: bool,
    /// Whether the column is crowd-filled (`CROWD TEXT` / `CROWD INT`).
    pub crowd: bool,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE [CROWD] TABLE name (cols…)`. A crowd *table* marks every
    /// column crowd-fillable and allows open-ended row acquisition.
    CreateTable {
        /// Table name.
        name: String,
        /// Column declarations.
        columns: Vec<ColumnDecl>,
        /// Whole-table crowd flag.
        crowd: bool,
    },
    /// `INSERT INTO name VALUES (…), (…)`.
    Insert {
        /// Target table.
        table: String,
        /// Row literals.
        rows: Vec<Vec<Value>>,
    },
    /// A SELECT query.
    Select(Select),
    /// `EXPLAIN SELECT …` — plan without executing.
    Explain(Select),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let p = Predicate::Compare {
            left: Expr::Column(ColumnRef::qualified("t", "c")),
            op: CompareOp::Le,
            right: Expr::Literal(Value::Int(5)),
        };
        assert_eq!(p.to_string(), "t.c <= 5");
        let q = Predicate::CrowdEqual {
            left: Expr::Column(ColumnRef::bare("a")),
            right: Expr::Literal(Value::text("x")),
        };
        assert_eq!(q.to_string(), "CROWDEQUAL(a, 'x')");
    }

    #[test]
    fn column_ref_equality_ignores_span() {
        let a = ColumnRef::bare("c");
        let b = ColumnRef::bare("c").with_span(Span::at(3, 9));
        assert_eq!(a, b);
        let mut set = std::collections::HashSet::new();
        set.insert(a);
        assert!(set.contains(&b), "hash must also ignore the span");
    }
}
