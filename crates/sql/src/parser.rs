//! Recursive-descent parser for CrowdSQL.
//!
//! ```text
//! stmt      := create | insert | select | "EXPLAIN" select
//! create    := "CREATE" "CROWD"? "TABLE" IDENT "(" coldecl ("," coldecl)* ")"
//! coldecl   := IDENT ("CROWD"? ("INT"|"TEXT") | "CROWD")
//! insert    := "INSERT" "INTO" IDENT "VALUES" row ("," row)*
//! row       := "(" literal ("," literal)* ")"
//! select    := "SELECT" proj "FROM" IDENT ("," IDENT)?
//!              ("WHERE" pred ("AND" pred)*)?
//!              ("ORDER" "BY" order)? ("LIMIT" INT)?
//! proj      := "*" | colref ("," colref)*
//! pred      := "CROWDEQUAL" "(" expr "," expr ")" | expr cmp expr
//! order     := "CROWDORDER" "(" colref ")" | colref ("ASC"|"DESC")?
//! expr      := colref | literal
//! colref    := IDENT ("." IDENT)?
//! literal   := INT | STRING | "NULL"
//! ```

use crowdkit_core::error::{CrowdError, Result};

use crate::ast::{
    ColumnDecl, ColumnRef, CompareOp, Expr, OrderBy, Predicate, Select, Span, Statement,
};
use crate::lexer::{lex_spanned, Keyword, SpannedToken, Token};
use crate::value::Value;

struct Parser {
    toks: Vec<SpannedToken>,
    pos: usize,
}

impl Parser {
    /// Source position of the token at `pos`, or just past the last token
    /// when the stream is exhausted.
    fn span_here(&self) -> Span {
        match self.toks.get(self.pos) {
            Some(t) => Span::at(t.line, t.col),
            None => match self.toks.last() {
                Some(t) => Span::at(t.line, t.col + 1),
                None => Span::at(1, 1),
            },
        }
    }

    fn err(&self, msg: impl Into<String>) -> CrowdError {
        let span = self.span_here();
        CrowdError::parse(span.line, span.col, msg)
    }

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token, what: &str) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        self.eat(&Token::Keyword(kw))
    }

    fn expect_kw(&mut self, kw: Keyword, what: &str) -> Result<()> {
        self.expect(&Token::Keyword(kw), what)
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        Ok(self.ident_spanned(what)?.0)
    }

    fn ident_spanned(&mut self, what: &str) -> Result<(String, Span)> {
        let span = self.span_here();
        match self.bump() {
            Some(Token::Ident(s)) => Ok((s, span)),
            _ => Err(CrowdError::parse(
                span.line,
                span.col,
                format!("expected {what}"),
            )),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        let stmt = if self.eat_kw(Keyword::Explain) {
            Statement::Explain(self.select()?)
        } else if self.eat_kw(Keyword::Create) {
            self.create()?
        } else if self.eat_kw(Keyword::Insert) {
            self.insert()?
        } else if matches!(self.peek(), Some(Token::Keyword(Keyword::Select))) {
            Statement::Select(self.select()?)
        } else {
            return Err(self.err("expected CREATE, INSERT, SELECT, or EXPLAIN"));
        };
        self.eat(&Token::Semi);
        if self.peek().is_some() {
            return Err(self.err("trailing tokens after statement"));
        }
        Ok(stmt)
    }

    fn create(&mut self) -> Result<Statement> {
        let crowd = self.eat_kw(Keyword::Crowd);
        self.expect_kw(Keyword::Table, "TABLE")?;
        let name = self.ident("table name")?;
        self.expect(&Token::LParen, "'('")?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.ident("column name")?;
            let col_crowd = self.eat_kw(Keyword::Crowd);
            let is_int = if self.eat_kw(Keyword::Int) {
                true
            } else if self.eat_kw(Keyword::Text) {
                false
            } else {
                return Err(self.err("expected column type (INT or TEXT)"));
            };
            columns.push(ColumnDecl {
                name: col_name,
                is_int,
                crowd: col_crowd || crowd,
            });
            match self.bump() {
                Some(Token::Comma) => continue,
                Some(Token::RParen) => break,
                _ => return Err(self.err("expected ',' or ')' in column list")),
            }
        }
        if columns.is_empty() {
            return Err(self.err("table needs at least one column"));
        }
        Ok(Statement::CreateTable {
            name,
            columns,
            crowd,
        })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Into, "INTO")?;
        let table = self.ident("table name")?;
        self.expect_kw(Keyword::Values, "VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen, "'('")?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal()?);
                match self.bump() {
                    Some(Token::Comma) => continue,
                    Some(Token::RParen) => break,
                    _ => return Err(self.err("expected ',' or ')' in VALUES row")),
                }
            }
            rows.push(row);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn select(&mut self) -> Result<Select> {
        self.expect_kw(Keyword::Select, "SELECT")?;
        let mut count = false;
        let projection = if self.eat_kw(Keyword::Count) {
            self.expect(&Token::LParen, "'('")?;
            self.expect(&Token::Star, "'*'")?;
            self.expect(&Token::RParen, "')'")?;
            count = true;
            Vec::new()
        } else if self.eat(&Token::Star) {
            Vec::new()
        } else {
            let mut cols = vec![self.column_ref()?];
            while self.eat(&Token::Comma) {
                cols.push(self.column_ref()?);
            }
            cols
        };
        self.expect_kw(Keyword::From, "FROM")?;
        let (first_table, first_span) = self.ident_spanned("table name")?;
        let mut from = vec![first_table];
        let mut from_spans = vec![first_span];
        if self.eat(&Token::Comma) {
            let (second_table, second_span) = self.ident_spanned("table name")?;
            from.push(second_table);
            from_spans.push(second_span);
        }

        let mut predicates = Vec::new();
        if self.eat_kw(Keyword::Where) {
            predicates.push(self.predicate()?);
            while self.eat_kw(Keyword::And) {
                predicates.push(self.predicate()?);
            }
        }

        let mut order_by = None;
        if self.eat_kw(Keyword::Order) {
            self.expect_kw(Keyword::By, "BY")?;
            if self.eat_kw(Keyword::Crowdorder) {
                self.expect(&Token::LParen, "'('")?;
                let column = self.column_ref()?;
                self.expect(&Token::RParen, "')'")?;
                order_by = Some(OrderBy::Crowd { column });
            } else {
                let column = self.column_ref()?;
                let asc = if self.eat_kw(Keyword::Desc) {
                    false
                } else {
                    self.eat_kw(Keyword::Asc);
                    true
                };
                order_by = Some(OrderBy::Machine { column, asc });
            }
        }

        let mut limit = None;
        if self.eat_kw(Keyword::Limit) {
            let span = self.span_here();
            match self.bump() {
                Some(Token::Int(n)) if n >= 0 => limit = Some(n as usize),
                _ => {
                    return Err(CrowdError::parse(
                        span.line,
                        span.col,
                        "expected non-negative integer after LIMIT",
                    ))
                }
            }
        }

        if count && (order_by.is_some() || limit.is_some()) {
            return Err(self.err("COUNT(*) cannot be combined with ORDER BY or LIMIT"));
        }
        Ok(Select {
            projection,
            count,
            from,
            from_spans,
            predicates,
            order_by,
            limit,
        })
    }

    fn predicate(&mut self) -> Result<Predicate> {
        if self.eat_kw(Keyword::Crowdequal) {
            self.expect(&Token::LParen, "'('")?;
            let left = self.expr()?;
            self.expect(&Token::Comma, "','")?;
            let right = self.expr()?;
            self.expect(&Token::RParen, "')'")?;
            return Ok(Predicate::CrowdEqual { left, right });
        }
        let left = self.expr()?;
        let op_span = self.span_here();
        let op = match self.bump() {
            Some(Token::Eq) => CompareOp::Eq,
            Some(Token::Ne) => CompareOp::Ne,
            Some(Token::Lt) => CompareOp::Lt,
            Some(Token::Le) => CompareOp::Le,
            Some(Token::Gt) => CompareOp::Gt,
            Some(Token::Ge) => CompareOp::Ge,
            _ => {
                return Err(CrowdError::parse(
                    op_span.line,
                    op_span.col,
                    "expected comparison operator",
                ))
            }
        };
        let right = self.expr()?;
        Ok(Predicate::Compare { left, op, right })
    }

    fn expr(&mut self) -> Result<Expr> {
        match self.peek() {
            Some(Token::Ident(_)) => Ok(Expr::Column(self.column_ref()?)),
            _ => Ok(Expr::Literal(self.literal()?)),
        }
    }

    fn column_ref(&mut self) -> Result<ColumnRef> {
        let (first, span) = self.ident_spanned("column name")?;
        if self.eat(&Token::Dot) {
            let col = self.ident("column name after '.'")?;
            Ok(ColumnRef::qualified(first, col).with_span(span))
        } else {
            Ok(ColumnRef::bare(first).with_span(span))
        }
    }

    fn literal(&mut self) -> Result<Value> {
        let span = self.span_here();
        match self.bump() {
            Some(Token::Int(i)) => Ok(Value::Int(i)),
            Some(Token::Str(s)) => Ok(Value::Text(s)),
            Some(Token::Keyword(Keyword::Null)) => Ok(Value::Null),
            _ => Err(CrowdError::parse(
                span.line,
                span.col,
                "expected a literal (integer, string, or NULL)",
            )),
        }
    }
}

/// Parses a single CrowdSQL statement.
pub fn parse_statement(src: &str) -> Result<Statement> {
    let toks = lex_spanned(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.statement()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_with_crowd_column() {
        let s = parse_statement(
            "CREATE TABLE products (id INT, name TEXT, category CROWD TEXT)",
        )
        .unwrap();
        match s {
            Statement::CreateTable {
                name,
                columns,
                crowd,
            } => {
                assert_eq!(name, "products");
                assert!(!crowd);
                assert_eq!(columns.len(), 3);
                assert!(!columns[0].crowd && columns[0].is_int);
                assert!(columns[2].crowd && !columns[2].is_int);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn crowd_table_marks_all_columns() {
        let s = parse_statement("CREATE CROWD TABLE profs (name TEXT, email TEXT)").unwrap();
        match s {
            Statement::CreateTable { columns, crowd, .. } => {
                assert!(crowd);
                assert!(columns.iter().all(|c| c.crowd));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_multi_row_insert_with_null() {
        let s = parse_statement("INSERT INTO t VALUES (1, 'a', NULL), (2, 'b', 'x')").unwrap();
        match s {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "t");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0][2], Value::Null);
                assert_eq!(rows[1][1], Value::text("b"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_full_select() {
        let s = parse_statement(
            "SELECT t.name, score FROM t WHERE score >= 4 AND name != 'x' \
             ORDER BY score DESC LIMIT 10",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.projection.len(), 2);
                assert_eq!(sel.from, vec!["t"]);
                assert_eq!(sel.predicates.len(), 2);
                assert_eq!(sel.limit, Some(10));
                assert!(matches!(
                    sel.order_by,
                    Some(OrderBy::Machine { asc: false, .. })
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_crowd_constructs() {
        let s = parse_statement(
            "SELECT * FROM a, b WHERE CROWDEQUAL(a.name, b.name) \
             ORDER BY CROWDORDER(a.photo) LIMIT 3",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => {
                assert!(sel.projection.is_empty());
                assert_eq!(sel.from.len(), 2);
                assert!(matches!(sel.predicates[0], Predicate::CrowdEqual { .. }));
                assert!(matches!(sel.order_by, Some(OrderBy::Crowd { .. })));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_explain() {
        let s = parse_statement("EXPLAIN SELECT * FROM t").unwrap();
        assert!(matches!(s, Statement::Explain(_)));
    }

    #[test]
    fn rejects_malformed_statements() {
        for bad in [
            "SELECT FROM t",
            "SELECT * FROM",
            "CREATE TABLE t ()",
            "INSERT INTO t VALUES 1, 2",
            "SELECT * FROM t WHERE",
            "SELECT * FROM t LIMIT 'x'",
            "DROP TABLE t",
            "SELECT * FROM t; SELECT * FROM u",
        ] {
            assert!(parse_statement(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn three_way_join_rejected_for_now() {
        // The dialect supports at most two tables in FROM.
        assert!(parse_statement("SELECT * FROM a, b, c").is_err());
    }

    #[test]
    fn parse_errors_carry_source_positions() {
        // "WHERE" at the end of line 1 with nothing after it: the error
        // points one past the last token.
        let err = parse_statement("SELECT * FROM t WHERE").unwrap_err();
        match err {
            CrowdError::Parse { line, column, .. } => {
                assert_eq!(line, 1);
                assert_eq!(column, 18, "just past the last token");
            }
            other => panic!("unexpected {other:?}"),
        }
        // A bad token on line 2 reports line 2 and its real column.
        let err = parse_statement("SELECT * FROM t\nLIMIT 'x'").unwrap_err();
        match err {
            CrowdError::Parse { line, column, .. } => {
                assert_eq!(line, 2);
                assert_eq!(column, 7, "the string literal after LIMIT");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn column_refs_carry_spans() {
        let s = parse_statement("SELECT name FROM t WHERE t.score >= 4").unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.projection[0].span, Span::at(1, 8));
                match &sel.predicates[0] {
                    Predicate::Compare { left, .. } => {
                        assert_eq!(left.span(), Some(Span::at(1, 26)));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
