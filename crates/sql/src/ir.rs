//! Typed relational plan IR for CrowdSQL.
//!
//! The binder lowers a parsed [`Select`](crate::ast::Select) into this IR:
//! names become **slots** (indexes into the concatenated FROM schema),
//! types are checked once, and every crowd operator carries its knobs —
//! `redundancy` (votes per question) and `batch` (questions per platform
//! round-trip) — explicitly, so the rewriter and the cost model reason
//! about money and latency without re-deriving anything from syntax.
//!
//! The same [`Plan`] type serves as logical and physical plan: the binder
//! emits the canonical (naive) tree, [`rewrite`](crate::rewrite) rules
//! transform it, and the crate-private `volcano` executor runs whichever tree
//! the cost model picked. `Display` renders the operator tree exactly as
//! `EXPLAIN` prints it.

use std::fmt;

use crate::ast::CompareOp;
use crate::catalog::ColumnType;
use crate::value::Value;

/// A resolved column: an index into the operator's input row plus the
/// original SQL text (kept for display only — equality uses the slot).
#[derive(Debug, Clone, PartialEq)]
pub struct SlotRef {
    /// Index into the row the operator receives.
    pub slot: usize,
    /// The reference as written in the query (`"t.c"` or `"c"`).
    pub name: String,
}

impl fmt::Display for SlotRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// A bound scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    /// A resolved column.
    Slot(SlotRef),
    /// A literal value.
    Literal(Value),
}

impl BoundExpr {
    /// The slot index, when the expression is a column.
    pub fn slot(&self) -> Option<usize> {
        match self {
            BoundExpr::Slot(s) => Some(s.slot),
            BoundExpr::Literal(_) => None,
        }
    }

    /// Rebases a column expression by `-offset` (used when a predicate is
    /// pushed from a join's output schema into its right input).
    pub fn shift_down(&mut self, offset: usize) {
        if let BoundExpr::Slot(s) = self {
            s.slot -= offset;
        }
    }
}

impl fmt::Display for BoundExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundExpr::Slot(s) => write!(f, "{s}"),
            BoundExpr::Literal(v) => write!(f, "{v}"),
        }
    }
}

/// One bound conjunct of a WHERE clause.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundPredicate {
    /// Machine-evaluable comparison.
    Compare {
        /// Left expression.
        left: BoundExpr,
        /// Operator.
        op: CompareOp,
        /// Right expression.
        right: BoundExpr,
    },
    /// `CROWDEQUAL(a, b)` — crowd-verified semantic equality.
    CrowdEqual {
        /// Left expression.
        left: BoundExpr,
        /// Right expression.
        right: BoundExpr,
    },
}

impl BoundPredicate {
    /// Slots the predicate reads.
    pub fn slots(&self) -> Vec<usize> {
        let (l, r) = match self {
            BoundPredicate::Compare { left, right, .. }
            | BoundPredicate::CrowdEqual { left, right } => (left, right),
        };
        l.slot().into_iter().chain(r.slot()).collect()
    }

    /// Rebases every column the predicate reads by `-offset`.
    pub fn shift_down(&mut self, offset: usize) {
        match self {
            BoundPredicate::Compare { left, right, .. }
            | BoundPredicate::CrowdEqual { left, right } => {
                left.shift_down(offset);
                right.shift_down(offset);
            }
        }
    }
}

impl fmt::Display for BoundPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundPredicate::Compare { left, op, right } => write!(f, "{left} {op} {right}"),
            BoundPredicate::CrowdEqual { left, right } => {
                write!(f, "CROWDEQUAL({left}, {right})")
            }
        }
    }
}

/// One crowd-fillable cell column inside a [`Plan::CrowdFill`].
#[derive(Debug, Clone, PartialEq)]
pub struct FillSlot {
    /// Index into the operator's input row.
    pub slot: usize,
    /// Owning base table.
    pub table: String,
    /// Column name in the base table.
    pub column: String,
    /// Column index in the base table (for write-back).
    pub base_index: usize,
    /// Declared type (fills parse integers for INT columns).
    pub ty: ColumnType,
}

impl fmt::Display for FillSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

/// Which input a [`Plan::CrowdJoin`] iterates as the outer (probe) side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Iterate the left input, batching questions against the right.
    Left,
    /// Iterate the right input, batching questions against the left.
    Right,
}

/// A relational operator tree. Slot indexes in every node refer to the
/// node's *input* row layout (for joins: left columns then right columns).
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Scan all rows of a base table.
    Scan {
        /// Table name.
        table: String,
        /// Number of columns the scan emits.
        width: usize,
    },
    /// Cross product of two inputs (predicates filter above).
    CrossJoin {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// Hash equi-join on a machine column pair; NULL keys never match.
    HashJoin {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Join column on the left input (slot in the joined layout).
        left_slot: SlotRef,
        /// Join column on the right input (slot in the joined layout).
        right_slot: SlotRef,
    },
    /// Machine-evaluable predicate filter.
    Filter {
        /// Input plan.
        input: Box<Plan>,
        /// Conjunctive predicates.
        predicates: Vec<BoundPredicate>,
    },
    /// Fill NULL cells of the listed crowd columns via the crowd.
    CrowdFill {
        /// Input plan.
        input: Box<Plan>,
        /// Columns to fill.
        slots: Vec<FillSlot>,
        /// Votes bought per cell.
        redundancy: u32,
        /// Fill questions per platform round-trip (0 = one ask per cell).
        batch: usize,
    },
    /// Crowd-verified predicate filter (CROWDEQUAL).
    CrowdCompare {
        /// Input plan.
        input: Box<Plan>,
        /// Conjunctive crowd predicates.
        predicates: Vec<BoundPredicate>,
        /// Votes bought per verdict.
        redundancy: u32,
    },
    /// Crowd equi-join: keeps the (left, right) pairs the crowd judges
    /// CROWDEQUAL. Output rows are left-major regardless of `outer`.
    CrowdJoin {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Left join expression (slot in the joined layout).
        left_expr: BoundExpr,
        /// Right join expression (slot in the joined layout).
        right_expr: BoundExpr,
        /// Votes bought per verdict.
        redundancy: u32,
        /// Verdict questions per platform round-trip (0 = one ask per
        /// pair; >0 = one batched round per outer row).
        batch: usize,
        /// Which side drives the probe loop (round-latency knob).
        outer: Side,
    },
    /// Machine sort.
    Sort {
        /// Input plan.
        input: Box<Plan>,
        /// Sort column.
        slot: SlotRef,
        /// Ascending?
        asc: bool,
    },
    /// Crowd-judged ordering of rows by a column's values (best first).
    CrowdSort {
        /// Input plan.
        input: Box<Plan>,
        /// Compared column.
        slot: SlotRef,
        /// When `Some(k)`, run a top-k tournament instead of a full sort.
        top_k: Option<usize>,
        /// Votes bought per comparison.
        redundancy: u32,
    },
    /// Keep the first `n` rows.
    Limit {
        /// Input plan.
        input: Box<Plan>,
        /// Row cap.
        n: usize,
    },
    /// Project the listed columns (empty = all).
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// Projected columns.
        slots: Vec<SlotRef>,
    },
    /// `COUNT(*)`: collapse the input to a single row with its row count.
    CountStar {
        /// Input plan.
        input: Box<Plan>,
    },
}

impl Plan {
    /// Number of columns this operator emits.
    pub fn width(&self) -> usize {
        match self {
            Plan::Scan { width, .. } => *width,
            Plan::CrossJoin { left, right }
            | Plan::HashJoin { left, right, .. }
            | Plan::CrowdJoin { left, right, .. } => left.width() + right.width(),
            Plan::Filter { input, .. }
            | Plan::CrowdFill { input, .. }
            | Plan::CrowdCompare { input, .. }
            | Plan::Sort { input, .. }
            | Plan::CrowdSort { input, .. }
            | Plan::Limit { input, .. } => input.width(),
            Plan::Project { input, slots } => {
                if slots.is_empty() {
                    input.width()
                } else {
                    slots.len()
                }
            }
            Plan::CountStar { .. } => 1,
        }
    }

    /// Whether the subtree contains any crowd operator.
    pub fn needs_crowd(&self) -> bool {
        match self {
            Plan::CrowdFill { .. }
            | Plan::CrowdCompare { .. }
            | Plan::CrowdJoin { .. }
            | Plan::CrowdSort { .. } => true,
            Plan::Scan { .. } => false,
            Plan::CrossJoin { left, right } | Plan::HashJoin { left, right, .. } => {
                left.needs_crowd() || right.needs_crowd()
            }
            Plan::Filter { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. }
            | Plan::Project { input, .. }
            | Plan::CountStar { input } => input.needs_crowd(),
        }
    }

    /// The operator's one-line label, exactly as `EXPLAIN` prints it.
    pub fn label(&self) -> String {
        match self {
            Plan::Scan { table, .. } => format!("Scan {table}"),
            Plan::CrossJoin { .. } => "Join (cross)".to_owned(),
            Plan::HashJoin {
                left_slot,
                right_slot,
                ..
            } => format!("HashJoin [{left_slot} = {right_slot}]"),
            Plan::Filter { predicates, .. } => {
                let ps: Vec<String> = predicates.iter().map(|p| p.to_string()).collect();
                format!("MachineFilter [{}]", ps.join(" AND "))
            }
            Plan::CrowdFill { slots, batch, .. } => {
                let cs: Vec<String> = slots.iter().map(|s| s.to_string()).collect();
                if *batch > 0 {
                    format!("CrowdFill [{}] (batch={batch})", cs.join(", "))
                } else {
                    format!("CrowdFill [{}]", cs.join(", "))
                }
            }
            Plan::CrowdCompare { predicates, .. } => {
                let ps: Vec<String> = predicates.iter().map(|p| p.to_string()).collect();
                format!("CrowdFilter [{}]", ps.join(" AND "))
            }
            Plan::CrowdJoin {
                left_expr,
                right_expr,
                batch,
                outer,
                ..
            } => {
                let side = match outer {
                    Side::Left => "left",
                    Side::Right => "right",
                };
                if *batch > 0 {
                    format!(
                        "CrowdJoin [CROWDEQUAL({left_expr}, {right_expr})] \
                         (outer={side}, batch={batch})"
                    )
                } else {
                    format!("CrowdJoin [CROWDEQUAL({left_expr}, {right_expr})] (outer={side})")
                }
            }
            Plan::Sort { slot, asc, .. } => {
                format!("MachineSort {slot} {}", if *asc { "ASC" } else { "DESC" })
            }
            Plan::CrowdSort { slot, top_k, .. } => match top_k {
                Some(k) => format!("CrowdSort {slot} (top-{k} tournament)"),
                None => format!("CrowdSort {slot} (full pairwise)"),
            },
            Plan::Limit { n, .. } => format!("Limit {n}"),
            Plan::Project { slots, .. } => {
                if slots.is_empty() {
                    "Project *".to_owned()
                } else {
                    let cs: Vec<String> = slots.iter().map(|c| c.to_string()).collect();
                    format!("Project [{}]", cs.join(", "))
                }
            }
            Plan::CountStar { .. } => "CountStar".to_owned(),
        }
    }

    fn fmt_tree(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        writeln!(f, "{}{}", "  ".repeat(indent), self.label())?;
        match self {
            Plan::CrossJoin { left, right }
            | Plan::HashJoin { left, right, .. }
            | Plan::CrowdJoin { left, right, .. } => {
                left.fmt_tree(f, indent + 1)?;
                right.fmt_tree(f, indent + 1)
            }
            Plan::Filter { input, .. }
            | Plan::CrowdFill { input, .. }
            | Plan::CrowdCompare { input, .. }
            | Plan::Sort { input, .. }
            | Plan::CrowdSort { input, .. }
            | Plan::Limit { input, .. }
            | Plan::Project { input, .. }
            | Plan::CountStar { input } => input.fmt_tree(f, indent + 1),
            Plan::Scan { .. } => Ok(()),
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_tree(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(i: usize, name: &str) -> SlotRef {
        SlotRef {
            slot: i,
            name: name.to_owned(),
        }
    }

    #[test]
    fn display_matches_explain_conventions() {
        let plan = Plan::Project {
            input: Box::new(Plan::Filter {
                input: Box::new(Plan::Scan {
                    table: "t".into(),
                    width: 2,
                }),
                predicates: vec![BoundPredicate::Compare {
                    left: BoundExpr::Slot(slot(0, "id")),
                    op: CompareOp::Ge,
                    right: BoundExpr::Literal(Value::Int(3)),
                }],
            }),
            slots: vec![slot(1, "name")],
        };
        let text = plan.to_string();
        assert_eq!(text, "Project [name]\n  MachineFilter [id >= 3]\n    Scan t\n");
    }

    #[test]
    fn width_and_crowd_detection() {
        let join = Plan::CrossJoin {
            left: Box::new(Plan::Scan {
                table: "a".into(),
                width: 2,
            }),
            right: Box::new(Plan::Scan {
                table: "b".into(),
                width: 3,
            }),
        };
        assert_eq!(join.width(), 5);
        assert!(!join.needs_crowd());
        let fill = Plan::CrowdFill {
            input: Box::new(join),
            slots: vec![FillSlot {
                slot: 4,
                table: "b".into(),
                column: "c".into(),
                base_index: 2,
                ty: ColumnType::Text,
            }],
            redundancy: 3,
            batch: 0,
        };
        assert!(fill.needs_crowd());
        assert_eq!(fill.width(), 5);
        assert!(fill.to_string().contains("CrowdFill [b.c]"));
    }

    #[test]
    fn predicate_shift_rebases_slots() {
        let mut p = BoundPredicate::CrowdEqual {
            left: BoundExpr::Slot(slot(3, "b.x")),
            right: BoundExpr::Slot(slot(4, "b.y")),
        };
        p.shift_down(3);
        assert_eq!(p.slots(), vec![0, 1]);
    }
}
