//! SQL lexer.
//!
//! Case-insensitive keywords, `'single quoted'` strings with `''` escape,
//! integers, identifiers (optionally qualified as `table.column` — the dot
//! is its own token), and the operator set of the CrowdSQL dialect.
//! `--` begins a line comment.

use crowdkit_core::error::{CrowdError, Result};

/// A lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Keyword (uppercased).
    Keyword(Keyword),
    /// Identifier (original case preserved; matching is case-sensitive for
    /// data, case-insensitive for keywords).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// String literal (unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `;`
    Semi,
}

/// Recognized keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    From,
    Where,
    And,
    Order,
    By,
    Asc,
    Desc,
    Limit,
    Create,
    Table,
    Crowd,
    Insert,
    Into,
    Values,
    Int,
    Text,
    Null,
    Crowdequal,
    Crowdorder,
    Explain,
    Count,
}

impl Keyword {
    fn from_str(s: &str) -> Option<Self> {
        Some(match s.to_ascii_uppercase().as_str() {
            "SELECT" => Keyword::Select,
            "FROM" => Keyword::From,
            "WHERE" => Keyword::Where,
            "AND" => Keyword::And,
            "ORDER" => Keyword::Order,
            "BY" => Keyword::By,
            "ASC" => Keyword::Asc,
            "DESC" => Keyword::Desc,
            "LIMIT" => Keyword::Limit,
            "CREATE" => Keyword::Create,
            "TABLE" => Keyword::Table,
            "CROWD" => Keyword::Crowd,
            "INSERT" => Keyword::Insert,
            "INTO" => Keyword::Into,
            "VALUES" => Keyword::Values,
            "INT" | "INTEGER" => Keyword::Int,
            "TEXT" | "VARCHAR" | "STRING" => Keyword::Text,
            "NULL" => Keyword::Null,
            "CROWDEQUAL" => Keyword::Crowdequal,
            "CROWDORDER" => Keyword::Crowdorder,
            "EXPLAIN" => Keyword::Explain,
            "COUNT" => Keyword::Count,
            _ => return None,
        })
    }
}

/// Tokenizes SQL text.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;
    let mut out = Vec::new();

    macro_rules! bump {
        () => {{
            let c = bytes[pos];
            pos += 1;
            if c == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            c
        }};
    }

    while pos < bytes.len() {
        let c = bytes[pos];
        match c {
            c if c.is_ascii_whitespace() => {
                bump!();
            }
            b'-' if bytes.get(pos + 1) == Some(&b'-') => {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    bump!();
                }
            }
            b'(' => {
                bump!();
                out.push(Token::LParen);
            }
            b')' => {
                bump!();
                out.push(Token::RParen);
            }
            b',' => {
                bump!();
                out.push(Token::Comma);
            }
            b'.' => {
                bump!();
                out.push(Token::Dot);
            }
            b'*' => {
                bump!();
                out.push(Token::Star);
            }
            b';' => {
                bump!();
                out.push(Token::Semi);
            }
            b'=' => {
                bump!();
                out.push(Token::Eq);
            }
            b'!' => {
                bump!();
                if pos < bytes.len() && bytes[pos] == b'=' {
                    bump!();
                    out.push(Token::Ne);
                } else {
                    return Err(CrowdError::parse(line, col, "expected '!='"));
                }
            }
            b'<' => {
                bump!();
                match bytes.get(pos) {
                    Some(b'=') => {
                        bump!();
                        out.push(Token::Le);
                    }
                    Some(b'>') => {
                        bump!();
                        out.push(Token::Ne);
                    }
                    _ => out.push(Token::Lt),
                }
            }
            b'>' => {
                bump!();
                if bytes.get(pos) == Some(&b'=') {
                    bump!();
                    out.push(Token::Ge);
                } else {
                    out.push(Token::Gt);
                }
            }
            b'\'' => {
                bump!();
                let mut s = String::new();
                loop {
                    if pos >= bytes.len() {
                        return Err(CrowdError::parse(line, col, "unterminated string literal"));
                    }
                    let ch = bump!();
                    if ch == b'\'' {
                        if bytes.get(pos) == Some(&b'\'') {
                            bump!();
                            s.push('\'');
                        } else {
                            break;
                        }
                    } else {
                        s.push(ch as char);
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                    s.push(bump!() as char);
                }
                let v: i64 = s
                    .parse()
                    .map_err(|_| CrowdError::parse(line, col, format!("integer overflow: {s}")))?;
                out.push(Token::Int(v));
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut s = String::new();
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
                {
                    s.push(bump!() as char);
                }
                match Keyword::from_str(&s) {
                    Some(kw) => out.push(Token::Keyword(kw)),
                    None => out.push(Token::Ident(s)),
                }
            }
            other => {
                return Err(CrowdError::parse(
                    line,
                    col,
                    format!("unexpected character '{}'", other as char),
                ))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_select() {
        let toks = lex("SELECT name FROM t WHERE id >= 3;").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword(Keyword::Select),
                Token::Ident("name".into()),
                Token::Keyword(Keyword::From),
                Token::Ident("t".into()),
                Token::Keyword(Keyword::Where),
                Token::Ident("id".into()),
                Token::Ge,
                Token::Int(3),
                Token::Semi,
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let toks = lex("select Select SELECT").unwrap();
        assert!(toks.iter().all(|t| *t == Token::Keyword(Keyword::Select)));
    }

    #[test]
    fn strings_unescape_doubled_quotes() {
        let toks = lex("'it''s fine'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's fine".into())]);
    }

    #[test]
    fn ne_has_two_spellings() {
        assert_eq!(lex("<>").unwrap(), vec![Token::Ne]);
        assert_eq!(lex("!=").unwrap(), vec![Token::Ne]);
    }

    #[test]
    fn comments_skipped() {
        let toks = lex("SELECT -- the projection\n1").unwrap();
        assert_eq!(
            toks,
            vec![Token::Keyword(Keyword::Select), Token::Int(1)]
        );
    }

    #[test]
    fn qualified_names_tokenize_with_dot() {
        let toks = lex("a.b").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("a".into()),
                Token::Dot,
                Token::Ident("b".into())
            ]
        );
    }

    #[test]
    fn crowd_keywords() {
        let toks = lex("CROWDEQUAL CROWDORDER CROWD").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword(Keyword::Crowdequal),
                Token::Keyword(Keyword::Crowdorder),
                Token::Keyword(Keyword::Crowd),
            ]
        );
    }

    #[test]
    fn errors_on_bad_chars_and_unterminated_strings() {
        assert!(lex("#").is_err());
        assert!(lex("'open").is_err());
        assert!(lex("!x").is_err());
    }
}
