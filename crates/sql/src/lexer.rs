//! SQL lexer.
//!
//! Case-insensitive keywords, `'single quoted'` strings with `''` escape,
//! integers, identifiers (optionally qualified as `table.column` — the dot
//! is its own token), and the operator set of the CrowdSQL dialect.
//! `--` begins a line comment.
//!
//! Every token carries its 1-based source position ([`SpannedToken`]) so
//! the parser and binder can produce diagnostics that point at the
//! offending text. [`lex`] strips the spans for callers that only need
//! the token stream.

use crowdkit_core::error::{CrowdError, Result};

/// A lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Keyword (uppercased).
    Keyword(Keyword),
    /// Identifier (original case preserved; matching is case-sensitive for
    /// data, case-insensitive for keywords).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// String literal (unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `;`
    Semi,
}

/// A token together with the 1-based line/column where it starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedToken {
    /// The token itself.
    pub tok: Token,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// 1-based column of the token's first character.
    pub col: usize,
}

/// Recognized keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    From,
    Where,
    And,
    Order,
    By,
    Asc,
    Desc,
    Limit,
    Create,
    Table,
    Crowd,
    Insert,
    Into,
    Values,
    Int,
    Text,
    Null,
    Crowdequal,
    Crowdorder,
    Explain,
    Count,
}

impl Keyword {
    fn from_str(s: &str) -> Option<Self> {
        Some(match s.to_ascii_uppercase().as_str() {
            "SELECT" => Keyword::Select,
            "FROM" => Keyword::From,
            "WHERE" => Keyword::Where,
            "AND" => Keyword::And,
            "ORDER" => Keyword::Order,
            "BY" => Keyword::By,
            "ASC" => Keyword::Asc,
            "DESC" => Keyword::Desc,
            "LIMIT" => Keyword::Limit,
            "CREATE" => Keyword::Create,
            "TABLE" => Keyword::Table,
            "CROWD" => Keyword::Crowd,
            "INSERT" => Keyword::Insert,
            "INTO" => Keyword::Into,
            "VALUES" => Keyword::Values,
            "INT" | "INTEGER" => Keyword::Int,
            "TEXT" | "VARCHAR" | "STRING" => Keyword::Text,
            "NULL" => Keyword::Null,
            "CROWDEQUAL" => Keyword::Crowdequal,
            "CROWDORDER" => Keyword::Crowdorder,
            "EXPLAIN" => Keyword::Explain,
            "COUNT" => Keyword::Count,
            _ => return None,
        })
    }
}

/// Tokenizes SQL text, keeping each token's source position.
pub fn lex_spanned(src: &str) -> Result<Vec<SpannedToken>> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;
    let mut out: Vec<SpannedToken> = Vec::new();

    macro_rules! bump {
        () => {{
            let c = bytes[pos];
            pos += 1;
            if c == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            c
        }};
    }

    while pos < bytes.len() {
        let c = bytes[pos];
        // Position of the token that starts here (whitespace/comment arms
        // never push, so recording unconditionally is harmless).
        let (tline, tcol) = (line, col);
        macro_rules! push {
            ($tok:expr) => {
                out.push(SpannedToken {
                    tok: $tok,
                    line: tline,
                    col: tcol,
                })
            };
        }
        match c {
            c if c.is_ascii_whitespace() => {
                bump!();
            }
            b'-' if bytes.get(pos + 1) == Some(&b'-') => {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    bump!();
                }
            }
            b'(' => {
                bump!();
                push!(Token::LParen);
            }
            b')' => {
                bump!();
                push!(Token::RParen);
            }
            b',' => {
                bump!();
                push!(Token::Comma);
            }
            b'.' => {
                bump!();
                push!(Token::Dot);
            }
            b'*' => {
                bump!();
                push!(Token::Star);
            }
            b';' => {
                bump!();
                push!(Token::Semi);
            }
            b'=' => {
                bump!();
                push!(Token::Eq);
            }
            b'!' => {
                bump!();
                if pos < bytes.len() && bytes[pos] == b'=' {
                    bump!();
                    push!(Token::Ne);
                } else {
                    return Err(CrowdError::parse(line, col, "expected '!='"));
                }
            }
            b'<' => {
                bump!();
                match bytes.get(pos) {
                    Some(b'=') => {
                        bump!();
                        push!(Token::Le);
                    }
                    Some(b'>') => {
                        bump!();
                        push!(Token::Ne);
                    }
                    _ => push!(Token::Lt),
                }
            }
            b'>' => {
                bump!();
                if bytes.get(pos) == Some(&b'=') {
                    bump!();
                    push!(Token::Ge);
                } else {
                    push!(Token::Gt);
                }
            }
            b'\'' => {
                bump!();
                let mut s = String::new();
                loop {
                    if pos >= bytes.len() {
                        return Err(CrowdError::parse(line, col, "unterminated string literal"));
                    }
                    let ch = bump!();
                    if ch == b'\'' {
                        if bytes.get(pos) == Some(&b'\'') {
                            bump!();
                            s.push('\'');
                        } else {
                            break;
                        }
                    } else {
                        s.push(ch as char);
                    }
                }
                push!(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                    s.push(bump!() as char);
                }
                let v: i64 = s
                    .parse()
                    .map_err(|_| CrowdError::parse(line, col, format!("integer overflow: {s}")))?;
                push!(Token::Int(v));
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut s = String::new();
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
                {
                    s.push(bump!() as char);
                }
                match Keyword::from_str(&s) {
                    Some(kw) => push!(Token::Keyword(kw)),
                    None => push!(Token::Ident(s)),
                }
            }
            other => {
                return Err(CrowdError::parse(
                    line,
                    col,
                    format!("unexpected character '{}'", other as char),
                ))
            }
        }
    }
    Ok(out)
}

/// Tokenizes SQL text, discarding source positions.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    Ok(lex_spanned(src)?.into_iter().map(|s| s.tok).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_select() {
        let toks = lex("SELECT name FROM t WHERE id >= 3;").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword(Keyword::Select),
                Token::Ident("name".into()),
                Token::Keyword(Keyword::From),
                Token::Ident("t".into()),
                Token::Keyword(Keyword::Where),
                Token::Ident("id".into()),
                Token::Ge,
                Token::Int(3),
                Token::Semi,
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let toks = lex("select Select SELECT").unwrap();
        assert!(toks.iter().all(|t| *t == Token::Keyword(Keyword::Select)));
    }

    #[test]
    fn strings_unescape_doubled_quotes() {
        let toks = lex("'it''s fine'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's fine".into())]);
    }

    #[test]
    fn ne_has_two_spellings() {
        assert_eq!(lex("<>").unwrap(), vec![Token::Ne]);
        assert_eq!(lex("!=").unwrap(), vec![Token::Ne]);
    }

    #[test]
    fn comments_skipped() {
        let toks = lex("SELECT -- the projection\n1").unwrap();
        assert_eq!(
            toks,
            vec![Token::Keyword(Keyword::Select), Token::Int(1)]
        );
    }

    #[test]
    fn qualified_names_tokenize_with_dot() {
        let toks = lex("a.b").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("a".into()),
                Token::Dot,
                Token::Ident("b".into())
            ]
        );
    }

    #[test]
    fn crowd_keywords() {
        let toks = lex("CROWDEQUAL CROWDORDER CROWD").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword(Keyword::Crowdequal),
                Token::Keyword(Keyword::Crowdorder),
                Token::Keyword(Keyword::Crowd),
            ]
        );
    }

    #[test]
    fn spans_point_at_token_starts() {
        let toks = lex_spanned("SELECT name\n  FROM t").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1), "SELECT");
        assert_eq!((toks[1].line, toks[1].col), (1, 8), "name");
        assert_eq!((toks[2].line, toks[2].col), (2, 3), "FROM");
        assert_eq!((toks[3].line, toks[3].col), (2, 8), "t");
    }

    #[test]
    fn errors_on_bad_chars_and_unterminated_strings() {
        assert!(lex("#").is_err());
        assert!(lex("'open").is_err());
        assert!(lex("!x").is_err());
    }
}
