//! Rule-based plan rewriter and cost-based plan selection.
//!
//! The rewriter transforms the binder's canonical plan with a small rule
//! catalog, applied to a fixpoint:
//!
//! - **lazy-fill** — prune [`Plan::CrowdFill`] slots nothing above reads.
//! - **predicate-pushdown** — sink machine filters below crowd operators
//!   they don't depend on and into join inputs (machine-side
//!   pre-filtering before crowd joins).
//! - **fill-pushdown** — move fills from above a cross join into the
//!   side that owns the column, so joins combine already-filled rows.
//! - **hash-join-promotion** — turn a cross-side machine equality over a
//!   cross join into a [`Plan::HashJoin`].
//! - **crowd-join** — turn `CROWDEQUAL` over a cross join into a
//!   [`Plan::CrowdJoin`].
//! - **crowd-join-reorder** — probe a crowd join from the side the
//!   [`Estimator`] predicts is smaller (fewer batching rounds).
//! - **topk-fusion** — fuse `LIMIT k` into a crowd sort as a top-k
//!   tournament.
//! - **op-batching** — set the batch knob on fill/join operators.
//!
//! Selection is cost-based: the fully rewritten plan, its unfused
//! variant, and the canonical plan are scored with the crowd-native
//! [`Estimator`], and the cheapest wins — so the optimizer's predicted
//! cost never exceeds the naive plan's.

use std::collections::BTreeSet;

use crate::ast::CompareOp;
use crate::cost::{CostWeights, Estimator};
use crate::ir::{BoundExpr, BoundPredicate, Plan, Side};

/// A rewritten plan plus the names of the rules that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct Rewritten {
    /// The chosen plan.
    pub plan: Plan,
    /// Rules applied (sorted, deduplicated). Empty when the canonical
    /// plan won.
    pub rules: Vec<&'static str>,
}

type Applied = BTreeSet<&'static str>;

/// Applies one transform to every child, rebuilding the node.
fn map_children(plan: Plan, f: &mut dyn FnMut(Plan) -> Plan) -> Plan {
    match plan {
        Plan::Scan { .. } => plan,
        Plan::CrossJoin { left, right } => Plan::CrossJoin {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
        },
        Plan::HashJoin {
            left,
            right,
            left_slot,
            right_slot,
        } => Plan::HashJoin {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            left_slot,
            right_slot,
        },
        Plan::CrowdJoin {
            left,
            right,
            left_expr,
            right_expr,
            redundancy,
            batch,
            outer,
        } => Plan::CrowdJoin {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            left_expr,
            right_expr,
            redundancy,
            batch,
            outer,
        },
        Plan::Filter { input, predicates } => Plan::Filter {
            input: Box::new(f(*input)),
            predicates,
        },
        Plan::CrowdFill {
            input,
            slots,
            redundancy,
            batch,
        } => Plan::CrowdFill {
            input: Box::new(f(*input)),
            slots,
            redundancy,
            batch,
        },
        Plan::CrowdCompare {
            input,
            predicates,
            redundancy,
        } => Plan::CrowdCompare {
            input: Box::new(f(*input)),
            predicates,
            redundancy,
        },
        Plan::Sort { input, slot, asc } => Plan::Sort {
            input: Box::new(f(*input)),
            slot,
            asc,
        },
        Plan::CrowdSort {
            input,
            slot,
            top_k,
            redundancy,
        } => Plan::CrowdSort {
            input: Box::new(f(*input)),
            slot,
            top_k,
            redundancy,
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(f(*input)),
            n,
        },
        Plan::Project { input, slots } => Plan::Project {
            input: Box::new(f(*input)),
            slots,
        },
        Plan::CountStar { input } => Plan::CountStar {
            input: Box::new(f(*input)),
        },
    }
}

/// lazy-fill: drop fill slots that nothing above the fill reads.
/// `needed` is the set of this node's output slots read above it.
fn prune_fill(plan: Plan, needed: &BTreeSet<usize>, applied: &mut Applied) -> Plan {
    match plan {
        Plan::Project { input, slots } => {
            let inner: BTreeSet<usize> = if slots.is_empty() {
                (0..input.width()).collect()
            } else {
                slots.iter().map(|s| s.slot).collect()
            };
            Plan::Project {
                input: Box::new(prune_fill(*input, &inner, applied)),
                slots,
            }
        }
        // COUNT(*) reads no columns — crowd columns no predicate touches
        // never need filling to count rows.
        Plan::CountStar { input } => Plan::CountStar {
            input: Box::new(prune_fill(*input, &BTreeSet::new(), applied)),
        },
        Plan::Filter { input, predicates } => {
            let mut n = needed.clone();
            for p in &predicates {
                n.extend(p.slots());
            }
            Plan::Filter {
                input: Box::new(prune_fill(*input, &n, applied)),
                predicates,
            }
        }
        Plan::CrowdCompare {
            input,
            predicates,
            redundancy,
        } => {
            let mut n = needed.clone();
            for p in &predicates {
                n.extend(p.slots());
            }
            Plan::CrowdCompare {
                input: Box::new(prune_fill(*input, &n, applied)),
                predicates,
                redundancy,
            }
        }
        Plan::Sort { input, slot, asc } => {
            let mut n = needed.clone();
            n.insert(slot.slot);
            Plan::Sort {
                input: Box::new(prune_fill(*input, &n, applied)),
                slot,
                asc,
            }
        }
        Plan::CrowdSort {
            input,
            slot,
            top_k,
            redundancy,
        } => {
            let mut n = needed.clone();
            n.insert(slot.slot);
            Plan::CrowdSort {
                input: Box::new(prune_fill(*input, &n, applied)),
                slot,
                top_k,
                redundancy,
            }
        }
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(prune_fill(*input, needed, applied)),
            n,
        },
        Plan::CrowdFill {
            input,
            slots,
            redundancy,
            batch,
        } => {
            let kept: Vec<_> = slots
                .iter()
                .filter(|s| needed.contains(&s.slot))
                .cloned()
                .collect();
            if kept.len() != slots.len() {
                applied.insert("lazy-fill");
            }
            let inner = prune_fill(*input, needed, applied);
            if kept.is_empty() {
                inner
            } else {
                Plan::CrowdFill {
                    input: Box::new(inner),
                    slots: kept,
                    redundancy,
                    batch,
                }
            }
        }
        Plan::CrossJoin { left, right } => {
            let lw = left.width();
            let (ln, rn) = split_needed(needed, lw);
            Plan::CrossJoin {
                left: Box::new(prune_fill(*left, &ln, applied)),
                right: Box::new(prune_fill(*right, &rn, applied)),
            }
        }
        Plan::HashJoin {
            left,
            right,
            left_slot,
            right_slot,
        } => {
            let lw = left.width();
            let mut n = needed.clone();
            n.insert(left_slot.slot);
            n.insert(right_slot.slot);
            let (ln, rn) = split_needed(&n, lw);
            Plan::HashJoin {
                left: Box::new(prune_fill(*left, &ln, applied)),
                right: Box::new(prune_fill(*right, &rn, applied)),
                left_slot,
                right_slot,
            }
        }
        Plan::CrowdJoin {
            left,
            right,
            left_expr,
            right_expr,
            redundancy,
            batch,
            outer,
        } => {
            let lw = left.width();
            let mut n = needed.clone();
            n.extend(left_expr.slot());
            n.extend(right_expr.slot());
            let (ln, rn) = split_needed(&n, lw);
            Plan::CrowdJoin {
                left: Box::new(prune_fill(*left, &ln, applied)),
                right: Box::new(prune_fill(*right, &rn, applied)),
                left_expr,
                right_expr,
                redundancy,
                batch,
                outer,
            }
        }
        Plan::Scan { .. } => plan,
    }
}

fn split_needed(needed: &BTreeSet<usize>, lw: usize) -> (BTreeSet<usize>, BTreeSet<usize>) {
    let ln = needed.iter().filter(|&&s| s < lw).copied().collect();
    let rn = needed.iter().filter(|&&s| s >= lw).map(|s| s - lw).collect();
    (ln, rn)
}

/// predicate-pushdown: sink every machine filter as deep as legality
/// allows — below crowd filters always, below fills that don't produce a
/// column it reads, and into the join input that owns all its columns.
fn pushdown(plan: Plan, applied: &mut Applied) -> Plan {
    match plan {
        Plan::Filter { input, predicates } => {
            let mut inner = pushdown(*input, applied);
            for p in predicates {
                inner = sink(p, inner, applied);
            }
            inner
        }
        other => map_children(other, &mut |c| pushdown(c, applied)),
    }
}

fn sink(pred: BoundPredicate, plan: Plan, applied: &mut Applied) -> Plan {
    match plan {
        // Slide below already-placed filters so later predicates keep
        // descending.
        Plan::Filter { input, predicates } => Plan::Filter {
            input: Box::new(sink(pred, *input, applied)),
            predicates,
        },
        Plan::CrowdFill {
            input,
            slots,
            redundancy,
            batch,
        } if !pred
            .slots()
            .iter()
            .any(|s| slots.iter().any(|fs| fs.slot == *s)) =>
        {
            applied.insert("predicate-pushdown");
            Plan::CrowdFill {
                input: Box::new(sink(pred, *input, applied)),
                slots,
                redundancy,
                batch,
            }
        }
        // A machine check is always cheaper than a crowd verdict: filter
        // first, ask the crowd about survivors.
        Plan::CrowdCompare {
            input,
            predicates,
            redundancy,
        } => {
            applied.insert("predicate-pushdown");
            Plan::CrowdCompare {
                input: Box::new(sink(pred, *input, applied)),
                predicates,
                redundancy,
            }
        }
        Plan::CrossJoin { left, right } => match sink_into_join_side(pred, *left, *right, applied)
        {
            (None, l, r) => Plan::CrossJoin {
                left: Box::new(l),
                right: Box::new(r),
            },
            (Some(pred), l, r) => wrap(
                pred,
                Plan::CrossJoin {
                    left: Box::new(l),
                    right: Box::new(r),
                },
            ),
        },
        Plan::HashJoin {
            left,
            right,
            left_slot,
            right_slot,
        } => match sink_into_join_side(pred, *left, *right, applied) {
            (None, l, r) => Plan::HashJoin {
                left: Box::new(l),
                right: Box::new(r),
                left_slot,
                right_slot,
            },
            (Some(pred), l, r) => wrap(
                pred,
                Plan::HashJoin {
                    left: Box::new(l),
                    right: Box::new(r),
                    left_slot,
                    right_slot,
                },
            ),
        },
        // Machine-side pre-filtering before a crowd join: every row
        // removed here deletes a whole stripe of paid verdicts.
        Plan::CrowdJoin {
            left,
            right,
            left_expr,
            right_expr,
            redundancy,
            batch,
            outer,
        } => match sink_into_join_side(pred, *left, *right, applied) {
            (None, l, r) => Plan::CrowdJoin {
                left: Box::new(l),
                right: Box::new(r),
                left_expr,
                right_expr,
                redundancy,
                batch,
                outer,
            },
            (Some(pred), l, r) => wrap(
                pred,
                Plan::CrowdJoin {
                    left: Box::new(l),
                    right: Box::new(r),
                    left_expr,
                    right_expr,
                    redundancy,
                    batch,
                    outer,
                },
            ),
        },
        other => wrap(pred, other),
    }
}

fn wrap(pred: BoundPredicate, input: Plan) -> Plan {
    Plan::Filter {
        input: Box::new(input),
        predicates: vec![pred],
    }
}

/// Sinks `pred` into whichever join input owns all its columns; when it
/// straddles both sides (or reads no column) the predicate comes back as
/// `Some` for the caller to keep above the join.
fn sink_into_join_side(
    pred: BoundPredicate,
    left: Plan,
    right: Plan,
    applied: &mut Applied,
) -> (Option<BoundPredicate>, Plan, Plan) {
    let lw = left.width();
    let slots = pred.slots();
    if !slots.is_empty() && slots.iter().all(|&s| s < lw) {
        applied.insert("predicate-pushdown");
        (None, sink(pred, left, applied), right)
    } else if !slots.is_empty() && slots.iter().all(|&s| s >= lw) {
        let mut p = pred;
        p.shift_down(lw);
        applied.insert("predicate-pushdown");
        (None, left, sink(p, right, applied))
    } else {
        (Some(pred), left, right)
    }
}

/// fill-pushdown: split a fill sitting on a cross join into per-side
/// fills, so join formation rules see bare joins.
fn push_fill_into_join(plan: Plan, applied: &mut Applied) -> Plan {
    match plan {
        Plan::CrowdFill {
            input,
            slots,
            redundancy,
            batch,
        } if matches!(*input, Plan::CrossJoin { .. }) => {
            let Plan::CrossJoin { left, right } = *input else {
                unreachable!("guarded by matches! above");
            };
            let lw = left.width();
            let mut ls = Vec::new();
            let mut rs = Vec::new();
            for mut s in slots {
                if s.slot < lw {
                    ls.push(s);
                } else {
                    s.slot -= lw;
                    rs.push(s);
                }
            }
            applied.insert("fill-pushdown");
            let mut l = push_fill_into_join(*left, applied);
            let mut r = push_fill_into_join(*right, applied);
            if !ls.is_empty() {
                l = Plan::CrowdFill {
                    input: Box::new(l),
                    slots: ls,
                    redundancy,
                    batch,
                };
            }
            if !rs.is_empty() {
                r = Plan::CrowdFill {
                    input: Box::new(r),
                    slots: rs,
                    redundancy,
                    batch,
                };
            }
            Plan::CrossJoin {
                left: Box::new(l),
                right: Box::new(r),
            }
        }
        other => map_children(other, &mut |c| push_fill_into_join(c, applied)),
    }
}

/// hash-join-promotion: a cross-side machine equality directly above a
/// cross join becomes the join condition of a hash join.
fn promote_hash_join(plan: Plan, applied: &mut Applied) -> Plan {
    if let Plan::Filter { input, predicates } = plan {
        if let Plan::CrossJoin { left, right } = *input {
            let lw = left.width();
            if let [BoundPredicate::Compare {
                left: BoundExpr::Slot(a),
                op: CompareOp::Eq,
                right: BoundExpr::Slot(b),
            }] = predicates.as_slice()
            {
                let (ls, rs) = if a.slot < lw && b.slot >= lw {
                    (a.clone(), b.clone())
                } else if b.slot < lw && a.slot >= lw {
                    (b.clone(), a.clone())
                } else {
                    // Same-side equality: not a join condition.
                    let rebuilt = Plan::CrossJoin { left, right };
                    return map_children(
                        Plan::Filter {
                            input: Box::new(rebuilt),
                            predicates,
                        },
                        &mut |c| promote_hash_join(c, applied),
                    );
                };
                applied.insert("hash-join-promotion");
                return Plan::HashJoin {
                    left: Box::new(promote_hash_join(*left, applied)),
                    right: Box::new(promote_hash_join(*right, applied)),
                    left_slot: ls,
                    right_slot: rs,
                };
            }
            let rebuilt = Plan::CrossJoin { left, right };
            return map_children(
                Plan::Filter {
                    input: Box::new(rebuilt),
                    predicates,
                },
                &mut |c| promote_hash_join(c, applied),
            );
        }
        return Plan::Filter {
            input: Box::new(promote_hash_join(*input, applied)),
            predicates,
        };
    }
    map_children(plan, &mut |c| promote_hash_join(c, applied))
}

/// crowd-join: `CROWDEQUAL` over a cross join becomes a crowd join.
fn form_crowd_join(plan: Plan, applied: &mut Applied) -> Plan {
    if let Plan::CrowdCompare {
        input,
        predicates,
        redundancy,
    } = plan
    {
        if let Plan::CrossJoin { left, right } = *input {
            let lw = left.width();
            if let [BoundPredicate::CrowdEqual {
                left: le,
                right: re,
            }] = predicates.as_slice()
            {
                let cross_side = match (le.slot(), re.slot()) {
                    (Some(a), Some(b)) => {
                        if a < lw && b >= lw {
                            Some((le.clone(), re.clone()))
                        } else if b < lw && a >= lw {
                            Some((re.clone(), le.clone()))
                        } else {
                            None
                        }
                    }
                    _ => None,
                };
                if let Some((left_expr, right_expr)) = cross_side {
                    applied.insert("crowd-join");
                    return Plan::CrowdJoin {
                        left: Box::new(form_crowd_join(*left, applied)),
                        right: Box::new(form_crowd_join(*right, applied)),
                        left_expr,
                        right_expr,
                        redundancy,
                        batch: 0,
                        outer: Side::Left,
                    };
                }
            }
            let rebuilt = Plan::CrossJoin { left, right };
            return map_children(
                Plan::CrowdCompare {
                    input: Box::new(rebuilt),
                    predicates,
                    redundancy,
                },
                &mut |c| form_crowd_join(c, applied),
            );
        }
        return Plan::CrowdCompare {
            input: Box::new(form_crowd_join(*input, applied)),
            predicates,
            redundancy,
        };
    }
    map_children(plan, &mut |c| form_crowd_join(c, applied))
}

/// crowd-join-reorder: probe from the side predicted to be smaller.
fn reorder_crowd_join(plan: Plan, est: &Estimator<'_>, applied: &mut Applied) -> Plan {
    match plan {
        Plan::CrowdJoin {
            left,
            right,
            left_expr,
            right_expr,
            redundancy,
            batch,
            ..
        } => {
            let outer = if est.rows(&right) < est.rows(&left) {
                applied.insert("crowd-join-reorder");
                Side::Right
            } else {
                Side::Left
            };
            Plan::CrowdJoin {
                left: Box::new(reorder_crowd_join(*left, est, applied)),
                right: Box::new(reorder_crowd_join(*right, est, applied)),
                left_expr,
                right_expr,
                redundancy,
                batch,
                outer,
            }
        }
        other => map_children(other, &mut |c| reorder_crowd_join(c, est, applied)),
    }
}

/// topk-fusion: `LIMIT k` directly above a full crowd sort turns the
/// sort into a top-k tournament.
fn fuse_topk(plan: Plan, applied: &mut Applied) -> Plan {
    match plan {
        Plan::Limit { input, n } => {
            if let Plan::CrowdSort {
                input: sort_input,
                slot,
                top_k: None,
                redundancy,
            } = *input
            {
                applied.insert("topk-fusion");
                Plan::Limit {
                    input: Box::new(Plan::CrowdSort {
                        input: Box::new(fuse_topk(*sort_input, applied)),
                        slot,
                        top_k: Some(n),
                        redundancy,
                    }),
                    n,
                }
            } else {
                Plan::Limit {
                    input: Box::new(fuse_topk(*input, applied)),
                    n,
                }
            }
        }
        other => map_children(other, &mut |c| fuse_topk(c, applied)),
    }
}

/// op-batching: set the batch knob on every fill and crowd join.
fn batch_ops(plan: Plan, batch: usize, applied: &mut Applied) -> Plan {
    match plan {
        Plan::CrowdFill {
            input,
            slots,
            redundancy,
            ..
        } => {
            applied.insert("op-batching");
            Plan::CrowdFill {
                input: Box::new(batch_ops(*input, batch, applied)),
                slots,
                redundancy,
                batch,
            }
        }
        Plan::CrowdJoin {
            left,
            right,
            left_expr,
            right_expr,
            redundancy,
            outer,
            ..
        } => {
            applied.insert("op-batching");
            Plan::CrowdJoin {
                left: Box::new(batch_ops(*left, batch, applied)),
                right: Box::new(batch_ops(*right, batch, applied)),
                left_expr,
                right_expr,
                redundancy,
                batch,
                outer,
            }
        }
        other => map_children(other, &mut |c| batch_ops(c, batch, applied)),
    }
}

/// Rewrites the canonical plan and picks the cheapest candidate under
/// the given weights. `batch` > 0 also turns on operator batching.
pub fn optimize(
    canonical: &Plan,
    est: &Estimator<'_>,
    weights: &CostWeights,
    batch: usize,
) -> Rewritten {
    let mut applied = Applied::new();
    let mut plan = canonical.clone();
    for _ in 0..16 {
        let mut next = prune_fill(plan.clone(), &BTreeSet::new(), &mut applied);
        next = pushdown(next, &mut applied);
        next = push_fill_into_join(next, &mut applied);
        next = promote_hash_join(next, &mut applied);
        next = form_crowd_join(next, &mut applied);
        if next == plan {
            break;
        }
        plan = next;
    }
    plan = reorder_crowd_join(plan, est, &mut applied);

    let mut with_fusion_rules = applied.clone();
    let fused = fuse_topk(plan.clone(), &mut with_fusion_rules);

    let finalize = |p: Plan, mut rules: Applied| {
        let p = if batch > 0 {
            batch_ops(p, batch, &mut rules)
        } else {
            p
        };
        (p, rules)
    };

    // Candidate order is the tie-break: prefer the most-rewritten plan.
    let mut candidates = vec![
        finalize(fused, with_fusion_rules),
        finalize(plan, applied),
        (canonical.clone(), Applied::new()),
    ];
    let mut best = 0;
    let mut best_score = f64::INFINITY;
    for (i, (p, _)) in candidates.iter().enumerate() {
        let score = weights.scalarize(&est.estimate(p).total);
        if score < best_score {
            best_score = score;
            best = i;
        }
    }
    let (plan, rules) = candidates.swap_remove(best);
    Rewritten {
        plan,
        rules: rules.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Statement;
    use crate::binder::bind;
    use crate::catalog::Catalog;
    use crate::cost::SelectivityMemory;
    use crate::parser::parse_statement;
    use crate::value::Value;
    use crowdkit_core::budget::CostModel;

    fn exec_ddl(c: &mut Catalog, sql: &str) {
        match parse_statement(sql).unwrap() {
            Statement::CreateTable {
                name,
                columns,
                crowd,
            } => c.create_table(&name, &columns, crowd).unwrap(),
            Statement::Insert { table, rows } => c.insert(&table, rows).unwrap(),
            other => panic!("unexpected {other:?}"),
        }
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        exec_ddl(
            &mut c,
            "CREATE TABLE products (id INT, name TEXT, category CROWD TEXT)",
        );
        exec_ddl(&mut c, "CREATE TABLE brands (bid INT, bname TEXT)");
        let rows: Vec<Vec<Value>> = (0..8)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::text(format!("p{i}")),
                    Value::Null,
                ]
            })
            .collect();
        c.insert("products", rows).unwrap();
        c.insert(
            "brands",
            (0..3)
                .map(|i| vec![Value::Int(i), Value::text(format!("b{i}"))])
                .collect(),
        )
        .unwrap();
        c
    }

    fn optimize_sql(sql: &str, catalog: &Catalog) -> Rewritten {
        let sel = match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("unexpected {other:?}"),
        };
        let bound = bind(&sel, catalog, 3).unwrap();
        let memory = SelectivityMemory::new();
        let prices = CostModel::unit();
        let est = Estimator::new(catalog, &memory, &prices, 0.9);
        optimize(&bound.plan, &est, &CostWeights::default(), 0)
    }

    #[test]
    fn optimized_plan_skips_unneeded_fill() {
        let c = catalog();
        let r = optimize_sql("SELECT name FROM products WHERE id >= 2", &c);
        let text = r.plan.to_string();
        assert!(!text.contains("CrowdFill"), "{text}");
        assert!(r.rules.contains(&"lazy-fill"), "{:?}", r.rules);
    }

    #[test]
    fn optimized_plan_orders_machine_before_fill_before_crowd() {
        let c = catalog();
        let r = optimize_sql(
            "SELECT name FROM products WHERE category = 'phone' AND id >= 6",
            &c,
        );
        let text = r.plan.to_string();
        let cat = text.find("MachineFilter [category = 'phone']").unwrap();
        let fill = text.find("CrowdFill [products.category]").unwrap();
        let id = text.find("MachineFilter [id >= 6]").unwrap();
        // Top-down rendering: the crowd-dependent filter prints first,
        // then the fill, then the machine filter that ran first.
        assert!(cat < fill && fill < id, "{text}");
        assert!(r.rules.contains(&"predicate-pushdown"), "{:?}", r.rules);
    }

    #[test]
    fn crowdequal_join_becomes_crowd_join_with_machine_prefilter() {
        let c = catalog();
        let r = optimize_sql(
            "SELECT name, bname FROM products, brands \
             WHERE CROWDEQUAL(name, bname) AND bid >= 1",
            &c,
        );
        let text = r.plan.to_string();
        assert!(
            text.contains("CrowdJoin [CROWDEQUAL(name, bname)]"),
            "{text}"
        );
        assert!(!text.contains("Join (cross)"), "{text}");
        let filt = text.find("MachineFilter [bid >= 1]").unwrap();
        let join = text.find("CrowdJoin").unwrap();
        assert!(join < filt, "pre-filter sits under the join:\n{text}");
        assert!(r.rules.contains(&"crowd-join"), "{:?}", r.rules);
        // Filtered brands (~1 row estimated) is smaller than the 8
        // products, so the join probes from the right side.
        assert!(r.rules.contains(&"crowd-join-reorder"), "{:?}", r.rules);
        assert!(text.contains("(outer=right)"), "{text}");
    }

    #[test]
    fn machine_equality_promotes_to_hash_join() {
        let c = catalog();
        let r = optimize_sql(
            "SELECT name FROM products, brands WHERE id = bid AND bid >= 1",
            &c,
        );
        let text = r.plan.to_string();
        assert!(text.contains("HashJoin [id = bid]"), "{text}");
        assert!(!text.contains("Join (cross)"), "{text}");
        assert!(r.rules.contains(&"hash-join-promotion"), "{:?}", r.rules);
    }

    #[test]
    fn same_table_equality_is_not_a_join_condition() {
        let c = catalog();
        let r = optimize_sql(
            "SELECT name FROM products, brands WHERE bname = bname",
            &c,
        );
        let text = r.plan.to_string();
        assert!(!text.contains("HashJoin"), "{text}");
        assert!(text.contains("Join (cross)"), "{text}");
    }

    #[test]
    fn topk_fusion_depends_on_cardinality() {
        let c = catalog();
        // 8 products: a top-2 tournament is predicted cheaper than the
        // 28-pair full sort.
        let r = optimize_sql(
            "SELECT name FROM products ORDER BY CROWDORDER(name) LIMIT 2",
            &c,
        );
        let text = r.plan.to_string();
        assert!(text.contains("CrowdSort name (top-2 tournament)"), "{text}");
        assert!(r.rules.contains(&"topk-fusion"), "{:?}", r.rules);

        // Without a limit the sort stays a full pairwise tournament.
        let r = optimize_sql("SELECT name FROM products ORDER BY CROWDORDER(name)", &c);
        assert!(r.plan.to_string().contains("(full pairwise)"));
    }

    #[test]
    fn batching_sets_knobs_on_fill_nodes() {
        let c = catalog();
        let sel = match parse_statement("SELECT category FROM products").unwrap() {
            Statement::Select(s) => s,
            other => panic!("unexpected {other:?}"),
        };
        let bound = bind(&sel, &c, 3).unwrap();
        let memory = SelectivityMemory::new();
        let prices = CostModel::unit();
        let est = Estimator::new(&c, &memory, &prices, 0.9);
        let r = optimize(&bound.plan, &est, &CostWeights::default(), 4);
        assert!(r.plan.to_string().contains("(batch=4)"), "{}", r.plan);
        assert!(r.rules.contains(&"op-batching"), "{:?}", r.rules);
    }

    #[test]
    fn rewrites_are_deterministic_and_never_predicted_worse() {
        let c = catalog();
        let memory = SelectivityMemory::new();
        let prices = CostModel::unit();
        let est = Estimator::new(&c, &memory, &prices, 0.9);
        for sql in [
            "SELECT name FROM products WHERE id >= 2",
            "SELECT * FROM products WHERE category = 'x'",
            "SELECT name, bname FROM products, brands WHERE CROWDEQUAL(category, bname)",
            "SELECT COUNT(*) FROM products",
            "SELECT name FROM products ORDER BY CROWDORDER(category) LIMIT 2",
        ] {
            let sel = match parse_statement(sql).unwrap() {
                Statement::Select(s) => s,
                other => panic!("unexpected {other:?}"),
            };
            let bound = bind(&sel, &c, 3).unwrap();
            let a = optimize(&bound.plan, &est, &CostWeights::default(), 0);
            let b = optimize(&bound.plan, &est, &CostWeights::default(), 0);
            assert_eq!(a, b, "optimizer must be deterministic for {sql}");
            let naive = est.estimate(&bound.plan).total;
            let opt = est.estimate(&a.plan).total;
            assert!(
                opt.spend <= naive.spend + 1e-9,
                "{sql}: predicted {} > naive {}",
                opt.spend,
                naive.spend
            );
        }
    }
}
