//! Plan execution against a crowd oracle.
//!
//! The executor walks a [`PlanNode`] tree bottom-up. Machine operators are
//! ordinary relational evaluation; crowd operators buy answers through the
//! [`CrowdOracle`] using tasks rendered by a [`TaskFactory`]:
//!
//! * **CrowdFill** — `votes` open-text answers per NULL cell, reconciled
//!   by normalized plurality; reconciled values are written back to the
//!   base table so later queries reuse them (CrowdDB's behaviour).
//! * **CrowdFilter** — `votes` binary judgements per `CROWDEQUAL`,
//!   majority decides; verdicts are cached per value pair within a query.
//! * **CrowdSort** — full pairwise comparisons ranked by Copeland score,
//!   or a top-k tournament when the optimizer pushed a LIMIT into it.

use std::collections::{BTreeMap, HashMap};

use crowdkit_core::answer::Preference;
use crowdkit_core::ask::AskRequest;
use crowdkit_core::error::{CrowdError, Result};
use crowdkit_core::ids::{IdGen, TaskId};
use crowdkit_core::task::Task;
use crowdkit_core::traits::CrowdOracle;
use crowdkit_obs::{self as obs, Event};
use crowdkit_ops::sort::rankers::copeland;
use crowdkit_ops::sort::tournament::crowd_top_k;
use crowdkit_ops::sort::{collect_comparisons, order_by_scores, ComparisonGraph};

use crate::ast::{ColumnRef, CompareOp, Expr, Predicate, Statement};
use crate::catalog::{Catalog, ColumnType};
use crate::parser::parse_statement;
use crate::plan::{optimize, plan_query, PlanNode};
use crate::value::Value;

/// Renders the crowd-facing tasks for the three crowd operators. In
/// simulation, implementations attach the latent ground truth so simulated
/// workers can answer; against a live platform they would render HTML.
pub trait TaskFactory {
    /// Task asking for the value of `column` for the given row of `table`.
    fn fill_task(&mut self, id: TaskId, table: &str, row: &[Value], column: &str) -> Task;

    /// Binary task asking whether `left` and `right` denote the same thing
    /// (label 1 = yes).
    fn equal_task(&mut self, id: TaskId, left: &Value, right: &Value) -> Task;

    /// Pairwise task asking which of `left`/`right` ranks higher
    /// (`Preference::Left` = left).
    fn compare_task(&mut self, id: TaskId, left: &Value, right: &Value) -> Task;
}

/// Crowd spend of one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Total crowd answers purchased.
    pub questions: u64,
    /// NULL cells filled.
    pub cells_filled: u64,
    /// CROWDEQUAL verdicts bought (cache misses).
    pub equal_checks: u64,
    /// Pairwise comparison matches played.
    pub comparisons: u64,
    /// Rows returned.
    pub rows_out: usize,
}

/// One column of an intermediate result.
#[derive(Debug, Clone)]
struct ColBinding {
    table: String,
    column: String,
    base_index: usize,
    ty: ColumnType,
}

/// An intermediate row: values plus base-table provenance for write-back.
#[derive(Debug, Clone)]
struct ExecRow {
    values: Vec<Value>,
    /// `(table, base row index)` per FROM table contributing to this row.
    prov: Vec<(String, usize)>,
}

struct CrowdCtx<'a> {
    oracle: &'a dyn CrowdOracle,
    factory: &'a mut dyn TaskFactory,
    votes: u32,
    ids: IdGen,
    stats: QueryStats,
    equal_cache: HashMap<(String, String), bool>,
    writebacks: Vec<(String, usize, usize, Value)>,
}

/// Emits the `sql.node` telemetry event for one crowd operator, charging it
/// the crowd answers bought while it ran (`q_before` is the oracle's
/// delivered count sampled before the operator, `None` when telemetry is
/// off).
fn obs_node(c: &CrowdCtx<'_>, node: &'static str, rows_in: usize, rows_out: usize, q_before: Option<u64>) {
    if let Some(q) = q_before {
        obs::record(
            Event::new("sql.node")
                .str("node", node)
                .u64("rows_in", rows_in as u64)
                .u64("rows_out", rows_out as u64)
                .u64("questions", c.oracle.answers_delivered().saturating_sub(q)),
        );
    }
}

/// A CrowdSQL session: catalog plus statement execution.
#[derive(Debug, Default)]
pub struct Session {
    catalog: Catalog,
}

impl Session {
    /// An empty session.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read access to the catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Executes a CREATE TABLE or INSERT statement.
    pub fn execute_ddl(&mut self, sql: &str) -> Result<()> {
        match parse_statement(sql)? {
            Statement::CreateTable {
                name,
                columns,
                crowd,
            } => self.catalog.create_table(&name, &columns, crowd),
            Statement::Insert { table, rows } => self.catalog.insert(&table, rows),
            _ => Err(CrowdError::Semantic(
                "expected CREATE TABLE or INSERT".into(),
            )),
        }
    }

    /// Renders the plan of a SELECT (optimized or naive) without running
    /// it.
    pub fn explain(&self, sql: &str, optimized: bool) -> Result<String> {
        let select = match parse_statement(sql)? {
            Statement::Select(s) | Statement::Explain(s) => s,
            _ => return Err(CrowdError::Semantic("expected a SELECT".into())),
        };
        let plan = if optimized {
            optimize(&select, &self.catalog)?
        } else {
            plan_query(&select, &self.catalog)?
        };
        Ok(plan.to_string())
    }

    /// Runs a SELECT that must not require the crowd. Fails with
    /// [`CrowdError::Unsupported`] if the plan contains a crowd operator.
    pub fn query_machine(&mut self, sql: &str) -> Result<Vec<Vec<Value>>> {
        let select = match parse_statement(sql)? {
            Statement::Select(s) => s,
            _ => return Err(CrowdError::Semantic("expected a SELECT".into())),
        };
        let plan = optimize(&select, &self.catalog)?;
        let (_, rows, _) = self.exec(&plan, None)?;
        Ok(rows.into_iter().map(|r| r.values).collect())
    }

    /// Runs a SELECT, buying crowd answers as the plan demands.
    ///
    /// `optimized` selects between the optimized and the naive plan —
    /// experiment E10 runs both and compares `QueryStats::questions`.
    pub fn query_crowd<O, F>(
        &mut self,
        sql: &str,
        oracle: &O,
        factory: &mut F,
        votes: u32,
        optimized: bool,
    ) -> Result<(Vec<Vec<Value>>, QueryStats)>
    where
        O: CrowdOracle,
        F: TaskFactory,
    {
        let select = match parse_statement(sql)? {
            Statement::Select(s) => s,
            _ => return Err(CrowdError::Semantic("expected a SELECT".into())),
        };
        let plan = if optimized {
            optimize(&select, &self.catalog)?
        } else {
            plan_query(&select, &self.catalog)?
        };
        let before = oracle.answers_delivered();
        let ctx = CrowdCtx {
            oracle,
            factory,
            votes: votes.max(1),
            ids: IdGen::new(),
            stats: QueryStats::default(),
            equal_cache: HashMap::new(),
            writebacks: Vec::new(),
        };
        let (_, rows, mut ctx) = self.exec(&plan, Some(ctx))?;
        // Persist purchased cells so later queries reuse them.
        let mut stats = QueryStats::default();
        if let Some(c) = ctx.take() {
            for (table, row, col, value) in c.writebacks {
                self.catalog.write_cell(&table, row, col, value)?;
            }
            stats = c.stats;
        }
        stats.questions = oracle.answers_delivered() - before;
        stats.rows_out = rows.len();
        if obs::enabled() {
            obs::record(
                Event::new("sql.query")
                    .u64("optimized", u64::from(optimized))
                    .u64("questions", stats.questions)
                    .u64("cells_filled", stats.cells_filled)
                    .u64("equal_checks", stats.equal_checks)
                    .u64("comparisons", stats.comparisons)
                    .u64("rows_out", stats.rows_out as u64),
            );
        }
        Ok((rows.into_iter().map(|r| r.values).collect(), stats))
    }

    /// Recursive plan execution. `ctx = None` means machine-only; hitting
    /// a crowd operator then fails.
    #[allow(clippy::type_complexity)]
    fn exec<'a>(
        &self,
        plan: &PlanNode,
        ctx: Option<CrowdCtx<'a>>,
    ) -> Result<(Vec<ColBinding>, Vec<ExecRow>, Option<CrowdCtx<'a>>)> {
        match plan {
            PlanNode::Scan { table } => {
                let def = self.catalog.table(table)?;
                let schema: Vec<ColBinding> = def
                    .columns
                    .iter()
                    .enumerate()
                    .map(|(i, c)| ColBinding {
                        table: table.clone(),
                        column: c.name.clone(),
                        base_index: i,
                        ty: c.ty,
                    })
                    .collect();
                let rows = self
                    .catalog
                    .rows(table)?
                    .iter()
                    .enumerate()
                    .map(|(i, r)| ExecRow {
                        values: r.clone(),
                        prov: vec![(table.clone(), i)],
                    })
                    .collect();
                Ok((schema, rows, ctx))
            }
            PlanNode::Join { left, right } => {
                let (ls, lr, ctx) = self.exec(left, ctx)?;
                let (rs, rr, ctx) = self.exec(right, ctx)?;
                let mut schema = ls;
                schema.extend(rs);
                let mut rows = Vec::with_capacity(lr.len() * rr.len());
                for a in &lr {
                    for b in &rr {
                        let mut values = a.values.clone();
                        values.extend(b.values.iter().cloned());
                        let mut prov = a.prov.clone();
                        prov.extend(b.prov.iter().cloned());
                        rows.push(ExecRow { values, prov });
                    }
                }
                Ok((schema, rows, ctx))
            }
            PlanNode::HashJoin {
                left,
                right,
                left_col,
                right_col,
            } => {
                let (ls, lr, ctx) = self.exec(left, ctx)?;
                let (rs, rr, ctx) = self.exec(right, ctx)?;
                let li = resolve_in_schema(left_col, &ls)?;
                let ri = resolve_in_schema(right_col, &rs)?;
                // Build side: the right input, keyed by join value.
                // Hash order is safe here: the build table is only probed
                // by key, and output row order follows the probe side.
                let mut table: HashMap<&Value, Vec<&ExecRow>> = HashMap::new();
                for b in &rr {
                    if !b.values[ri].is_null() {
                        table.entry(&b.values[ri]).or_default().push(b);
                    }
                }
                let mut schema = ls;
                schema.extend(rs.iter().cloned());
                let mut rows = Vec::new();
                for a in &lr {
                    if a.values[li].is_null() {
                        continue; // NULL keys never match
                    }
                    if let Some(matches) = table.get(&a.values[li]) {
                        for b in matches {
                            let mut values = a.values.clone();
                            values.extend(b.values.iter().cloned());
                            let mut prov = a.prov.clone();
                            prov.extend(b.prov.iter().cloned());
                            rows.push(ExecRow { values, prov });
                        }
                    }
                }
                Ok((schema, rows, ctx))
            }
            PlanNode::MachineFilter { input, predicates } => {
                let (schema, rows, ctx) = self.exec(input, ctx)?;
                let mut kept = Vec::with_capacity(rows.len());
                for row in rows {
                    let mut pass = true;
                    for p in predicates {
                        if !eval_machine_predicate(p, &schema, &row)? {
                            pass = false;
                            break;
                        }
                    }
                    if pass {
                        kept.push(row);
                    }
                }
                Ok((schema, kept, ctx))
            }
            PlanNode::CrowdFill { input, columns } => {
                let (schema, mut rows, ctx) = self.exec(input, ctx)?;
                let mut c = ctx.ok_or(CrowdError::Unsupported(
                    "plan requires the crowd (CrowdFill) but no oracle was provided",
                ))?;
                let q_before = obs::enabled().then(|| c.oracle.answers_delivered());
                for (table, column) in columns {
                    let Some(idx) = schema.iter().position(|b| {
                        &b.table == table && &b.column == column
                    }) else {
                        continue;
                    };
                    let ty = schema[idx].ty;
                    let base_index = schema[idx].base_index;
                    for row in &mut rows {
                        if !row.values[idx].is_null() {
                            continue;
                        }
                        let Some(&(_, base_row)) = row
                            .prov
                            .iter()
                            .find(|(t, _)| t == table)
                        else {
                            continue;
                        };
                        let value =
                            fill_cell(&mut c, table, &row.values, column, ty)?;
                        if let Some(v) = value {
                            row.values[idx] = v.clone();
                            c.writebacks.push((table.clone(), base_row, base_index, v));
                            c.stats.cells_filled += 1;
                        }
                    }
                }
                obs_node(&c, "CrowdFill", rows.len(), rows.len(), q_before);
                Ok((schema, rows, Some(c)))
            }
            PlanNode::CrowdFilter { input, predicates } => {
                let (schema, rows, ctx) = self.exec(input, ctx)?;
                let mut c = ctx.ok_or(CrowdError::Unsupported(
                    "plan requires the crowd (CrowdFilter) but no oracle was provided",
                ))?;
                let q_before = obs::enabled().then(|| c.oracle.answers_delivered());
                let rows_in = rows.len();
                let mut kept = Vec::with_capacity(rows.len());
                for row in rows {
                    let mut pass = true;
                    for p in predicates {
                        let Predicate::CrowdEqual { left, right } = p else {
                            return Err(CrowdError::Execution(
                                "machine predicate in CrowdFilter".into(),
                            ));
                        };
                        let lv = eval_expr(left, &schema, &row)?;
                        let rv = eval_expr(right, &schema, &row)?;
                        if lv.is_null() || rv.is_null() {
                            pass = false;
                            break;
                        }
                        if !crowd_equal(&mut c, &lv, &rv)? {
                            pass = false;
                            break;
                        }
                    }
                    if pass {
                        kept.push(row);
                    }
                }
                obs_node(&c, "CrowdFilter", rows_in, kept.len(), q_before);
                Ok((schema, kept, Some(c)))
            }
            PlanNode::MachineSort { input, column, asc } => {
                let (schema, mut rows, ctx) = self.exec(input, ctx)?;
                let idx = resolve_in_schema(column, &schema)?;
                rows.sort_by(|a, b| {
                    let ord = a.values[idx]
                        .compare(&b.values[idx])
                        .unwrap_or(std::cmp::Ordering::Greater); // NULLs last
                    if *asc {
                        ord
                    } else {
                        ord.reverse()
                    }
                });
                Ok((schema, rows, ctx))
            }
            PlanNode::CrowdSort {
                input,
                column,
                top_k,
            } => {
                let (schema, rows, ctx) = self.exec(input, ctx)?;
                if rows.len() <= 1 {
                    return Ok((schema, rows, ctx));
                }
                let mut c = ctx.ok_or(CrowdError::Unsupported(
                    "plan requires the crowd (CrowdSort) but no oracle was provided",
                ))?;
                let q_before = obs::enabled().then(|| c.oracle.answers_delivered());
                let idx = resolve_in_schema(column, &schema)?;
                let values: Vec<Value> =
                    rows.iter().map(|r| r.values[idx].clone()).collect();
                let order = crowd_sort_order(&mut c, &values, *top_k)?;
                let mut out = Vec::with_capacity(order.len());
                for i in order {
                    out.push(rows[i].clone());
                }
                obs_node(&c, "CrowdSort", rows.len(), out.len(), q_before);
                Ok((schema, out, Some(c)))
            }
            PlanNode::Limit { input, n } => {
                let (schema, mut rows, ctx) = self.exec(input, ctx)?;
                rows.truncate(*n);
                Ok((schema, rows, ctx))
            }
            PlanNode::CountStar { input } => {
                let (_, rows, ctx) = self.exec(input, ctx)?;
                let schema = vec![ColBinding {
                    table: String::new(),
                    column: "count".to_owned(),
                    base_index: 0,
                    ty: ColumnType::Int,
                }];
                let out = vec![ExecRow {
                    values: vec![Value::Int(rows.len() as i64)],
                    prov: Vec::new(),
                }];
                Ok((schema, out, ctx))
            }
            PlanNode::Project { input, columns } => {
                let (schema, rows, ctx) = self.exec(input, ctx)?;
                if columns.is_empty() {
                    return Ok((schema, rows, ctx));
                }
                let indices: Vec<usize> = columns
                    .iter()
                    .map(|c| resolve_in_schema(c, &schema))
                    .collect::<Result<_>>()?;
                let out_schema: Vec<ColBinding> =
                    indices.iter().map(|&i| schema[i].clone()).collect();
                let out_rows = rows
                    .into_iter()
                    .map(|r| ExecRow {
                        values: indices.iter().map(|&i| r.values[i].clone()).collect(),
                        prov: r.prov,
                    })
                    .collect();
                Ok((out_schema, out_rows, ctx))
            }
        }
    }
}

/// Resolves a column reference within an executor schema.
fn resolve_in_schema(c: &ColumnRef, schema: &[ColBinding]) -> Result<usize> {
    let matches: Vec<usize> = schema
        .iter()
        .enumerate()
        .filter(|(_, b)| {
            b.column == c.column && c.table.as_ref().map(|t| t == &b.table).unwrap_or(true)
        })
        .map(|(i, _)| i)
        .collect();
    match matches.as_slice() {
        [] => Err(CrowdError::Semantic(format!("unknown column '{c}'"))),
        [one] => Ok(*one),
        _ => Err(CrowdError::Semantic(format!("ambiguous column '{c}'"))),
    }
}

fn eval_expr(e: &Expr, schema: &[ColBinding], row: &ExecRow) -> Result<Value> {
    match e {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column(c) => Ok(row.values[resolve_in_schema(c, schema)?].clone()),
    }
}

/// SQL WHERE semantics: NULL comparisons drop the row.
fn eval_machine_predicate(p: &Predicate, schema: &[ColBinding], row: &ExecRow) -> Result<bool> {
    let Predicate::Compare { left, op, right } = p else {
        return Err(CrowdError::Execution(
            "crowd predicate in MachineFilter".into(),
        ));
    };
    let lv = eval_expr(left, schema, row)?;
    let rv = eval_expr(right, schema, row)?;
    Ok(match op {
        CompareOp::Eq => lv.sql_eq(&rv).unwrap_or(false),
        CompareOp::Ne => lv.sql_eq(&rv).map(|b| !b).unwrap_or(false),
        CompareOp::Lt | CompareOp::Le | CompareOp::Gt | CompareOp::Ge => {
            match lv.compare(&rv) {
                None => false,
                Some(ord) => match op {
                    CompareOp::Lt => ord.is_lt(),
                    CompareOp::Le => ord.is_le(),
                    CompareOp::Gt => ord.is_gt(),
                    CompareOp::Ge => ord.is_ge(),
                    _ => unreachable!(),
                },
            }
        }
    })
}

/// Buys and reconciles one fill. Returns `None` on tie/no-answer (the cell
/// stays NULL).
fn fill_cell(
    c: &mut CrowdCtx<'_>,
    table: &str,
    row_values: &[Value],
    column: &str,
    ty: ColumnType,
) -> Result<Option<Value>> {
    let task = c.factory.fill_task(c.ids.next_task(), table, row_values, column);
    // Key-ordered maps: the plurality fold below iterates them, and
    // iteration order must never depend on hashing (determinism contract).
    let mut counts: BTreeMap<String, u32> = BTreeMap::new();
    let mut surface: BTreeMap<String, String> = BTreeMap::new();
    let out = c
        .oracle
        .ask(&AskRequest::new(&task).with_redundancy(c.votes as usize))?;
    if let Some(e) = &out.shortfall {
        if !e.is_resource_exhaustion() {
            return Err(e.clone());
        }
    }
    for a in &out.answers {
        if let Some(text) = a.value.as_text() {
            let norm = text.trim().to_lowercase();
            if norm.is_empty() {
                continue;
            }
            surface
                .entry(norm.clone())
                .or_insert_with(|| text.trim().to_owned());
            *counts.entry(norm).or_insert(0) += 1;
        }
    }
    let mut tallies: Vec<(String, u32)> = counts.into_iter().collect();
    tallies.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let winner = match tallies.as_slice() {
        [] => return Ok(None),
        [(_, c1), (_, c2), ..] if c1 == c2 => return Ok(None),
        [(top, _), ..] => surface[top].clone(),
    };
    Ok(Some(match ty {
        ColumnType::Int => match winner.parse::<i64>() {
            Ok(i) => Value::Int(i),
            Err(_) => return Ok(None),
        },
        ColumnType::Text => Value::Text(winner),
    }))
}

/// Buys (or reuses) one CROWDEQUAL verdict.
fn crowd_equal(c: &mut CrowdCtx<'_>, left: &Value, right: &Value) -> Result<bool> {
    let mut key = (left.display_raw(), right.display_raw());
    if key.0 > key.1 {
        std::mem::swap(&mut key.0, &mut key.1);
    }
    if let Some(&v) = c.equal_cache.get(&key) {
        return Ok(v);
    }
    let task = c.factory.equal_task(c.ids.next_task(), left, right);
    let mut yes = 0u32;
    let mut no = 0u32;
    let out = c
        .oracle
        .ask(&AskRequest::new(&task).with_redundancy(c.votes as usize))?;
    if let Some(e) = &out.shortfall {
        if !e.is_resource_exhaustion() {
            return Err(e.clone());
        }
    }
    for a in &out.answers {
        match a.value.as_choice() {
            Some(1) => yes += 1,
            _ => no += 1,
        }
    }
    let verdict = yes > no;
    c.equal_cache.insert(key, verdict);
    c.stats.equal_checks += 1;
    Ok(verdict)
}

/// Produces the best-first row ordering for a crowd sort.
fn crowd_sort_order(
    c: &mut CrowdCtx<'_>,
    values: &[Value],
    top_k: Option<usize>,
) -> Result<Vec<usize>> {
    let n = values.len();
    let votes = c.votes;
    match top_k {
        Some(k) if k < n => {
            let k = k.max(1);
            let CrowdCtx {
                oracle,
                factory,
                stats,
                ..
            } = c;
            let out = crowd_top_k(*oracle, n, k, votes, |id, a, b| {
                factory.compare_task(id, &values[a], &values[b])
            })?;
            stats.comparisons += out.matches as u64;
            Ok(out.winners)
        }
        _ => {
            // Full pairwise comparison graph ranked by Copeland score.
            let pairs: Vec<(usize, usize)> = (0..n)
                .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
                .collect();
            let CrowdCtx {
                oracle,
                factory,
                ids: _,
                stats,
                ..
            } = c;
            let graph: ComparisonGraph =
                collect_comparisons(*oracle, n, &pairs, votes, |id, a, b| {
                    factory.compare_task(id, &values[a], &values[b])
                })?;
            stats.comparisons += pairs.len() as u64;
            Ok(order_by_scores(&copeland(&graph)))
        }
    }
}

/// Builds a [`TaskFactory`] from three closures — handy for tests and
/// simulations.
pub struct FnTaskFactory<F1, F2, F3> {
    fill: F1,
    equal: F2,
    compare: F3,
}

impl<F1, F2, F3> FnTaskFactory<F1, F2, F3>
where
    F1: FnMut(TaskId, &str, &[Value], &str) -> Task,
    F2: FnMut(TaskId, &Value, &Value) -> Task,
    F3: FnMut(TaskId, &Value, &Value) -> Task,
{
    /// Wraps the three task builders.
    pub fn new(fill: F1, equal: F2, compare: F3) -> Self {
        Self {
            fill,
            equal,
            compare,
        }
    }
}

impl<F1, F2, F3> TaskFactory for FnTaskFactory<F1, F2, F3>
where
    F1: FnMut(TaskId, &str, &[Value], &str) -> Task,
    F2: FnMut(TaskId, &Value, &Value) -> Task,
    F3: FnMut(TaskId, &Value, &Value) -> Task,
{
    fn fill_task(&mut self, id: TaskId, table: &str, row: &[Value], column: &str) -> Task {
        (self.fill)(id, table, row, column)
    }

    fn equal_task(&mut self, id: TaskId, left: &Value, right: &Value) -> Task {
        (self.equal)(id, left, right)
    }

    fn compare_task(&mut self, id: TaskId, left: &Value, right: &Value) -> Task {
        (self.compare)(id, left, right)
    }
}

/// A [`TaskFactory`] for simulations: renders prompts and attaches ground
/// truth pulled from caller-provided closures.
pub struct SimTaskFactory<TF, EF, CF>
where
    TF: FnMut(&str, &[Value], &str) -> String,
    EF: FnMut(&Value, &Value) -> bool,
    CF: FnMut(&Value, &Value) -> bool,
{
    /// Ground-truth fill value for `(table, row, column)`.
    pub fill_truth: TF,
    /// Ground-truth equality for `(left, right)`.
    pub equal_truth: EF,
    /// Ground truth "left ranks higher" for `(left, right)`.
    pub left_wins_truth: CF,
}

impl<TF, EF, CF> TaskFactory for SimTaskFactory<TF, EF, CF>
where
    TF: FnMut(&str, &[Value], &str) -> String,
    EF: FnMut(&Value, &Value) -> bool,
    CF: FnMut(&Value, &Value) -> bool,
{
    fn fill_task(&mut self, id: TaskId, table: &str, row: &[Value], column: &str) -> Task {
        use crowdkit_core::answer::AnswerValue;
        use crowdkit_core::task::TaskKind;
        let truth = (self.fill_truth)(table, row, column);
        Task::new(
            id,
            TaskKind::Fill {
                attribute: column.to_owned(),
            },
            format!("value of {column} for a row of {table}"),
        )
        .with_truth(AnswerValue::Text(truth))
    }

    fn equal_task(&mut self, id: TaskId, left: &Value, right: &Value) -> Task {
        use crowdkit_core::answer::AnswerValue;
        let same = (self.equal_truth)(left, right);
        Task::binary(
            id,
            format!("is '{}' the same as '{}'?", left.display_raw(), right.display_raw()),
        )
        .with_truth(AnswerValue::Choice(same as u32))
    }

    fn compare_task(&mut self, id: TaskId, left: &Value, right: &Value) -> Task {
        use crowdkit_core::answer::AnswerValue;
        use crowdkit_core::ids::ItemId;
        let left_wins = (self.left_wins_truth)(left, right);
        Task::pairwise(id, ItemId::new(0), ItemId::new(1))
            .with_truth(AnswerValue::Prefer(if left_wins {
                Preference::Left
            } else {
                Preference::Right
            }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdkit_core::answer::Answer;
    use crowdkit_core::budget::Budget;
    use crowdkit_core::ids::WorkerId;

    /// Oracle answering every task per its attached truth.
    struct TruthfulOracle {
        budget: std::cell::RefCell<Budget>,
        delivered: std::cell::Cell<u64>,
    }

    impl TruthfulOracle {
        fn new(limit: f64) -> Self {
            Self {
                budget: std::cell::RefCell::new(Budget::new(limit)),
                delivered: std::cell::Cell::new(0),
            }
        }
    }

    impl CrowdOracle for TruthfulOracle {
        fn ask_one(&self, task: &Task) -> Result<Answer> {
            self.budget.borrow_mut().debit(1.0)?;
            let w = WorkerId::new(self.delivered.get());
            self.delivered.set(self.delivered.get() + 1);
            Ok(Answer::bare(task.id, w, task.truth.clone().unwrap()))
        }
        fn remaining_budget(&self) -> Option<f64> {
            Some(self.budget.borrow().remaining())
        }
        fn answers_delivered(&self) -> u64 {
            self.delivered.get()
        }
    }

    /// Categories ground truth keyed by product id (row[0]).
    fn factory() -> impl TaskFactory {
        SimTaskFactory {
            fill_truth: |_table: &str, row: &[Value], _col: &str| -> String {
                match row[0] {
                    Value::Int(i) if i % 2 == 0 => "phone".to_owned(),
                    _ => "laptop".to_owned(),
                }
            },
            equal_truth: |l: &Value, r: &Value| -> bool {
                // Semantic equality: case-insensitive text match.
                l.display_raw().eq_ignore_ascii_case(&r.display_raw())
            },
            left_wins_truth: |l: &Value, r: &Value| -> bool {
                // "Better" = lexicographically larger.
                l.display_raw() > r.display_raw()
            },
        }
    }

    fn session_with_products(n: i64) -> Session {
        let mut s = Session::new();
        s.execute_ddl("CREATE TABLE products (id INT, name TEXT, category CROWD TEXT)")
            .unwrap();
        for i in 0..n {
            s.execute_ddl(&format!(
                "INSERT INTO products VALUES ({i}, 'prod{i}', NULL)"
            ))
            .unwrap();
        }
        s
    }

    #[test]
    fn machine_query_end_to_end() {
        let mut s = session_with_products(5);
        let rows = s
            .query_machine("SELECT name FROM products WHERE id >= 3 ORDER BY id DESC")
            .unwrap();
        assert_eq!(
            rows,
            vec![vec![Value::text("prod4")], vec![Value::text("prod3")]]
        );
    }

    #[test]
    fn machine_query_rejects_crowd_plans() {
        let mut s = session_with_products(2);
        let err = s
            .query_machine("SELECT * FROM products WHERE category = 'phone'")
            .unwrap_err();
        assert!(matches!(err, CrowdError::Unsupported(_)));
    }

    #[test]
    fn crowd_fill_answers_and_writes_back() {
        let mut s = session_with_products(4);
        let oracle = TruthfulOracle::new(1e9);
        let mut f = factory();
        let (rows, stats) = s
            .query_crowd(
                "SELECT name FROM products WHERE category = 'phone'",
                &oracle,
                &mut f,
                3,
                true,
            )
            .unwrap();
        // Even ids are phones: 0, 2.
        assert_eq!(
            rows,
            vec![vec![Value::text("prod0")], vec![Value::text("prod2")]]
        );
        assert_eq!(stats.cells_filled, 4);
        assert_eq!(stats.questions, 12, "4 cells × 3 votes");
        // Write-back: rerunning the query costs nothing.
        let (_, stats2) = s
            .query_crowd(
                "SELECT name FROM products WHERE category = 'phone'",
                &oracle,
                &mut f,
                3,
                true,
            )
            .unwrap();
        assert_eq!(stats2.questions, 0, "cells persisted in the catalog");
    }

    #[test]
    fn optimized_plan_cheaper_than_naive() {
        // Machine predicate keeps 2 of 8 rows; naive fills all 8.
        let run = |optimized: bool| -> QueryStats {
            let mut s = session_with_products(8);
            let oracle = TruthfulOracle::new(1e9);
            let mut f = factory();
            let (_, stats) = s
                .query_crowd(
                    "SELECT category FROM products WHERE id >= 6",
                    &oracle,
                    &mut f,
                    3,
                    optimized,
                )
                .unwrap();
            stats
        };
        let opt = run(true);
        let naive = run(false);
        assert_eq!(opt.cells_filled, 2);
        assert_eq!(naive.cells_filled, 8);
        assert!(opt.questions < naive.questions);
    }

    #[test]
    fn crowdequal_join_finds_semantic_matches() {
        let mut s = Session::new();
        s.execute_ddl("CREATE TABLE a (name TEXT)").unwrap();
        s.execute_ddl("CREATE TABLE b (alias TEXT)").unwrap();
        s.execute_ddl("INSERT INTO a VALUES ('IPhone'), ('Galaxy')")
            .unwrap();
        s.execute_ddl("INSERT INTO b VALUES ('iphone'), ('pixel')")
            .unwrap();
        let oracle = TruthfulOracle::new(1e9);
        let mut f = factory();
        let (rows, stats) = s
            .query_crowd(
                "SELECT a.name, b.alias FROM a, b WHERE CROWDEQUAL(a.name, b.alias)",
                &oracle,
                &mut f,
                3,
                true,
            )
            .unwrap();
        assert_eq!(rows, vec![vec![Value::text("IPhone"), Value::text("iphone")]]);
        assert_eq!(stats.equal_checks, 4, "2×2 candidate pairs");
    }

    #[test]
    fn crowd_sort_full_and_topk() {
        let mut s = Session::new();
        s.execute_ddl("CREATE TABLE t (name TEXT)").unwrap();
        s.execute_ddl("INSERT INTO t VALUES ('a'), ('d'), ('b'), ('c')")
            .unwrap();
        let oracle = TruthfulOracle::new(1e9);
        let mut f = factory();
        // Full sort: best-first = lexicographically descending.
        let (rows, stats) = s
            .query_crowd(
                "SELECT name FROM t ORDER BY CROWDORDER(name)",
                &oracle,
                &mut f,
                1,
                true,
            )
            .unwrap();
        let names: Vec<String> = rows.iter().map(|r| r[0].display_raw()).collect();
        assert_eq!(names, vec!["d", "c", "b", "a"]);
        assert_eq!(stats.comparisons, 6, "full pairwise over 4 items");

        // Top-1 tournament asks fewer comparisons.
        let oracle2 = TruthfulOracle::new(1e9);
        let (rows, stats) = s
            .query_crowd(
                "SELECT name FROM t ORDER BY CROWDORDER(name) LIMIT 1",
                &oracle2,
                &mut f,
                1,
                true,
            )
            .unwrap();
        assert_eq!(rows, vec![vec![Value::text("d")]]);
        assert_eq!(stats.comparisons, 3, "single-elimination over 4 items");
    }

    #[test]
    fn budget_exhaustion_surfaces_partial_results() {
        let mut s = session_with_products(4);
        let oracle = TruthfulOracle::new(5.0);
        let mut f = factory();
        let (_, stats) = s
            .query_crowd(
                "SELECT category FROM products",
                &oracle,
                &mut f,
                3,
                true,
            )
            .unwrap();
        assert_eq!(stats.questions, 5, "spent exactly the budget");
        // Two cells fully reconciled (3+2 votes → the 2-vote one still
        // unanimous), remaining rows stay NULL but the query completes.
        assert_eq!(stats.rows_out, 4);
    }

    #[test]
    fn explain_renders_both_plans() {
        let s = session_with_products(1);
        let opt = s
            .explain("SELECT name FROM products WHERE id > 0", true)
            .unwrap();
        let naive = s
            .explain("SELECT name FROM products WHERE id > 0", false)
            .unwrap();
        assert!(!opt.contains("CrowdFill"));
        assert!(naive.contains("CrowdFill"));
    }

    #[test]
    fn ddl_errors_are_reported() {
        let mut s = Session::new();
        assert!(s.execute_ddl("SELECT 1 FROM t").is_err());
        assert!(s.execute_ddl("INSERT INTO missing VALUES (1)").is_err());
    }

    #[test]
    fn fill_parses_ints_for_int_columns() {
        let mut s = Session::new();
        s.execute_ddl("CREATE TABLE t (name TEXT, stars CROWD INT)")
            .unwrap();
        s.execute_ddl("INSERT INTO t VALUES ('x', NULL)").unwrap();
        let oracle = TruthfulOracle::new(1e9);
        let mut f = SimTaskFactory {
            fill_truth: |_: &str, _: &[Value], _: &str| "4".to_owned(),
            equal_truth: |_: &Value, _: &Value| false,
            left_wins_truth: |_: &Value, _: &Value| false,
        };
        let (rows, _) = s
            .query_crowd("SELECT stars FROM t", &oracle, &mut f, 3, true)
            .unwrap();
        assert_eq!(rows, vec![vec![Value::Int(4)]]);
    }
}

#[cfg(test)]
mod count_tests {
    use super::*;
    use crowdkit_core::answer::Answer;
    use crowdkit_core::ids::WorkerId;

    struct TruthfulOracle {
        n: std::cell::Cell<u64>,
    }
    impl CrowdOracle for TruthfulOracle {
        fn ask_one(&self, task: &Task) -> Result<Answer> {
            self.n.set(self.n.get() + 1);
            Ok(Answer::bare(
                task.id,
                WorkerId::new(self.n.get()),
                task.truth.clone().unwrap(),
            ))
        }
        fn remaining_budget(&self) -> Option<f64> {
            None
        }
        fn answers_delivered(&self) -> u64 {
            self.n.get()
        }
    }

    fn session() -> Session {
        let mut s = Session::new();
        s.execute_ddl("CREATE TABLE t (id INT, tag CROWD TEXT)").unwrap();
        for i in 0..10 {
            s.execute_ddl(&format!("INSERT INTO t VALUES ({i}, NULL)")).unwrap();
        }
        s
    }

    #[test]
    fn count_star_machine_only() {
        let mut s = session();
        let rows = s.query_machine("SELECT COUNT(*) FROM t WHERE id >= 4").unwrap();
        assert_eq!(rows, vec![vec![Value::Int(6)]]);
        let all = s.query_machine("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(all, vec![vec![Value::Int(10)]]);
    }

    #[test]
    fn count_star_does_not_fill_crowd_columns_it_does_not_read() {
        let s = session();
        let plan = s.explain("SELECT COUNT(*) FROM t WHERE id > 2", true).unwrap();
        assert!(!plan.contains("CrowdFill"), "{plan}");
        assert!(plan.contains("CountStar"), "{plan}");
    }

    #[test]
    fn count_star_over_crowd_predicate() {
        let mut s = session();
        let oracle = TruthfulOracle { n: std::cell::Cell::new(0) };
        let mut f = SimTaskFactory {
            fill_truth: |_: &str, row: &[Value], _: &str| match row[0] {
                Value::Int(i) if i < 3 => "keep".to_owned(),
                _ => "drop".to_owned(),
            },
            equal_truth: |_: &Value, _: &Value| false,
            left_wins_truth: |_: &Value, _: &Value| false,
        };
        let (rows, stats) = s
            .query_crowd(
                "SELECT COUNT(*) FROM t WHERE tag = 'keep'",
                &oracle,
                &mut f,
                3,
                true,
            )
            .unwrap();
        assert_eq!(rows, vec![vec![Value::Int(3)]]);
        assert_eq!(stats.cells_filled, 10);
    }

    #[test]
    fn count_star_rejects_order_by_and_limit() {
        assert!(parse_statement("SELECT COUNT(*) FROM t ORDER BY id").is_err());
        assert!(parse_statement("SELECT COUNT(*) FROM t LIMIT 3").is_err());
        assert!(parse_statement("SELECT COUNT(*) FROM t").is_ok());
    }
}

#[cfg(test)]
mod hash_join_tests {
    use super::*;
    
    

    fn session() -> Session {
        let mut s = Session::new();
        s.execute_ddl("CREATE TABLE orders (oid INT, cust TEXT)").unwrap();
        s.execute_ddl("CREATE TABLE custs (cname TEXT, city TEXT)").unwrap();
        s.execute_ddl(
            "INSERT INTO orders VALUES (1, 'ada'), (2, 'bob'), (3, 'ada'), (4, NULL)",
        )
        .unwrap();
        s.execute_ddl(
            "INSERT INTO custs VALUES ('ada', 'paris'), ('bob', 'berlin'), ('cyd', 'rome')",
        )
        .unwrap();
        s
    }

    #[test]
    fn optimizer_promotes_equality_to_hash_join() {
        let s = session();
        let sql = "SELECT oid, city FROM orders, custs WHERE cust = cname AND oid >= 2";
        let opt = s.explain(sql, true).unwrap();
        assert!(opt.contains("HashJoin [cust = cname]"), "{opt}");
        assert!(!opt.contains("Join (cross)"), "{opt}");
        // The remaining machine predicate still filters above the join.
        assert!(opt.contains("MachineFilter [oid >= 2]"), "{opt}");
        // The naive plan keeps the cross product.
        let naive = s.explain(sql, false).unwrap();
        assert!(naive.contains("Join (cross)"), "{naive}");
    }

    #[test]
    fn hash_join_matches_cross_product_semantics() {
        let mut s = session();
        let sql = "SELECT oid, city FROM orders, custs WHERE cust = cname ORDER BY oid ASC";
        let rows = s.query_machine(sql).unwrap();
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(1), Value::text("paris")],
                vec![Value::Int(2), Value::text("berlin")],
                vec![Value::Int(3), Value::text("paris")],
            ],
            "NULL cust on order 4 never matches"
        );
    }

    #[test]
    fn hash_join_runs_without_any_crowd_context() {
        let mut s = session();
        // query_machine uses ctx = None; a crowd op would error out.
        let rows = s
            .query_machine("SELECT COUNT(*) FROM orders, custs WHERE cust = cname")
            .unwrap();
        assert_eq!(rows, vec![vec![Value::Int(3)]]);
    }

    #[test]
    fn qualified_equi_join_columns_resolve() {
        let mut s = session();
        let rows = s
            .query_machine(
                "SELECT orders.oid FROM orders, custs \
                 WHERE custs.cname = orders.cust AND custs.city = 'paris' ORDER BY oid ASC",
            )
            .unwrap();
        assert_eq!(rows, vec![vec![Value::Int(1)], vec![Value::Int(3)]]);
    }

    #[test]
    fn same_table_equality_is_not_a_join() {
        let s = session();
        let plan = s
            .explain(
                "SELECT oid FROM orders, custs WHERE cust = cust",
                true,
            )
            .unwrap();
        assert!(!plan.contains("HashJoin"), "{plan}");
    }
}
