//! The CrowdSQL session: parse → bind → rewrite → cost → execute.
//!
//! [`Session`] is the public query surface. It owns the catalog and the
//! optimizer's [`SelectivityMemory`] behind a lock, so every method takes
//! `&self` — a session is a shared service like the platform it fronts,
//! and concurrent readers may plan and run queries while write-back of
//! purchased cells is serialized at the end of each query.
//!
//! A query runs through the full pipeline:
//!
//! 1. [`parse`](crate::parser) + [`bind`](crate::binder) — names and
//!    types resolve against the catalog into the canonical logical
//!    [`crate::ir::Plan`];
//! 2. [`rewrite`](crate::rewrite) — rule-based transforms (lazy fill,
//!    predicate pushdown, hash-join promotion, crowd-join formation and
//!    reordering, top-k fusion, batching) produce candidate plans;
//! 3. [`cost`](crate::cost) — candidates are scored on predicted spend,
//!    round-latency and quality; the cheapest wins ([`QueryOpts`] carries
//!    the weights);
//! 4. `volcano` (crate-private) — the chosen plan executes as a pull
//!    pipeline, metering actual spend and round-trips against the
//!    prediction and feeding observed selectivities back into the memory.
//!
//! Crowd operators buy answers through the [`CrowdOracle`] using tasks
//! rendered by a [`TaskFactory`]:
//!
//! * **CrowdFill** — `votes` open-text answers per NULL cell, reconciled
//!   by normalized plurality; reconciled values are written back to the
//!   base table so later queries reuse them (CrowdDB's behaviour).
//! * **CrowdFilter / CrowdJoin** — `votes` binary judgements per
//!   `CROWDEQUAL`, majority decides; verdicts are cached per value pair
//!   within a query.
//! * **CrowdSort** — full pairwise comparisons ranked by Copeland score,
//!   or a top-k tournament when the optimizer fused a LIMIT into it.

use std::fmt;
use std::fmt::Write as _;

use parking_lot::{RwLock, RwLockReadGuard};

use crowdkit_core::answer::Preference;
use crowdkit_core::budget::CostModel;
use crowdkit_core::error::{CrowdError, Result};
use crowdkit_core::ids::TaskId;
use crowdkit_core::task::Task;
use crowdkit_core::traits::CrowdOracle;
use crowdkit_metrics as metrics;
use crowdkit_obs::{self as obs, Event};

use crate::ast::{Select, Statement};
use crate::binder::bind;
use crate::catalog::Catalog;
use crate::cost::{CostVector, CostWeights, Estimator, NodeCost, PlanCost, SelectivityMemory};
use crate::ir::Plan;
use crate::parser::parse_statement;
use crate::rewrite::optimize as optimize_plan;
use crate::value::Value;
use crate::volcano::{execute, RoundOracle};

/// Renders the crowd-facing tasks for the crowd operators. In simulation,
/// implementations attach the latent ground truth so simulated workers
/// can answer; against a live platform they would render HTML.
pub trait TaskFactory {
    /// Task asking for the value of `column` for the given row of `table`.
    fn fill_task(&mut self, id: TaskId, table: &str, row: &[Value], column: &str) -> Task;

    /// Binary task asking whether `left` and `right` denote the same thing
    /// (label 1 = yes).
    fn equal_task(&mut self, id: TaskId, left: &Value, right: &Value) -> Task;

    /// Pairwise task asking which of `left`/`right` ranks higher
    /// (`Preference::Left` = left).
    fn compare_task(&mut self, id: TaskId, left: &Value, right: &Value) -> Task;
}

/// Per-query execution knobs, built fluently:
///
/// ```
/// use crowdkit_sql::QueryOpts;
/// let opts = QueryOpts::new().votes(5).batch(8);
/// assert!(opts.optimize);
/// let naive = QueryOpts::naive();
/// assert!(!naive.optimize);
/// ```
#[derive(Debug, Clone)]
pub struct QueryOpts {
    /// Redundant answers bought per crowd question (≥ 1).
    pub votes: u32,
    /// Run the rewriter + cost-based selection (false = canonical plan).
    pub optimize: bool,
    /// Crowd questions per platform round-trip (0 = one ask per
    /// question, the latency-naive default).
    pub batch: usize,
    /// Scalarization weights for candidate selection.
    pub weights: CostWeights,
    /// Per-task-kind prices the cost model predicts spend with.
    pub prices: CostModel,
    /// Assumed per-worker accuracy for quality prediction.
    pub accuracy: f64,
}

impl Default for QueryOpts {
    fn default() -> Self {
        Self {
            votes: 3,
            optimize: true,
            batch: 0,
            weights: CostWeights::default(),
            prices: CostModel::unit(),
            accuracy: 0.9,
        }
    }
}

impl QueryOpts {
    /// Default options: 3 votes, optimizer on, no batching.
    pub fn new() -> Self {
        Self::default()
    }

    /// Options that run the canonical (naive) plan unrewritten.
    pub fn naive() -> Self {
        Self {
            optimize: false,
            ..Self::default()
        }
    }

    /// Sets the redundancy per crowd question.
    pub fn votes(mut self, votes: u32) -> Self {
        self.votes = votes;
        self
    }

    /// Turns the optimizer on or off.
    pub fn optimize(mut self, on: bool) -> Self {
        self.optimize = on;
        self
    }

    /// Sets the questions-per-round-trip batching knob.
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the plan-selection weights.
    pub fn weights(mut self, weights: CostWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Sets the price table used for spend prediction.
    pub fn prices(mut self, prices: CostModel) -> Self {
        self.prices = prices;
        self
    }

    /// Sets the assumed per-worker accuracy.
    pub fn accuracy(mut self, accuracy: f64) -> Self {
        self.accuracy = accuracy;
        self
    }
}

/// Crowd spend of one query: what was bought, and what the optimizer
/// predicted it would cost.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryStats {
    /// Total crowd answers purchased.
    pub questions: u64,
    /// NULL cells filled.
    pub cells_filled: u64,
    /// CROWDEQUAL verdicts bought (cache misses).
    pub equal_checks: u64,
    /// Pairwise comparison matches played.
    pub comparisons: u64,
    /// Rows returned.
    pub rows_out: usize,
    /// Platform round-trips performed (latency proxy).
    pub rounds: u64,
    /// Actual money spent (sum of per-answer costs).
    pub spend: f64,
    /// Spend the cost model predicted for the executed plan.
    pub predicted_spend: f64,
    /// Round-trips the cost model predicted for the executed plan.
    pub predicted_rounds: f64,
}

/// The structured result of `EXPLAIN`: both plan texts, the rewrite
/// rules that fired, and the cost model's prediction.
///
/// `Display` renders the physical plan tree exactly as the pre-IR
/// explain did; [`ExplainReport::detailed`] adds the cost columns.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainReport {
    /// Whether the optimizer was enabled.
    pub optimized: bool,
    /// The canonical logical plan, rendered.
    pub logical: String,
    /// The chosen physical plan, rendered.
    pub physical: String,
    /// Names of the rewrite rules that fired (sorted, deduplicated).
    pub rewrites: Vec<String>,
    /// Predicted total cost of the physical plan.
    pub predicted: CostVector,
    /// Per-operator prediction, bottom-up.
    pub per_node: Vec<NodeCost>,
}

impl fmt::Display for ExplainReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.physical)
    }
}

impl ExplainReport {
    /// Multi-line rendering with predicted spend/rounds/quality per
    /// operator.
    pub fn detailed(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "logical plan:");
        for line in self.logical.lines() {
            let _ = writeln!(s, "  {line}");
        }
        let rules = if self.rewrites.is_empty() {
            "no rewrites".to_owned()
        } else {
            self.rewrites.join(", ")
        };
        let _ = writeln!(s, "physical plan ({rules}):");
        for line in self.physical.lines() {
            let _ = writeln!(s, "  {line}");
        }
        let _ = writeln!(
            s,
            "predicted: spend={:.2} rounds={:.2} quality={:.4}",
            self.predicted.spend, self.predicted.rounds, self.predicted.quality
        );
        let _ = writeln!(s, "per-operator (bottom-up):");
        for n in &self.per_node {
            let _ = writeln!(
                s,
                "  {:<44} rows={:>8.1} spend={:>9.2} rounds={:>9.2}",
                n.node, n.rows_out, n.cost.spend, n.cost.rounds
            );
        }
        s
    }
}

#[derive(Debug, Default)]
struct SessionState {
    catalog: Catalog,
    memory: SelectivityMemory,
}

/// A CrowdSQL session: catalog, optimizer memory, statement execution.
#[derive(Debug, Default)]
pub struct Session {
    inner: RwLock<SessionState>,
}

/// Everything planning produced for one SELECT.
struct Planned {
    logical: Plan,
    chosen: Plan,
    rules: Vec<String>,
    predicted: PlanCost,
}

fn plan_select(
    state: &SessionState,
    select: &Select,
    opts: &QueryOpts,
    optimized: bool,
) -> Result<Planned> {
    let bound = bind(select, &state.catalog, opts.votes.max(1))?;
    let logical = bound.plan;
    let est = Estimator::new(&state.catalog, &state.memory, &opts.prices, opts.accuracy);
    let (chosen, rules) = if optimized {
        let rw = optimize_plan(&logical, &est, &opts.weights, opts.batch);
        (rw.plan, rw.rules.iter().map(|r| (*r).to_owned()).collect())
    } else {
        (logical.clone(), Vec::new())
    };
    let predicted = est.estimate(&chosen);
    Ok(Planned {
        logical,
        chosen,
        rules,
        predicted,
    })
}

fn expect_select(sql: &str) -> Result<Select> {
    match parse_statement(sql)? {
        Statement::Select(s) | Statement::Explain(s) => Ok(s),
        _ => Err(CrowdError::Semantic("expected a SELECT".into())),
    }
}

impl Session {
    /// An empty session.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read access to the catalog (holds a read lock while borrowed).
    pub fn catalog(&self) -> impl std::ops::Deref<Target = Catalog> + '_ {
        struct Guard<'a>(RwLockReadGuard<'a, SessionState>);
        impl std::ops::Deref for Guard<'_> {
            type Target = Catalog;
            fn deref(&self) -> &Catalog {
                &self.0.catalog
            }
        }
        Guard(self.inner.read())
    }

    /// Executes a CREATE TABLE or INSERT statement.
    pub fn execute_ddl(&self, sql: &str) -> Result<()> {
        let stmt = parse_statement(sql)?;
        let mut state = self.inner.write();
        match stmt {
            Statement::CreateTable {
                name,
                columns,
                crowd,
            } => state.catalog.create_table(&name, &columns, crowd),
            Statement::Insert { table, rows } => state.catalog.insert(&table, rows),
            _ => Err(CrowdError::Semantic(
                "expected CREATE TABLE or INSERT".into(),
            )),
        }
    }

    /// Plans a SELECT (optimized or naive) without running it, returning
    /// the structured report. `report.to_string()` is the physical plan
    /// tree; [`ExplainReport::detailed`] adds predicted cost columns.
    pub fn explain(&self, sql: &str, optimized: bool) -> Result<ExplainReport> {
        self.explain_with(sql, optimized, &QueryOpts::default())
    }

    /// [`Session::explain`] under explicit [`QueryOpts`] (vote count,
    /// batching and prices change the predicted numbers).
    pub fn explain_with(
        &self,
        sql: &str,
        optimized: bool,
        opts: &QueryOpts,
    ) -> Result<ExplainReport> {
        let select = expect_select(sql)?;
        let state = self.inner.read();
        let planned = plan_select(&state, &select, opts, optimized)?;
        Ok(ExplainReport {
            optimized,
            logical: planned.logical.to_string(),
            physical: planned.chosen.to_string(),
            rewrites: planned.rules,
            predicted: planned.predicted.total,
            per_node: planned.predicted.nodes,
        })
    }

    /// Runs a SELECT that must not require the crowd. Fails with
    /// [`CrowdError::Unsupported`] if the chosen plan contains a crowd
    /// operator.
    pub fn query_machine(&self, sql: &str) -> Result<Vec<Vec<Value>>> {
        let select = match parse_statement(sql)? {
            Statement::Select(s) => s,
            _ => return Err(CrowdError::Semantic("expected a SELECT".into())),
        };
        struct NoTasks;
        impl TaskFactory for NoTasks {
            // The machine path never reaches a crowd operator (build
            // fails first), so these are never called.
            fn fill_task(&mut self, id: TaskId, _: &str, _: &[Value], column: &str) -> Task {
                Task::new(
                    id,
                    crowdkit_core::task::TaskKind::Fill {
                        attribute: column.to_owned(),
                    },
                    "unreachable",
                )
            }
            fn equal_task(&mut self, id: TaskId, _: &Value, _: &Value) -> Task {
                Task::binary(id, "unreachable")
            }
            fn compare_task(&mut self, id: TaskId, _: &Value, _: &Value) -> Task {
                Task::binary(id, "unreachable")
            }
        }
        let opts = QueryOpts::default();
        let state = self.inner.read();
        let planned = plan_select(&state, &select, &opts, true)?;
        let mut factory = NoTasks;
        let out = execute(&planned.chosen, &state.catalog, None, &mut factory)?;
        Ok(out.rows.into_iter().map(|r| r.values).collect())
    }

    /// Runs a SELECT, buying crowd answers as the plan demands.
    ///
    /// `opts.optimize` selects between the optimized and the naive plan —
    /// experiment E10 runs both and compares actual spend against the
    /// optimizer's prediction ([`QueryStats::predicted_spend`]).
    pub fn query_crowd(
        &self,
        sql: &str,
        oracle: &dyn CrowdOracle,
        factory: &mut dyn TaskFactory,
        opts: &QueryOpts,
    ) -> Result<(Vec<Vec<Value>>, QueryStats)> {
        let select = match parse_statement(sql)? {
            Statement::Select(s) => s,
            _ => return Err(CrowdError::Semantic("expected a SELECT".into())),
        };
        let before = oracle.answers_delivered();
        let metered = RoundOracle::new(oracle);
        let (out, predicted) = {
            let state = self.inner.read();
            let planned = plan_select(&state, &select, opts, opts.optimize)?;
            let out = execute(&planned.chosen, &state.catalog, Some(&metered), factory)?;
            (out, planned.predicted)
        };
        {
            // Persist purchased cells so later queries reuse them, and
            // feed observed pass-rates back into the cost model.
            let mut state = self.inner.write();
            for (table, row, col, value) in &out.writebacks {
                state.catalog.write_cell(table, *row, *col, value.clone())?;
            }
            for (key, passed, total) in &out.observations {
                state.memory.record(key, *passed, *total);
            }
        }
        let stats = QueryStats {
            questions: oracle.answers_delivered() - before,
            cells_filled: out.cells_filled,
            equal_checks: out.equal_checks,
            comparisons: out.comparisons,
            rows_out: out.rows.len(),
            rounds: metered.rounds(),
            spend: metered.spend(),
            predicted_spend: predicted.total.spend,
            predicted_rounds: predicted.total.rounds,
        };
        let m = metrics::current();
        m.sql.queries.inc();
        m.sql.rows_out.add(stats.rows_out as u64);
        m.sql.crowd_questions.add(stats.questions);
        m.sql.spend_micros.add(metrics::to_micros(stats.spend));
        m.sql.nodes.add(out.node_stats.len() as u64);
        for ns in &out.node_stats {
            m.sql.node_rows.record(ns.rows_out);
        }
        if obs::enabled() {
            for ns in &out.node_stats {
                obs::record(
                    Event::new("sql.node")
                        .str("node", ns.node)
                        .u64("rows_in", ns.rows_in)
                        .u64("rows_out", ns.rows_out)
                        .u64("questions", ns.questions)
                        .f64("spend", ns.spend),
                );
            }
            // Cross-layer cost ledger: spend attributed per plan node,
            // then per task / per worker from the metered oracle, all as
            // `prov.spend` events under the active provenance scope.
            if crowdkit_provenance::capture_detail() {
                for ns in &out.node_stats {
                    obs::record(
                        Event::new("prov.spend")
                            .str("scope", "node")
                            .str("node", ns.node)
                            .f64("spend", ns.spend)
                            .u64("questions", ns.questions),
                    );
                }
                metered.emit_ledger();
            }
            obs::record(
                Event::new("sql.query")
                    .u64("optimized", u64::from(opts.optimize))
                    .u64("questions", stats.questions)
                    .u64("cells_filled", stats.cells_filled)
                    .u64("equal_checks", stats.equal_checks)
                    .u64("comparisons", stats.comparisons)
                    .u64("rows_out", stats.rows_out as u64)
                    .u64("rounds", stats.rounds)
                    .f64("spend", stats.spend)
                    .f64("predicted_spend", stats.predicted_spend)
                    .f64("predicted_rounds", stats.predicted_rounds),
            );
        }
        Ok((out.rows.into_iter().map(|r| r.values).collect(), stats))
    }
}

/// Builds a [`TaskFactory`] from three closures — handy for tests and
/// simulations.
pub struct FnTaskFactory<F1, F2, F3> {
    fill: F1,
    equal: F2,
    compare: F3,
}

impl<F1, F2, F3> FnTaskFactory<F1, F2, F3>
where
    F1: FnMut(TaskId, &str, &[Value], &str) -> Task,
    F2: FnMut(TaskId, &Value, &Value) -> Task,
    F3: FnMut(TaskId, &Value, &Value) -> Task,
{
    /// Wraps the three task builders.
    pub fn new(fill: F1, equal: F2, compare: F3) -> Self {
        Self {
            fill,
            equal,
            compare,
        }
    }
}

impl<F1, F2, F3> TaskFactory for FnTaskFactory<F1, F2, F3>
where
    F1: FnMut(TaskId, &str, &[Value], &str) -> Task,
    F2: FnMut(TaskId, &Value, &Value) -> Task,
    F3: FnMut(TaskId, &Value, &Value) -> Task,
{
    fn fill_task(&mut self, id: TaskId, table: &str, row: &[Value], column: &str) -> Task {
        (self.fill)(id, table, row, column)
    }

    fn equal_task(&mut self, id: TaskId, left: &Value, right: &Value) -> Task {
        (self.equal)(id, left, right)
    }

    fn compare_task(&mut self, id: TaskId, left: &Value, right: &Value) -> Task {
        (self.compare)(id, left, right)
    }
}

/// A [`TaskFactory`] for simulations: renders prompts and attaches ground
/// truth pulled from caller-provided closures.
pub struct SimTaskFactory<TF, EF, CF>
where
    TF: FnMut(&str, &[Value], &str) -> String,
    EF: FnMut(&Value, &Value) -> bool,
    CF: FnMut(&Value, &Value) -> bool,
{
    /// Ground-truth fill value for `(table, row, column)`.
    pub fill_truth: TF,
    /// Ground-truth equality for `(left, right)`.
    pub equal_truth: EF,
    /// Ground truth "left ranks higher" for `(left, right)`.
    pub left_wins_truth: CF,
}

impl<TF, EF, CF> TaskFactory for SimTaskFactory<TF, EF, CF>
where
    TF: FnMut(&str, &[Value], &str) -> String,
    EF: FnMut(&Value, &Value) -> bool,
    CF: FnMut(&Value, &Value) -> bool,
{
    fn fill_task(&mut self, id: TaskId, table: &str, row: &[Value], column: &str) -> Task {
        use crowdkit_core::answer::AnswerValue;
        use crowdkit_core::task::TaskKind;
        let truth = (self.fill_truth)(table, row, column);
        Task::new(
            id,
            TaskKind::Fill {
                attribute: column.to_owned(),
            },
            format!("value of {column} for a row of {table}"),
        )
        .with_truth(AnswerValue::Text(truth))
    }

    fn equal_task(&mut self, id: TaskId, left: &Value, right: &Value) -> Task {
        use crowdkit_core::answer::AnswerValue;
        let same = (self.equal_truth)(left, right);
        Task::binary(
            id,
            format!(
                "is '{}' the same as '{}'?",
                left.display_raw(),
                right.display_raw()
            ),
        )
        .with_truth(AnswerValue::Choice(same as u32))
    }

    fn compare_task(&mut self, id: TaskId, left: &Value, right: &Value) -> Task {
        use crowdkit_core::answer::AnswerValue;
        use crowdkit_core::ids::ItemId;
        let left_wins = (self.left_wins_truth)(left, right);
        Task::pairwise(id, ItemId::new(0), ItemId::new(1)).with_truth(AnswerValue::Prefer(
            if left_wins {
                Preference::Left
            } else {
                Preference::Right
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdkit_core::answer::Answer;
    use crowdkit_core::budget::Budget;
    use crowdkit_core::ids::WorkerId;

    /// Oracle answering every task per its attached truth.
    struct TruthfulOracle {
        budget: std::cell::RefCell<Budget>,
        delivered: std::cell::Cell<u64>,
    }

    impl TruthfulOracle {
        fn new(limit: f64) -> Self {
            Self {
                budget: std::cell::RefCell::new(Budget::new(limit)),
                delivered: std::cell::Cell::new(0),
            }
        }
    }

    impl CrowdOracle for TruthfulOracle {
        fn ask_one(&self, task: &Task) -> Result<Answer> {
            self.budget.borrow_mut().debit(1.0)?;
            let w = WorkerId::new(self.delivered.get());
            self.delivered.set(self.delivered.get() + 1);
            Ok(Answer::bare(task.id, w, task.truth.clone().unwrap()))
        }
        fn remaining_budget(&self) -> Option<f64> {
            Some(self.budget.borrow().remaining())
        }
        fn answers_delivered(&self) -> u64 {
            self.delivered.get()
        }
    }

    /// Categories ground truth keyed by product id (row[0]).
    fn factory() -> impl TaskFactory {
        SimTaskFactory {
            fill_truth: |_table: &str, row: &[Value], _col: &str| -> String {
                match row[0] {
                    Value::Int(i) if i % 2 == 0 => "phone".to_owned(),
                    _ => "laptop".to_owned(),
                }
            },
            equal_truth: |l: &Value, r: &Value| -> bool {
                // Semantic equality: case-insensitive text match.
                l.display_raw().eq_ignore_ascii_case(&r.display_raw())
            },
            left_wins_truth: |l: &Value, r: &Value| -> bool {
                // "Better" = lexicographically larger.
                l.display_raw() > r.display_raw()
            },
        }
    }

    fn session_with_products(n: i64) -> Session {
        let s = Session::new();
        s.execute_ddl("CREATE TABLE products (id INT, name TEXT, category CROWD TEXT)")
            .unwrap();
        for i in 0..n {
            s.execute_ddl(&format!(
                "INSERT INTO products VALUES ({i}, 'prod{i}', NULL)"
            ))
            .unwrap();
        }
        s
    }

    #[test]
    fn machine_query_end_to_end() {
        let s = session_with_products(5);
        let rows = s
            .query_machine("SELECT name FROM products WHERE id >= 3 ORDER BY id DESC")
            .unwrap();
        assert_eq!(
            rows,
            vec![vec![Value::text("prod4")], vec![Value::text("prod3")]]
        );
    }

    #[test]
    fn machine_query_rejects_crowd_plans() {
        let s = session_with_products(2);
        let err = s
            .query_machine("SELECT * FROM products WHERE category = 'phone'")
            .unwrap_err();
        assert!(matches!(err, CrowdError::Unsupported(_)));
    }

    #[test]
    fn crowd_fill_answers_and_writes_back() {
        let s = session_with_products(4);
        let oracle = TruthfulOracle::new(1e9);
        let mut f = factory();
        let (rows, stats) = s
            .query_crowd(
                "SELECT name FROM products WHERE category = 'phone'",
                &oracle,
                &mut f,
                &QueryOpts::new().votes(3),
            )
            .unwrap();
        // Even ids are phones: 0, 2.
        assert_eq!(
            rows,
            vec![vec![Value::text("prod0")], vec![Value::text("prod2")]]
        );
        assert_eq!(stats.cells_filled, 4);
        assert_eq!(stats.questions, 12, "4 cells × 3 votes");
        assert_eq!(stats.rounds, 4, "one round-trip per cell without batching");
        // Write-back: rerunning the query costs nothing.
        let (_, stats2) = s
            .query_crowd(
                "SELECT name FROM products WHERE category = 'phone'",
                &oracle,
                &mut f,
                &QueryOpts::new().votes(3),
            )
            .unwrap();
        assert_eq!(stats2.questions, 0, "cells persisted in the catalog");
    }

    #[test]
    fn optimized_plan_cheaper_than_naive() {
        // Machine predicate keeps 2 of 8 rows; naive fills all 8.
        let run = |opts: QueryOpts| -> QueryStats {
            let s = session_with_products(8);
            let oracle = TruthfulOracle::new(1e9);
            let mut f = factory();
            let (_, stats) = s
                .query_crowd(
                    "SELECT category FROM products WHERE id >= 6",
                    &oracle,
                    &mut f,
                    &opts,
                )
                .unwrap();
            stats
        };
        let opt = run(QueryOpts::new().votes(3));
        let naive = run(QueryOpts::naive().votes(3));
        assert_eq!(opt.cells_filled, 2);
        assert_eq!(naive.cells_filled, 8);
        assert!(opt.questions < naive.questions);
        assert!(
            opt.predicted_spend <= naive.predicted_spend,
            "the optimizer never predicts the rewritten plan to cost more"
        );
    }

    #[test]
    fn crowdequal_join_finds_semantic_matches() {
        let s = Session::new();
        s.execute_ddl("CREATE TABLE a (name TEXT)").unwrap();
        s.execute_ddl("CREATE TABLE b (alias TEXT)").unwrap();
        s.execute_ddl("INSERT INTO a VALUES ('IPhone'), ('Galaxy')")
            .unwrap();
        s.execute_ddl("INSERT INTO b VALUES ('iphone'), ('pixel')")
            .unwrap();
        let oracle = TruthfulOracle::new(1e9);
        let mut f = factory();
        let (rows, stats) = s
            .query_crowd(
                "SELECT a.name, b.alias FROM a, b WHERE CROWDEQUAL(a.name, b.alias)",
                &oracle,
                &mut f,
                &QueryOpts::new().votes(3),
            )
            .unwrap();
        assert_eq!(
            rows,
            vec![vec![Value::text("IPhone"), Value::text("iphone")]]
        );
        assert_eq!(stats.equal_checks, 4, "2×2 candidate pairs");
        // The optimizer forms a CrowdJoin operator for the cross-table
        // CROWDEQUAL.
        let plan = s
            .explain(
                "SELECT a.name, b.alias FROM a, b WHERE CROWDEQUAL(a.name, b.alias)",
                true,
            )
            .unwrap();
        assert!(plan.to_string().contains("CrowdJoin"), "{plan}");
    }

    #[test]
    fn crowd_sort_full_and_topk() {
        let s = Session::new();
        s.execute_ddl("CREATE TABLE t (name TEXT)").unwrap();
        s.execute_ddl("INSERT INTO t VALUES ('a'), ('d'), ('b'), ('c')")
            .unwrap();
        let oracle = TruthfulOracle::new(1e9);
        let mut f = factory();
        // Full sort: best-first = lexicographically descending.
        let (rows, stats) = s
            .query_crowd(
                "SELECT name FROM t ORDER BY CROWDORDER(name)",
                &oracle,
                &mut f,
                &QueryOpts::new().votes(1),
            )
            .unwrap();
        let names: Vec<String> = rows.iter().map(|r| r[0].display_raw()).collect();
        assert_eq!(names, vec!["d", "c", "b", "a"]);
        assert_eq!(stats.comparisons, 6, "full pairwise over 4 items");

        // Top-1 tournament asks fewer comparisons.
        let oracle2 = TruthfulOracle::new(1e9);
        let (rows, stats) = s
            .query_crowd(
                "SELECT name FROM t ORDER BY CROWDORDER(name) LIMIT 1",
                &oracle2,
                &mut f,
                &QueryOpts::new().votes(1),
            )
            .unwrap();
        assert_eq!(rows, vec![vec![Value::text("d")]]);
        assert_eq!(stats.comparisons, 3, "single-elimination over 4 items");
    }

    #[test]
    fn budget_exhaustion_surfaces_partial_results() {
        let s = session_with_products(4);
        let oracle = TruthfulOracle::new(5.0);
        let mut f = factory();
        let (_, stats) = s
            .query_crowd(
                "SELECT category FROM products",
                &oracle,
                &mut f,
                &QueryOpts::new().votes(3),
            )
            .unwrap();
        assert_eq!(stats.questions, 5, "spent exactly the budget");
        // Two cells fully reconciled (3+2 votes → the 2-vote one still
        // unanimous), remaining rows stay NULL but the query completes.
        assert_eq!(stats.rows_out, 4);
    }

    #[test]
    fn explain_renders_both_plans() {
        let s = session_with_products(1);
        let opt = s
            .explain("SELECT name FROM products WHERE id > 0", true)
            .unwrap();
        let naive = s
            .explain("SELECT name FROM products WHERE id > 0", false)
            .unwrap();
        assert!(!opt.to_string().contains("CrowdFill"));
        assert!(naive.to_string().contains("CrowdFill"));
        assert!(naive.rewrites.is_empty());
        assert!(opt.rewrites.iter().any(|r| r == "lazy-fill"), "{opt:?}");
        // The naive plan predicts a strictly positive spend (it fills),
        // the optimized plan predicts zero.
        assert!(naive.predicted.spend > 0.0);
        assert!(opt.predicted.spend == 0.0);
        // The detailed rendering carries both plans and the cost table.
        let detail = opt.detailed();
        assert!(detail.contains("logical plan:"), "{detail}");
        assert!(detail.contains("predicted:"), "{detail}");
    }

    #[test]
    fn ddl_errors_are_reported() {
        let s = Session::new();
        assert!(s.execute_ddl("SELECT 1 FROM t").is_err());
        assert!(s.execute_ddl("INSERT INTO missing VALUES (1)").is_err());
    }

    #[test]
    fn fill_parses_ints_for_int_columns() {
        let s = Session::new();
        s.execute_ddl("CREATE TABLE t (name TEXT, stars CROWD INT)")
            .unwrap();
        s.execute_ddl("INSERT INTO t VALUES ('x', NULL)").unwrap();
        let oracle = TruthfulOracle::new(1e9);
        let mut f = SimTaskFactory {
            fill_truth: |_: &str, _: &[Value], _: &str| "4".to_owned(),
            equal_truth: |_: &Value, _: &Value| false,
            left_wins_truth: |_: &Value, _: &Value| false,
        };
        let (rows, _) = s
            .query_crowd("SELECT stars FROM t", &oracle, &mut f, &QueryOpts::new())
            .unwrap();
        assert_eq!(rows, vec![vec![Value::Int(4)]]);
    }

    #[test]
    fn batching_reduces_round_trips_not_results() {
        let run = |batch: usize| {
            let s = session_with_products(6);
            let oracle = TruthfulOracle::new(1e9);
            let mut f = factory();
            s.query_crowd(
                "SELECT name FROM products WHERE category = 'phone'",
                &oracle,
                &mut f,
                &QueryOpts::new().votes(3).batch(batch),
            )
            .unwrap()
        };
        let (rows_seq, stats_seq) = run(0);
        let (rows_batched, stats_batched) = run(3);
        assert_eq!(rows_seq, rows_batched, "batching never changes results");
        assert_eq!(stats_seq.questions, stats_batched.questions);
        assert_eq!(stats_seq.rounds, 6, "one round per cell");
        assert_eq!(stats_batched.rounds, 2, "6 cells / batch of 3");
    }

    #[test]
    fn selectivity_memory_improves_estimates_across_runs() {
        let s = session_with_products(8);
        let oracle = TruthfulOracle::new(1e9);
        let mut f = factory();
        // First run: the estimator only has default selectivities.
        let sql = "SELECT category FROM products WHERE id >= 6";
        let (_, first) = s
            .query_crowd(sql, &oracle, &mut f, &QueryOpts::new().votes(3))
            .unwrap();
        // Second run: the observed pass-rate (2/8) feeds the prediction.
        // Cells are already written back, so actual spend is zero, but
        // the *prediction* must now reflect the learned selectivity.
        let report = s.explain(sql, true).unwrap();
        assert!(
            (report.predicted.spend - first.predicted_spend).abs() > 1e-9,
            "selectivity feedback changes the prediction: {} vs {}",
            report.predicted.spend,
            first.predicted_spend
        );
    }
}

#[cfg(test)]
mod count_tests {
    use super::*;
    use crowdkit_core::answer::Answer;
    use crowdkit_core::ids::WorkerId;

    struct TruthfulOracle {
        n: std::cell::Cell<u64>,
    }
    impl CrowdOracle for TruthfulOracle {
        fn ask_one(&self, task: &Task) -> Result<Answer> {
            self.n.set(self.n.get() + 1);
            Ok(Answer::bare(
                task.id,
                WorkerId::new(self.n.get()),
                task.truth.clone().unwrap(),
            ))
        }
        fn remaining_budget(&self) -> Option<f64> {
            None
        }
        fn answers_delivered(&self) -> u64 {
            self.n.get()
        }
    }

    fn session() -> Session {
        let s = Session::new();
        s.execute_ddl("CREATE TABLE t (id INT, tag CROWD TEXT)")
            .unwrap();
        for i in 0..10 {
            s.execute_ddl(&format!("INSERT INTO t VALUES ({i}, NULL)"))
                .unwrap();
        }
        s
    }

    #[test]
    fn count_star_machine_only() {
        let s = session();
        let rows = s
            .query_machine("SELECT COUNT(*) FROM t WHERE id >= 4")
            .unwrap();
        assert_eq!(rows, vec![vec![Value::Int(6)]]);
        let all = s.query_machine("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(all, vec![vec![Value::Int(10)]]);
    }

    #[test]
    fn count_star_does_not_fill_crowd_columns_it_does_not_read() {
        let s = session();
        let plan = s
            .explain("SELECT COUNT(*) FROM t WHERE id > 2", true)
            .unwrap()
            .to_string();
        assert!(!plan.contains("CrowdFill"), "{plan}");
        assert!(plan.contains("CountStar"), "{plan}");
    }

    #[test]
    fn count_star_over_crowd_predicate() {
        let s = session();
        let oracle = TruthfulOracle {
            n: std::cell::Cell::new(0),
        };
        let mut f = SimTaskFactory {
            fill_truth: |_: &str, row: &[Value], _: &str| match row[0] {
                Value::Int(i) if i < 3 => "keep".to_owned(),
                _ => "drop".to_owned(),
            },
            equal_truth: |_: &Value, _: &Value| false,
            left_wins_truth: |_: &Value, _: &Value| false,
        };
        let (rows, stats) = s
            .query_crowd(
                "SELECT COUNT(*) FROM t WHERE tag = 'keep'",
                &oracle,
                &mut f,
                &QueryOpts::new().votes(3),
            )
            .unwrap();
        assert_eq!(rows, vec![vec![Value::Int(3)]]);
        assert_eq!(stats.cells_filled, 10);
    }

    #[test]
    fn count_star_rejects_order_by_and_limit() {
        assert!(parse_statement("SELECT COUNT(*) FROM t ORDER BY id").is_err());
        assert!(parse_statement("SELECT COUNT(*) FROM t LIMIT 3").is_err());
        assert!(parse_statement("SELECT COUNT(*) FROM t").is_ok());
    }
}

#[cfg(test)]
mod hash_join_tests {
    use super::*;

    fn session() -> Session {
        let s = Session::new();
        s.execute_ddl("CREATE TABLE orders (oid INT, cust TEXT)")
            .unwrap();
        s.execute_ddl("CREATE TABLE custs (cname TEXT, city TEXT)")
            .unwrap();
        s.execute_ddl("INSERT INTO orders VALUES (1, 'ada'), (2, 'bob'), (3, 'ada'), (4, NULL)")
            .unwrap();
        s.execute_ddl(
            "INSERT INTO custs VALUES ('ada', 'paris'), ('bob', 'berlin'), ('cyd', 'rome')",
        )
        .unwrap();
        s
    }

    #[test]
    fn optimizer_promotes_equality_to_hash_join() {
        let s = session();
        let sql = "SELECT oid, city FROM orders, custs WHERE cust = cname AND oid >= 2";
        let opt = s.explain(sql, true).unwrap().to_string();
        assert!(opt.contains("HashJoin [cust = cname]"), "{opt}");
        assert!(!opt.contains("Join (cross)"), "{opt}");
        // The remaining machine predicate still filters the plan.
        assert!(opt.contains("MachineFilter [oid >= 2]"), "{opt}");
        // The naive plan keeps the cross product.
        let naive = s.explain(sql, false).unwrap().to_string();
        assert!(naive.contains("Join (cross)"), "{naive}");
    }

    #[test]
    fn hash_join_matches_cross_product_semantics() {
        let s = session();
        let sql = "SELECT oid, city FROM orders, custs WHERE cust = cname ORDER BY oid ASC";
        let rows = s.query_machine(sql).unwrap();
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(1), Value::text("paris")],
                vec![Value::Int(2), Value::text("berlin")],
                vec![Value::Int(3), Value::text("paris")],
            ],
            "NULL cust on order 4 never matches"
        );
    }

    #[test]
    fn hash_join_runs_without_any_crowd_context() {
        let s = session();
        // query_machine runs without an oracle; a crowd op would error.
        let rows = s
            .query_machine("SELECT COUNT(*) FROM orders, custs WHERE cust = cname")
            .unwrap();
        assert_eq!(rows, vec![vec![Value::Int(3)]]);
    }

    #[test]
    fn qualified_equi_join_columns_resolve() {
        let s = session();
        let rows = s
            .query_machine(
                "SELECT orders.oid FROM orders, custs \
                 WHERE custs.cname = orders.cust AND custs.city = 'paris' ORDER BY oid ASC",
            )
            .unwrap();
        assert_eq!(rows, vec![vec![Value::Int(1)], vec![Value::Int(3)]]);
    }

    #[test]
    fn same_table_equality_is_not_a_join() {
        let s = session();
        let plan = s
            .explain("SELECT oid FROM orders, custs WHERE cust = cust", true)
            .unwrap()
            .to_string();
        assert!(!plan.contains("HashJoin"), "{plan}");
    }
}
