//! SQL values.

use std::cmp::Ordering;
use std::fmt;

/// A SQL value: integer, text, or NULL.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// UTF-8 text.
    Text(String),
    /// The SQL NULL (unknown); in crowd tables, "ask the crowd".
    Null,
}

impl Value {
    /// Shorthand for a text value.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// True if this is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL three-valued comparison: `None` when either side is NULL or the
    /// types are incomparable; `Some(ordering)` otherwise.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// SQL equality under three-valued logic: `None` if either side is
    /// NULL, otherwise whether the values are equal (cross-type compares
    /// unequal).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Text(a), Value::Text(b)) => a == b,
            _ => false,
        })
    }

    /// Rendering used in crowd task prompts (no quotes).
    pub fn display_raw(&self) -> String {
        match self {
            Value::Int(i) => i.to_string(),
            Value::Text(s) => s.clone(),
            Value::Null => "NULL".to_owned(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Value::Null => write!(f, "NULL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_same_types() {
        assert_eq!(Value::Int(1).compare(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(
            Value::text("b").compare(&Value::text("a")),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::Int(1).compare(&Value::text("1")), None);
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
    }

    #[test]
    fn sql_eq_three_valued() {
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Some(false));
        assert_eq!(Value::Int(1).sql_eq(&Value::text("1")), Some(false));
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
    }

    #[test]
    fn display_quotes_text_and_escapes() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::text("it's").to_string(), "'it''s'");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::text("x").display_raw(), "x");
    }
}
