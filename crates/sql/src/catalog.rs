//! Catalog and row storage.

use std::collections::BTreeMap;

use crowdkit_core::error::{CrowdError, Result};

use crate::ast::ColumnDecl;
use crate::value::Value;

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// UTF-8 text.
    Text,
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Data type.
    pub ty: ColumnType,
    /// Whether the crowd fills this column on demand.
    pub crowd: bool,
}

/// A table definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDef {
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnDef>,
    /// Whether the whole table is crowd-sourced.
    pub crowd: bool,
}

impl TableDef {
    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Whether the named column is crowd-filled.
    pub fn is_crowd_column(&self, name: &str) -> bool {
        self.columns
            .iter()
            .any(|c| c.name == name && c.crowd)
    }
}

/// Tables plus their rows.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    // Key-ordered so every walk over the catalog (name listings, future
    // serialization) is deterministic by construction.
    tables: BTreeMap<String, TableDef>,
    rows: BTreeMap<String, Vec<Vec<Value>>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a table from parsed column declarations.
    pub fn create_table(
        &mut self,
        name: &str,
        decls: &[ColumnDecl],
        crowd: bool,
    ) -> Result<()> {
        if self.tables.contains_key(name) {
            return Err(CrowdError::Semantic(format!("table '{name}' already exists")));
        }
        let mut seen = std::collections::HashSet::new();
        for d in decls {
            if !seen.insert(&d.name) {
                return Err(CrowdError::Semantic(format!(
                    "duplicate column '{}' in table '{name}'",
                    d.name
                )));
            }
        }
        let columns = decls
            .iter()
            .map(|d| ColumnDef {
                name: d.name.clone(),
                ty: if d.is_int {
                    ColumnType::Int
                } else {
                    ColumnType::Text
                },
                crowd: d.crowd,
            })
            .collect();
        self.tables.insert(
            name.to_owned(),
            TableDef {
                name: name.to_owned(),
                columns,
                crowd,
            },
        );
        self.rows.insert(name.to_owned(), Vec::new());
        Ok(())
    }

    /// Inserts rows, checking arity and types (NULL is allowed anywhere;
    /// non-crowd NULLs simply stay NULL).
    pub fn insert(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<()> {
        let def = self.table(table)?.clone();
        for row in &rows {
            if row.len() != def.columns.len() {
                return Err(CrowdError::Semantic(format!(
                    "table '{table}' has {} columns but row has {}",
                    def.columns.len(),
                    row.len()
                )));
            }
            for (v, c) in row.iter().zip(&def.columns) {
                let ok = matches!(
                    (v, c.ty),
                    (Value::Null, _)
                        | (Value::Int(_), ColumnType::Int)
                        | (Value::Text(_), ColumnType::Text)
                );
                if !ok {
                    return Err(CrowdError::Semantic(format!(
                        "type mismatch for column '{}' of '{table}': {v}",
                        c.name
                    )));
                }
            }
        }
        self.rows.get_mut(table).expect("table exists").extend(rows); // crowdkit-lint: allow(PANIC001) — table() succeeded above; create_table inserts rows and tables entries together
        Ok(())
    }

    /// The definition of a table.
    pub fn table(&self, name: &str) -> Result<&TableDef> {
        self.tables
            .get(name)
            .ok_or_else(|| CrowdError::Semantic(format!("unknown table '{name}'")))
    }

    /// The rows of a table.
    pub fn rows(&self, name: &str) -> Result<&[Vec<Value>]> {
        self.rows
            .get(name)
            .map(Vec::as_slice)
            .ok_or_else(|| CrowdError::Semantic(format!("unknown table '{name}'")))
    }

    /// Writes a single cell (used by crowd-fill write-back so later
    /// queries reuse purchased values).
    pub fn write_cell(&mut self, table: &str, row: usize, col: usize, value: Value) -> Result<()> {
        let rows = self
            .rows
            .get_mut(table)
            .ok_or_else(|| CrowdError::Semantic(format!("unknown table '{table}'")))?;
        let r = rows
            .get_mut(row)
            .ok_or_else(|| CrowdError::Execution(format!("row {row} out of range for '{table}'")))?;
        let c = r
            .get_mut(col)
            .ok_or_else(|| CrowdError::Execution(format!("column {col} out of range")))?;
        *c = value;
        Ok(())
    }

    /// Names of all tables, sorted (the catalog is key-ordered).
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decls() -> Vec<ColumnDecl> {
        vec![
            ColumnDecl {
                name: "id".into(),
                is_int: true,
                crowd: false,
            },
            ColumnDecl {
                name: "name".into(),
                is_int: false,
                crowd: false,
            },
            ColumnDecl {
                name: "category".into(),
                is_int: false,
                crowd: true,
            },
        ]
    }

    #[test]
    fn create_and_lookup() {
        let mut c = Catalog::new();
        c.create_table("products", &decls(), false).unwrap();
        let t = c.table("products").unwrap();
        assert_eq!(t.columns.len(), 3);
        assert_eq!(t.column_index("name"), Some(1));
        assert!(t.is_crowd_column("category"));
        assert!(!t.is_crowd_column("name"));
        assert!(c.table("missing").is_err());
        assert_eq!(c.table_names(), vec!["products"]);
    }

    #[test]
    fn duplicate_table_and_column_rejected() {
        let mut c = Catalog::new();
        c.create_table("t", &decls(), false).unwrap();
        assert!(c.create_table("t", &decls(), false).is_err());
        let dup = vec![
            ColumnDecl {
                name: "x".into(),
                is_int: true,
                crowd: false,
            },
            ColumnDecl {
                name: "x".into(),
                is_int: true,
                crowd: false,
            },
        ];
        assert!(c.create_table("u", &dup, false).is_err());
    }

    #[test]
    fn insert_checks_arity_and_types() {
        let mut c = Catalog::new();
        c.create_table("t", &decls(), false).unwrap();
        assert!(c
            .insert("t", vec![vec![Value::Int(1), Value::text("a"), Value::Null]])
            .is_ok());
        // Wrong arity.
        assert!(c.insert("t", vec![vec![Value::Int(1)]]).is_err());
        // Wrong type.
        assert!(c
            .insert(
                "t",
                vec![vec![Value::text("x"), Value::text("a"), Value::Null]]
            )
            .is_err());
        assert_eq!(c.rows("t").unwrap().len(), 1);
    }

    #[test]
    fn write_cell_updates_storage() {
        let mut c = Catalog::new();
        c.create_table("t", &decls(), false).unwrap();
        c.insert("t", vec![vec![Value::Int(1), Value::text("a"), Value::Null]])
            .unwrap();
        c.write_cell("t", 0, 2, Value::text("phones")).unwrap();
        assert_eq!(c.rows("t").unwrap()[0][2], Value::text("phones"));
        assert!(c.write_cell("t", 5, 0, Value::Null).is_err());
        assert!(c.write_cell("t", 0, 9, Value::Null).is_err());
    }
}
