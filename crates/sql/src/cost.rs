//! Crowd-native cost model for CrowdSQL plans.
//!
//! Plans are scored on three axes instead of CPU time:
//! **spend** (expected monetary cost: answers bought × per-kind price from
//! a [`CostModel`]), **rounds** (expected platform round-trips, the
//! latency proxy — one `ask`/`ask_batch` call is one round), and
//! **quality** (probability a majority vote of `redundancy` workers with
//! the assumed accuracy returns the true answer; a plan is as good as its
//! weakest crowd operator).
//!
//! [`SelectivityMemory`] feeds observed pass-rates from prior executions
//! back into the estimator, so crowd-join reordering and predicate
//! placement improve as a session answers queries.

use std::collections::BTreeMap;

use crowdkit_core::budget::CostModel;

use crate::ast::CompareOp;
use crate::catalog::Catalog;
use crate::ir::{BoundPredicate, Plan, Side};

/// Predicted cost of a plan (or one operator) along the three crowd axes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostVector {
    /// Expected monetary spend (budget units).
    pub spend: f64,
    /// Expected platform round-trips (latency proxy).
    pub rounds: f64,
    /// Probability the crowd answers driving the result are correct
    /// (1.0 for machine-only plans).
    pub quality: f64,
}

impl CostVector {
    /// The zero cost of a machine-only operator.
    pub fn free() -> Self {
        Self {
            spend: 0.0,
            rounds: 0.0,
            quality: 1.0,
        }
    }
}

/// Scalarization weights used to pick between candidate plans.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Weight on expected spend.
    pub spend: f64,
    /// Weight on expected rounds.
    pub rounds: f64,
    /// Weight on expected error (`1 - quality`).
    pub quality: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        // Spend dominates; rounds break ties between equal-spend plans;
        // the quality term only matters when redundancy knobs differ.
        Self {
            spend: 1.0,
            rounds: 0.05,
            quality: 10.0,
        }
    }
}

impl CostWeights {
    /// Collapses a cost vector to a single comparable score.
    pub fn scalarize(&self, v: &CostVector) -> f64 {
        self.spend * v.spend + self.rounds * v.rounds + self.quality * (1.0 - v.quality)
    }
}

/// Per-operator prediction, in bottom-up plan order.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeCost {
    /// The operator's display label.
    pub node: String,
    /// Estimated output rows.
    pub rows_out: f64,
    /// Predicted cost of this operator alone.
    pub cost: CostVector,
}

/// Full prediction for a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanCost {
    /// Sum of per-operator spend and rounds; min of per-operator quality.
    pub total: CostVector,
    /// Per-operator breakdown, bottom-up.
    pub nodes: Vec<NodeCost>,
}

/// Observed predicate pass-rates from prior executions, keyed by the
/// predicate's display text. Deterministically ordered.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SelectivityMemory {
    observed: BTreeMap<String, (u64, u64)>,
}

impl SelectivityMemory {
    /// An empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `passed` of `total` rows survived the predicate.
    pub fn record(&mut self, key: &str, passed: u64, total: u64) {
        if total == 0 {
            return;
        }
        let e = self.observed.entry(key.to_owned()).or_insert((0, 0));
        e.0 += passed;
        e.1 += total;
    }

    /// Observed selectivity for a predicate, when any rows were seen.
    pub fn selectivity(&self, key: &str) -> Option<f64> {
        self.observed
            .get(key)
            .map(|(passed, total)| *passed as f64 / *total as f64)
    }

    /// Number of distinct predicates observed.
    pub fn len(&self) -> usize {
        self.observed.len()
    }

    /// True when nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.observed.is_empty()
    }
}

/// Probability that a strict majority of `votes` independent workers,
/// each correct with probability `accuracy`, returns the true answer
/// (ties count as failures, matching the executor's "no verdict" path).
pub fn majority_prob(accuracy: f64, votes: u32) -> f64 {
    let v = votes.max(1);
    let p = accuracy.clamp(0.0, 1.0);
    let mut total = 0.0;
    for k in (v / 2 + 1)..=v {
        let mut coeff = 1.0;
        for i in 0..k {
            coeff = coeff * (v - i) as f64 / (i + 1) as f64;
        }
        total += coeff * p.powi(k as i32) * (1.0 - p).powi((v - k) as i32);
    }
    total
}

/// Estimates plan cost against catalog statistics and remembered
/// selectivities.
pub struct Estimator<'a> {
    catalog: &'a Catalog,
    memory: &'a SelectivityMemory,
    prices: &'a CostModel,
    accuracy: f64,
}

impl<'a> Estimator<'a> {
    /// An estimator over the given catalog and memory; `accuracy` is the
    /// assumed per-worker probability of a correct answer.
    pub fn new(
        catalog: &'a Catalog,
        memory: &'a SelectivityMemory,
        prices: &'a CostModel,
        accuracy: f64,
    ) -> Self {
        Self {
            catalog,
            memory,
            prices,
            accuracy,
        }
    }

    fn table_rows(&self, table: &str) -> f64 {
        self.catalog.rows(table).map(|r| r.len() as f64).unwrap_or(0.0)
    }

    /// Fraction of NULL cells in a base column (1.0 for empty tables,
    /// since an unfilled crowd column starts all-NULL).
    fn null_fraction(&self, table: &str, base_index: usize) -> f64 {
        match self.catalog.rows(table) {
            Ok(rows) if !rows.is_empty() => {
                let nulls = rows
                    .iter()
                    .filter(|r| r.get(base_index).map(|v| v.is_null()).unwrap_or(false))
                    .count();
                nulls as f64 / rows.len() as f64
            }
            _ => 1.0,
        }
    }

    fn predicate_selectivity(&self, pred: &BoundPredicate) -> f64 {
        if let Some(s) = self.memory.selectivity(&pred.to_string()) {
            return s;
        }
        match pred {
            BoundPredicate::Compare { op, .. } => match op {
                CompareOp::Eq => 0.1,
                CompareOp::Ne => 0.9,
                _ => 1.0 / 3.0,
            },
            // Semantic equality across free text: assume sparse matches.
            BoundPredicate::CrowdEqual { .. } => 0.1,
        }
    }

    /// Estimated output rows of a plan (used for crowd-join reordering).
    pub fn rows(&self, plan: &Plan) -> f64 {
        self.walk(plan, &mut Vec::new())
    }

    /// Full cost prediction for a plan.
    pub fn estimate(&self, plan: &Plan) -> PlanCost {
        let mut nodes = Vec::new();
        self.walk(plan, &mut nodes);
        let total = CostVector {
            spend: nodes.iter().map(|n| n.cost.spend).sum(),
            rounds: nodes.iter().map(|n| n.cost.rounds).sum(),
            quality: nodes
                .iter()
                .map(|n| n.cost.quality)
                .fold(1.0, f64::min),
        };
        PlanCost { total, nodes }
    }

    /// Bottom-up walk returning estimated output rows and appending one
    /// [`NodeCost`] per operator.
    fn walk(&self, plan: &Plan, nodes: &mut Vec<NodeCost>) -> f64 {
        let vote_quality = |redundancy: u32| majority_prob(self.accuracy, redundancy);
        let (rows, cost) = match plan {
            Plan::Scan { table, .. } => (self.table_rows(table), CostVector::free()),
            Plan::CrossJoin { left, right } => {
                let l = self.walk(left, nodes);
                let r = self.walk(right, nodes);
                (l * r, CostVector::free())
            }
            Plan::HashJoin { left, right, .. } => {
                let l = self.walk(left, nodes);
                let r = self.walk(right, nodes);
                // Equi-join estimate: as if the larger side were a key.
                (l * r / l.max(r).max(1.0), CostVector::free())
            }
            Plan::Filter { input, predicates } => {
                let mut rows = self.walk(input, nodes);
                for p in predicates {
                    rows *= self.predicate_selectivity(p);
                }
                (rows, CostVector::free())
            }
            Plan::CrowdFill {
                input,
                slots,
                redundancy,
                batch,
            } => {
                let rows = self.walk(input, nodes);
                // The executor dedupes fills by base cell, so a column is
                // bought at most once per base row even above a join.
                let cells: f64 = slots
                    .iter()
                    .map(|s| {
                        rows.min(self.table_rows(&s.table))
                            * self.null_fraction(&s.table, s.base_index)
                    })
                    .sum();
                let rounds = if *batch > 0 {
                    (cells / *batch as f64).ceil()
                } else {
                    cells
                };
                let cost = CostVector {
                    spend: cells * *redundancy as f64 * self.prices.fill,
                    rounds,
                    quality: if cells > 0.0 { vote_quality(*redundancy) } else { 1.0 },
                };
                (rows, cost)
            }
            Plan::CrowdCompare {
                input,
                predicates,
                redundancy,
            } => {
                let rows_in = self.walk(input, nodes);
                let verdicts = rows_in * predicates.len() as f64;
                let mut rows = rows_in;
                for p in predicates {
                    rows *= self.predicate_selectivity(p);
                }
                let cost = CostVector {
                    spend: verdicts * *redundancy as f64 * self.prices.single_choice,
                    rounds: verdicts,
                    quality: if verdicts > 0.0 { vote_quality(*redundancy) } else { 1.0 },
                };
                (rows, cost)
            }
            Plan::CrowdJoin {
                left,
                right,
                left_expr,
                right_expr,
                redundancy,
                batch,
                outer,
            } => {
                let l = self.walk(left, nodes);
                let r = self.walk(right, nodes);
                let pairs = l * r;
                let (outer_rows, inner_rows) = match outer {
                    Side::Left => (l, r),
                    Side::Right => (r, l),
                };
                let rounds = if *batch > 0 {
                    outer_rows * (inner_rows / *batch as f64).ceil().max(1.0)
                } else {
                    pairs
                };
                let key = format!("CROWDEQUAL({left_expr}, {right_expr})");
                let sel = self.memory.selectivity(&key).unwrap_or(0.1);
                let cost = CostVector {
                    spend: pairs * *redundancy as f64 * self.prices.single_choice,
                    rounds,
                    quality: if pairs > 0.0 { vote_quality(*redundancy) } else { 1.0 },
                };
                (pairs * sel, cost)
            }
            Plan::Sort { input, .. } => (self.walk(input, nodes), CostVector::free()),
            Plan::CrowdSort {
                input,
                top_k,
                redundancy,
                ..
            } => {
                let n = self.walk(input, nodes);
                let (matches, rounds) = match top_k {
                    // Single-elimination bracket per winner: the i-th
                    // winner is found by a fresh bracket over the n-i
                    // survivors at n-i-1 matches, so top-k costs
                    // Σ_{i=0..k-1} (n-1-i) matches. Each bracket plays
                    // ~log2 of its field in sequential rounds.
                    Some(k) if (*k as f64) < n => {
                        let k = *k as f64;
                        let matches = k * (n - 1.0) - k * (k - 1.0) / 2.0;
                        (matches, k * n.log2().ceil().max(1.0))
                    }
                    // Full pairwise tournament, bought in one batch.
                    _ => {
                        let pairs = n * (n - 1.0) / 2.0;
                        (pairs, if pairs > 0.0 { 1.0 } else { 0.0 })
                    }
                };
                let cost = CostVector {
                    spend: matches.max(0.0) * *redundancy as f64 * self.prices.pairwise,
                    rounds,
                    quality: if matches > 0.0 { vote_quality(*redundancy) } else { 1.0 },
                };
                (n, cost)
            }
            Plan::Limit { input, n } => {
                let rows = self.walk(input, nodes);
                (rows.min(*n as f64), CostVector::free())
            }
            Plan::Project { input, .. } => (self.walk(input, nodes), CostVector::free()),
            Plan::CountStar { input } => {
                self.walk(input, nodes);
                (1.0, CostVector::free())
            }
        };
        nodes.push(NodeCost {
            node: plan.label(),
            rows_out: rows,
            cost,
        });
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Statement;
    use crate::catalog::ColumnType;
    use crate::ir::{FillSlot, SlotRef};
    use crate::parser::parse_statement;
    use crate::value::Value;

    #[test]
    fn majority_prob_matches_binomials() {
        assert!((majority_prob(0.9, 1) - 0.9).abs() < 1e-12);
        // 3 votes at 0.9: p^3 + 3 p^2 (1-p) = 0.729 + 0.243 = 0.972.
        assert!((majority_prob(0.9, 3) - 0.972).abs() < 1e-12);
        // Even vote counts can tie; ties are failures.
        assert!(majority_prob(0.9, 2) < majority_prob(0.9, 3));
        assert!((majority_prob(1.0, 5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn memory_accumulates_and_reports() {
        let mut m = SelectivityMemory::new();
        assert!(m.is_empty());
        assert_eq!(m.selectivity("x = 1"), None);
        m.record("x = 1", 2, 10);
        m.record("x = 1", 3, 10);
        assert_eq!(m.selectivity("x = 1"), Some(0.25));
        m.record("ignored", 0, 0);
        assert_eq!(m.len(), 1);
    }

    fn catalog_with_rows(n: usize) -> Catalog {
        let mut c = Catalog::new();
        match parse_statement("CREATE TABLE t (id INT, category CROWD TEXT)").unwrap() {
            Statement::CreateTable {
                name,
                columns,
                crowd,
            } => c.create_table(&name, &columns, crowd).unwrap(),
            other => panic!("unexpected {other:?}"),
        }
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| vec![Value::Int(i as i64), Value::Null])
            .collect();
        c.insert("t", rows).unwrap();
        c
    }

    fn fill_over_scan(input: Plan, redundancy: u32) -> Plan {
        Plan::CrowdFill {
            input: Box::new(input),
            slots: vec![FillSlot {
                slot: 1,
                table: "t".into(),
                column: "category".into(),
                base_index: 1,
                ty: ColumnType::Text,
            }],
            redundancy,
            batch: 0,
        }
    }

    #[test]
    fn filtered_fill_predicted_cheaper_than_eager_fill() {
        let catalog = catalog_with_rows(10);
        let memory = SelectivityMemory::new();
        let prices = CostModel::unit();
        let est = Estimator::new(&catalog, &memory, &prices, 0.9);

        let scan = Plan::Scan {
            table: "t".into(),
            width: 2,
        };
        let pred = BoundPredicate::Compare {
            left: crate::ir::BoundExpr::Slot(SlotRef {
                slot: 0,
                name: "id".into(),
            }),
            op: CompareOp::Eq,
            right: crate::ir::BoundExpr::Literal(Value::Int(3)),
        };
        let eager = est.estimate(&fill_over_scan(scan.clone(), 3));
        let lazy = est.estimate(&fill_over_scan(
            Plan::Filter {
                input: Box::new(scan),
                predicates: vec![pred],
            },
            3,
        ));
        // 10 cells × 3 votes vs (10 × 0.1) cells × 3 votes.
        assert!((eager.total.spend - 30.0).abs() < 1e-9, "{eager:?}");
        assert!(lazy.total.spend < eager.total.spend);
        assert!(eager.total.quality < 1.0 && eager.total.quality > 0.9);
    }

    #[test]
    fn tournament_beats_full_sort_only_when_k_is_small() {
        let memory = SelectivityMemory::new();
        let prices = CostModel::unit();

        let sort = |catalog: &Catalog, top_k: Option<usize>| {
            let est = Estimator::new(catalog, &memory, &prices, 0.95);
            est.estimate(&Plan::CrowdSort {
                input: Box::new(Plan::Scan {
                    table: "t".into(),
                    width: 2,
                }),
                slot: SlotRef {
                    slot: 1,
                    name: "category".into(),
                },
                top_k,
                redundancy: 1,
            })
            .total
        };

        let big = catalog_with_rows(20);
        assert!(sort(&big, Some(2)).spend < sort(&big, None).spend);

        // For n=3, k=2 the replayed brackets cost as much as the 3
        // full-sort pairs and take more round-trips — no win left.
        let small = catalog_with_rows(3);
        let topk = sort(&small, Some(2));
        let full = sort(&small, None);
        assert!(topk.spend >= full.spend);
        assert!(topk.rounds > full.rounds);
    }

    #[test]
    fn weights_prefer_cheaper_spend_then_fewer_rounds() {
        let w = CostWeights::default();
        let a = CostVector {
            spend: 10.0,
            rounds: 10.0,
            quality: 0.97,
        };
        let b = CostVector {
            spend: 12.0,
            rounds: 1.0,
            quality: 0.97,
        };
        assert!(w.scalarize(&a) < w.scalarize(&b), "spend dominates");
        let c = CostVector {
            spend: 10.0,
            rounds: 2.0,
            quality: 0.97,
        };
        assert!(w.scalarize(&c) < w.scalarize(&a), "rounds break ties");
    }
}
