//! Volcano-style pull executor for CrowdSQL physical plans.
//!
//! [`build`] lowers a [`Plan`](crate::ir::Plan) tree into a tree of
//! [`Operator`]s, each exposing the classic iterator interface: `next()`
//! yields one row at a time, pulled from the root. Compared to the old
//! materialize-everything interpreter this gives
//!
//! * **early exit** — `Limit` stops pulling from its child, so upstream
//!   machine work ends as soon as enough rows arrived;
//! * **per-operator accounting** — every crowd operator measures its own
//!   question/row deltas, which the session layer emits as `sql.node`
//!   observability events and feeds back into the cost model's
//!   selectivity memory;
//! * **round/spend metering** — all crowd traffic flows through a
//!   [`RoundOracle`] wrapper that counts platform round-trips and actual
//!   money spent, the two quantities the optimizer predicts.
//!
//! Crowd purchases are *deduplicated by base cell / value pair* inside one
//! query: a fill above a join asks once per underlying cell (not once per
//! joined row), and CROWDEQUAL verdicts are cached per unordered value
//! pair exactly like the old executor.
//!
//! Determinism contract: operators pull sequentially, all fold iteration
//! uses key-ordered maps, and crowd asks are issued in a fixed
//! plan-defined order — results are byte-identical at any thread count.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap, HashSet};

use crowdkit_provenance as prov;

use crowdkit_core::answer::Answer;
use crowdkit_core::ask::{AskOutcome, AskRequest};
use crowdkit_core::error::{CrowdError, Result};
use crowdkit_core::ids::IdGen;
use crowdkit_core::task::Task;
use crowdkit_core::traits::CrowdOracle;
use crowdkit_ops::sort::rankers::copeland;
use crowdkit_ops::sort::tournament::crowd_top_k;
use crowdkit_ops::sort::{collect_comparisons, order_by_scores, ComparisonGraph};

use crate::ast::CompareOp;
use crate::catalog::{Catalog, ColumnType};
use crate::exec::TaskFactory;
use crate::ir::{BoundExpr, BoundPredicate, FillSlot, Plan, Side};
use crate::value::Value;

const NO_ORACLE_FILL: &str = "plan requires the crowd (CrowdFill) but no oracle was provided";
const NO_ORACLE_FILTER: &str = "plan requires the crowd (CrowdFilter) but no oracle was provided";
const NO_ORACLE_JOIN: &str = "plan requires the crowd (CrowdJoin) but no oracle was provided";
const NO_ORACLE_SORT: &str = "plan requires the crowd (CrowdSort) but no oracle was provided";

/// One in-flight row: its values plus provenance (base table, base row
/// index) for crowd-fill write-back.
#[derive(Debug, Clone)]
pub(crate) struct ExecRow {
    /// Column values in the operator's output layout.
    pub values: Vec<Value>,
    /// `(table, base_row_index)` per base table contributing to this row.
    pub prov: Vec<(String, usize)>,
}

/// Runtime statistics for one crowd operator, collected bottom-up after
/// the root is drained (emitted as `sql.node` events by the session).
#[derive(Debug, Clone)]
pub(crate) struct NodeRuntime {
    /// Operator name as reported in observability ("CrowdFill", ...).
    pub node: &'static str,
    /// Rows pulled from the child(ren). Joins report candidate pairs.
    pub rows_in: u64,
    /// Rows emitted.
    pub rows_out: u64,
    /// Crowd answers purchased by this operator alone.
    pub questions: u64,
    /// Money spent by this operator alone (sum of per-answer costs).
    pub spend: f64,
}

/// A [`CrowdOracle`] wrapper that meters platform round-trips and actual
/// spend — the two quantities the cost model predicts. Each `ask*` call
/// counts as one round (a batch is one round-trip: that is its point);
/// spend is the sum of [`Answer::cost`] over delivered answers.
pub(crate) struct RoundOracle<'a> {
    inner: &'a dyn CrowdOracle,
    rounds: Cell<u64>,
    spend: Cell<f64>,
    /// Per-task / per-worker spend attribution, kept only while a
    /// provenance scope wants detail events (see [`prov::capture_detail`]).
    ledger: RefCell<Option<prov::SpendLedger>>,
}

impl<'a> RoundOracle<'a> {
    /// Wraps `inner`, starting both meters at zero.
    pub fn new(inner: &'a dyn CrowdOracle) -> Self {
        Self {
            inner,
            rounds: Cell::new(0),
            spend: Cell::new(0.0),
            ledger: RefCell::new(prov::capture_detail().then(prov::SpendLedger::new)),
        }
    }

    /// Platform round-trips so far.
    pub fn rounds(&self) -> u64 {
        self.rounds.get()
    }

    /// Money spent so far (sum of per-answer costs).
    pub fn spend(&self) -> f64 {
        self.spend.get()
    }

    /// Flushes the task/worker spend ledger as `prov.spend` events
    /// (no-op when no provenance detail was being captured).
    pub fn emit_ledger(&self) {
        if let Some(ledger) = &*self.ledger.borrow() {
            ledger.emit();
        }
    }

    fn book(&self, answers: &[Answer]) {
        let c: f64 = answers.iter().map(|a| a.cost).sum();
        self.spend.set(self.spend.get() + c);
        if let Some(ledger) = &mut *self.ledger.borrow_mut() {
            for a in answers {
                ledger.note(a.task.0, a.worker.0, a.cost);
            }
        }
    }

    fn note(&self, answers: &[Answer]) {
        self.rounds.set(self.rounds.get() + 1);
        self.book(answers);
    }
}

impl CrowdOracle for RoundOracle<'_> {
    // Every method delegates to the wrapped oracle (never to the trait
    // defaults, which would bypass the platform's own batching).
    fn ask_one(&self, task: &Task) -> Result<Answer> {
        let a = self.inner.ask_one(task)?;
        self.note(std::slice::from_ref(&a));
        Ok(a)
    }

    fn ask(&self, req: &AskRequest<'_>) -> Result<AskOutcome> {
        let out = self.inner.ask(req)?;
        self.note(&out.answers);
        Ok(out)
    }

    fn ask_batch(&self, reqs: &[AskRequest<'_>]) -> Result<Vec<AskOutcome>> {
        let outs = self.inner.ask_batch(reqs)?;
        self.rounds.set(self.rounds.get() + 1);
        for o in &outs {
            self.book(&o.answers);
        }
        Ok(outs)
    }

    fn ask_many(&self, task: &Task, k: usize) -> Result<Vec<Answer>> {
        let answers = self.inner.ask_many(task, k)?;
        self.note(&answers);
        Ok(answers)
    }

    fn remaining_budget(&self) -> Option<f64> {
        self.inner.remaining_budget()
    }

    fn answers_delivered(&self) -> u64 {
        self.inner.answers_delivered()
    }
}

/// Shared execution context threaded through every operator.
pub(crate) struct ExecCx<'a> {
    /// Metered oracle, absent for machine-only execution.
    pub oracle: Option<&'a RoundOracle<'a>>,
    /// Task phrasing.
    pub factory: &'a mut (dyn TaskFactory + 'a),
    /// Task id generator (fresh per query).
    pub ids: IdGen,
    /// CROWDEQUAL verdict cache, keyed by unordered display pair.
    equal_cache: HashMap<(String, String), bool>,
    /// Fill results keyed by base cell `(table, row, column)` — a fill
    /// above a join buys each underlying cell once.
    fill_results: HashMap<(String, usize, usize), Option<Value>>,
    /// `(table, row, column, value)` cells to persist after execution.
    pub writebacks: Vec<(String, usize, usize, Value)>,
    /// Cells successfully reconciled and filled.
    pub cells_filled: u64,
    /// CROWDEQUAL verdicts purchased (cache misses).
    pub equal_checks: u64,
    /// Pairwise comparisons purchased by crowd sorts.
    pub comparisons: u64,
    /// Per-crowd-operator runtime stats, pushed bottom-up in `finish`.
    pub node_stats: Vec<NodeRuntime>,
    /// `(predicate key, rows passed, rows seen)` selectivity observations.
    pub observations: Vec<(String, u64, u64)>,
}

impl<'a> ExecCx<'a> {
    fn new(oracle: Option<&'a RoundOracle<'a>>, factory: &'a mut (dyn TaskFactory + 'a)) -> Self {
        Self {
            oracle,
            factory,
            ids: IdGen::new(),
            equal_cache: HashMap::new(),
            fill_results: HashMap::new(),
            writebacks: Vec::new(),
            cells_filled: 0,
            equal_checks: 0,
            comparisons: 0,
            node_stats: Vec::new(),
            observations: Vec::new(),
        }
    }

    /// Answers delivered by the underlying platform so far (0 without an
    /// oracle) — operators diff this around their own crowd calls.
    fn delivered(&self) -> u64 {
        self.oracle.map_or(0, |o| o.answers_delivered())
    }

    /// Money spent through the metered oracle so far (0.0 without an
    /// oracle) — operators diff this around their own crowd calls.
    fn spent(&self) -> f64 {
        self.oracle.map_or(0.0, |o| o.spend())
    }

    fn require_oracle(&self, msg: &'static str) -> Result<&'a RoundOracle<'a>> {
        self.oracle.ok_or(CrowdError::Unsupported(msg))
    }

    /// Cached CROWDEQUAL verdict for a value pair, if one was purchased.
    fn cached_equal(&self, left: &Value, right: &Value) -> Option<bool> {
        self.equal_cache.get(&equal_key(left, right)).copied()
    }

    /// Buys (or reuses) one CROWDEQUAL verdict.
    fn crowd_equal(&mut self, left: &Value, right: &Value, votes: u32) -> Result<bool> {
        let key = equal_key(left, right);
        if let Some(&v) = self.equal_cache.get(&key) {
            return Ok(v);
        }
        let oracle = self.require_oracle(NO_ORACLE_FILTER)?;
        let task = self.factory.equal_task(self.ids.next_task(), left, right);
        let out = oracle.ask(&AskRequest::new(&task).with_redundancy(votes.max(1) as usize))?;
        if let Some(e) = &out.shortfall {
            if !e.is_resource_exhaustion() {
                return Err(e.clone());
            }
        }
        let verdict = reconcile_equal(&out.answers);
        self.equal_cache.insert(key, verdict);
        self.equal_checks += 1;
        Ok(verdict)
    }
}

/// Unordered cache key for a CROWDEQUAL value pair.
fn equal_key(left: &Value, right: &Value) -> (String, String) {
    let mut key = (left.display_raw(), right.display_raw());
    if key.0 > key.1 {
        std::mem::swap(&mut key.0, &mut key.1);
    }
    key
}

/// Majority vote over yes/no equality answers (ties are "no").
fn reconcile_equal(answers: &[Answer]) -> bool {
    let mut yes = 0u32;
    let mut no = 0u32;
    for a in answers {
        match a.value.as_choice() {
            Some(1) => yes += 1,
            _ => no += 1,
        }
    }
    yes > no
}

/// Plurality-reconciles fill answers into one value. Returns `None` on
/// tie or no usable answer (the cell stays NULL).
fn reconcile_fill(answers: &[Answer], ty: ColumnType) -> Option<Value> {
    // Key-ordered maps: the plurality fold below iterates them, and
    // iteration order must never depend on hashing (determinism contract).
    let mut counts: BTreeMap<String, u32> = BTreeMap::new();
    let mut surface: BTreeMap<String, String> = BTreeMap::new();
    for a in answers {
        if let Some(text) = a.value.as_text() {
            let norm = text.trim().to_lowercase();
            if norm.is_empty() {
                continue;
            }
            surface
                .entry(norm.clone())
                .or_insert_with(|| text.trim().to_owned());
            *counts.entry(norm).or_insert(0) += 1;
        }
    }
    let mut tallies: Vec<(String, u32)> = counts.into_iter().collect();
    tallies.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let winner = match tallies.as_slice() {
        [] => return None,
        [(_, c1), (_, c2), ..] if c1 == c2 => return None,
        [(top, _), ..] => surface[top].clone(),
    };
    match ty {
        ColumnType::Int => winner.parse::<i64>().ok().map(Value::Int),
        ColumnType::Text => Some(Value::Text(winner)),
    }
}

fn eval(e: &BoundExpr, row: &ExecRow) -> Value {
    match e {
        BoundExpr::Slot(s) => row.values[s.slot].clone(),
        BoundExpr::Literal(v) => v.clone(),
    }
}

/// SQL WHERE semantics: NULL comparisons drop the row.
fn eval_machine_predicate(p: &BoundPredicate, row: &ExecRow) -> Result<bool> {
    let BoundPredicate::Compare { left, op, right } = p else {
        return Err(CrowdError::Execution(
            "crowd predicate in MachineFilter".into(),
        ));
    };
    let lv = eval(left, row);
    let rv = eval(right, row);
    Ok(match op {
        CompareOp::Eq => lv.sql_eq(&rv).unwrap_or(false),
        CompareOp::Ne => lv.sql_eq(&rv).map(|b| !b).unwrap_or(false),
        CompareOp::Lt => lv.compare(&rv).is_some_and(|o| o.is_lt()),
        CompareOp::Le => lv.compare(&rv).is_some_and(|o| o.is_le()),
        CompareOp::Gt => lv.compare(&rv).is_some_and(|o| o.is_gt()),
        CompareOp::Ge => lv.compare(&rv).is_some_and(|o| o.is_ge()),
    })
}

/// The Volcano iterator interface.
pub(crate) trait Operator {
    /// Pulls the next row, or `None` at end of stream.
    fn next(&mut self, cx: &mut ExecCx<'_>) -> Result<Option<ExecRow>>;

    /// Called once after the root is drained (or abandoned by a limit):
    /// recurses into children first, then flushes this operator's
    /// runtime stats and selectivity observations into the context, so
    /// `cx.node_stats` ends up in deterministic bottom-up plan order.
    fn finish(&mut self, cx: &mut ExecCx<'_>);
}

/// Lowers a physical plan into an operator tree. Scans materialize their
/// rows here (the caller holds the catalog lock only around this call).
/// Plans that need the crowd fail here when no oracle was provided.
pub(crate) fn build(
    plan: &Plan,
    catalog: &Catalog,
    has_oracle: bool,
) -> Result<Box<dyn Operator>> {
    Ok(match plan {
        Plan::Scan { table, .. } => {
            let rows = catalog
                .rows(table)?
                .iter()
                .enumerate()
                .map(|(i, r)| ExecRow {
                    values: r.clone(),
                    prov: vec![(table.clone(), i)],
                })
                .collect();
            Box::new(ScanOp { rows, pos: 0 })
        }
        Plan::CrossJoin { left, right } => Box::new(CrossJoinOp {
            left: build(left, catalog, has_oracle)?,
            right: build(right, catalog, has_oracle)?,
            right_buf: Vec::new(),
            built: false,
            current: None,
            right_pos: 0,
        }),
        Plan::HashJoin {
            left,
            right,
            left_slot,
            right_slot,
        } => {
            let lw = left.width();
            Box::new(HashJoinOp {
                left: build(left, catalog, has_oracle)?,
                right: build(right, catalog, has_oracle)?,
                li: left_slot.slot,
                ri: right_slot.slot - lw,
                table: HashMap::new(),
                built: false,
                queue: Vec::new(),
                queue_pos: 0,
            })
        }
        Plan::Filter { input, predicates } => {
            let keys: Vec<String> = predicates.iter().map(|p| p.to_string()).collect();
            let counts = vec![(0u64, 0u64); predicates.len()];
            Box::new(FilterOp {
                child: build(input, catalog, has_oracle)?,
                predicates: predicates.clone(),
                keys,
                counts,
                reported: false,
            })
        }
        Plan::CrowdFill {
            input,
            slots,
            redundancy,
            batch,
        } => {
            if !has_oracle {
                return Err(CrowdError::Unsupported(NO_ORACLE_FILL));
            }
            Box::new(CrowdFillOp {
                child: build(input, catalog, has_oracle)?,
                slots: slots.clone(),
                redundancy: *redundancy,
                batch: *batch,
                buf: Vec::new(),
                pos: 0,
                built: false,
                questions: 0,
                spend: 0.0,
                reported: false,
            })
        }
        Plan::CrowdCompare {
            input,
            predicates,
            redundancy,
        } => {
            if !has_oracle {
                return Err(CrowdError::Unsupported(NO_ORACLE_FILTER));
            }
            let keys: Vec<String> = predicates.iter().map(|p| p.to_string()).collect();
            let counts = vec![(0u64, 0u64); predicates.len()];
            Box::new(CrowdCompareOp {
                child: build(input, catalog, has_oracle)?,
                predicates: predicates.clone(),
                redundancy: *redundancy,
                keys,
                counts,
                rows_in: 0,
                rows_out: 0,
                questions: 0,
                spend: 0.0,
                reported: false,
            })
        }
        Plan::CrowdJoin {
            left,
            right,
            left_expr,
            right_expr,
            redundancy,
            batch,
            outer,
        } => {
            if !has_oracle {
                return Err(CrowdError::Unsupported(NO_ORACLE_JOIN));
            }
            let lw = left.width();
            Box::new(CrowdJoinOp {
                left: build(left, catalog, has_oracle)?,
                right: build(right, catalog, has_oracle)?,
                left_expr: left_expr.clone(),
                right_expr: right_expr.clone(),
                left_width: lw,
                key_display: format!("CROWDEQUAL({left_expr}, {right_expr})"),
                redundancy: *redundancy,
                batch: *batch,
                outer: *outer,
                out: Vec::new(),
                pos: 0,
                built: false,
                rows_in: 0,
                matched: 0,
                pairs: 0,
                questions: 0,
                spend: 0.0,
                reported: false,
            })
        }
        Plan::Sort { input, slot, asc } => Box::new(SortOp {
            child: build(input, catalog, has_oracle)?,
            slot: slot.slot,
            asc: *asc,
            buf: Vec::new(),
            pos: 0,
            built: false,
        }),
        Plan::CrowdSort {
            input,
            slot,
            top_k,
            redundancy,
        } => Box::new(CrowdSortOp {
            child: build(input, catalog, has_oracle)?,
            slot: slot.slot,
            top_k: *top_k,
            redundancy: *redundancy,
            out: Vec::new(),
            pos: 0,
            built: false,
            rows_in: 0,
            questions: 0,
            spend: 0.0,
            worked: false,
            reported: false,
        }),
        Plan::Limit { input, n } => Box::new(LimitOp {
            child: build(input, catalog, has_oracle)?,
            remaining: *n,
        }),
        Plan::Project { input, slots } => Box::new(ProjectOp {
            child: build(input, catalog, has_oracle)?,
            indices: slots.iter().map(|s| s.slot).collect(),
        }),
        Plan::CountStar { input } => Box::new(CountStarOp {
            child: build(input, catalog, has_oracle)?,
            emitted: false,
        }),
    })
}

/// Runs `plan` to completion, returning the result rows plus everything
/// the session layer needs for stats, write-back and cost feedback.
pub(crate) struct ExecOutput {
    /// Result rows, in plan order.
    pub rows: Vec<ExecRow>,
    /// Cells to persist back into the catalog.
    pub writebacks: Vec<(String, usize, usize, Value)>,
    /// Cells successfully filled.
    pub cells_filled: u64,
    /// CROWDEQUAL verdicts purchased.
    pub equal_checks: u64,
    /// Pairwise sort comparisons purchased.
    pub comparisons: u64,
    /// Per-crowd-operator stats, bottom-up.
    pub node_stats: Vec<NodeRuntime>,
    /// Predicate selectivity observations for the cost model.
    pub observations: Vec<(String, u64, u64)>,
}

pub(crate) fn execute(
    plan: &Plan,
    catalog: &Catalog,
    oracle: Option<&RoundOracle<'_>>,
    factory: &mut dyn TaskFactory,
) -> Result<ExecOutput> {
    let mut root = build(plan, catalog, oracle.is_some())?;
    let mut cx = ExecCx::new(oracle, factory);
    let mut rows = Vec::new();
    while let Some(r) = root.next(&mut cx)? {
        rows.push(r);
    }
    root.finish(&mut cx);
    Ok(ExecOutput {
        rows,
        writebacks: cx.writebacks,
        cells_filled: cx.cells_filled,
        equal_checks: cx.equal_checks,
        comparisons: cx.comparisons,
        node_stats: cx.node_stats,
        observations: cx.observations,
    })
}

// ---------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------

struct ScanOp {
    rows: Vec<ExecRow>,
    pos: usize,
}

impl Operator for ScanOp {
    fn next(&mut self, _cx: &mut ExecCx<'_>) -> Result<Option<ExecRow>> {
        if self.pos < self.rows.len() {
            self.pos += 1;
            Ok(Some(self.rows[self.pos - 1].clone()))
        } else {
            Ok(None)
        }
    }

    fn finish(&mut self, _cx: &mut ExecCx<'_>) {}
}

/// Combines a left and right row (values and provenance concatenated).
fn combine(a: &ExecRow, b: &ExecRow) -> ExecRow {
    let mut values = a.values.clone();
    values.extend(b.values.iter().cloned());
    let mut prov = a.prov.clone();
    prov.extend(b.prov.iter().cloned());
    ExecRow { values, prov }
}

struct CrossJoinOp {
    left: Box<dyn Operator>,
    right: Box<dyn Operator>,
    right_buf: Vec<ExecRow>,
    built: bool,
    current: Option<ExecRow>,
    right_pos: usize,
}

impl Operator for CrossJoinOp {
    fn next(&mut self, cx: &mut ExecCx<'_>) -> Result<Option<ExecRow>> {
        if !self.built {
            while let Some(r) = self.right.next(cx)? {
                self.right_buf.push(r);
            }
            self.built = true;
        }
        loop {
            if self.current.is_none() || self.right_pos >= self.right_buf.len() {
                self.current = self.left.next(cx)?;
                self.right_pos = 0;
                if self.current.is_none() {
                    return Ok(None);
                }
            }
            if let (Some(a), true) = (&self.current, self.right_pos < self.right_buf.len()) {
                let b = &self.right_buf[self.right_pos];
                self.right_pos += 1;
                return Ok(Some(combine(a, b)));
            }
            // Right side is empty: no output at all.
            if self.right_buf.is_empty() {
                self.current = None;
                return Ok(None);
            }
        }
    }

    fn finish(&mut self, cx: &mut ExecCx<'_>) {
        self.left.finish(cx);
        self.right.finish(cx);
    }
}

struct HashJoinOp {
    left: Box<dyn Operator>,
    right: Box<dyn Operator>,
    /// Probe slot in the left row.
    li: usize,
    /// Build slot in the right row (already rebased below the join).
    ri: usize,
    table: HashMap<Value, Vec<ExecRow>>,
    built: bool,
    queue: Vec<ExecRow>,
    queue_pos: usize,
}

impl Operator for HashJoinOp {
    fn next(&mut self, cx: &mut ExecCx<'_>) -> Result<Option<ExecRow>> {
        if !self.built {
            // Build side: the right input, keyed by join value. Hash
            // order is safe: the table is only probed by key and output
            // order follows the probe side. NULL keys never match.
            while let Some(b) = self.right.next(cx)? {
                if !b.values[self.ri].is_null() {
                    self.table.entry(b.values[self.ri].clone()).or_default().push(b);
                }
            }
            self.built = true;
        }
        loop {
            if self.queue_pos < self.queue.len() {
                self.queue_pos += 1;
                return Ok(Some(self.queue[self.queue_pos - 1].clone()));
            }
            let Some(a) = self.left.next(cx)? else {
                return Ok(None);
            };
            if a.values[self.li].is_null() {
                continue; // NULL keys never match
            }
            if let Some(matches) = self.table.get(&a.values[self.li]) {
                self.queue = matches.iter().map(|b| combine(&a, b)).collect();
                self.queue_pos = 0;
            }
        }
    }

    fn finish(&mut self, cx: &mut ExecCx<'_>) {
        self.left.finish(cx);
        self.right.finish(cx);
    }
}

struct FilterOp {
    child: Box<dyn Operator>,
    predicates: Vec<BoundPredicate>,
    keys: Vec<String>,
    /// `(passed, seen)` per predicate, flushed as selectivity feedback.
    counts: Vec<(u64, u64)>,
    reported: bool,
}

impl Operator for FilterOp {
    fn next(&mut self, cx: &mut ExecCx<'_>) -> Result<Option<ExecRow>> {
        loop {
            let Some(row) = self.child.next(cx)? else {
                return Ok(None);
            };
            let mut pass = true;
            for (i, p) in self.predicates.iter().enumerate() {
                self.counts[i].1 += 1;
                if eval_machine_predicate(p, &row)? {
                    self.counts[i].0 += 1;
                } else {
                    pass = false;
                    break;
                }
            }
            if pass {
                return Ok(Some(row));
            }
        }
    }

    fn finish(&mut self, cx: &mut ExecCx<'_>) {
        self.child.finish(cx);
        if !self.reported {
            self.reported = true;
            for (key, &(passed, seen)) in self.keys.iter().zip(&self.counts) {
                cx.observations.push((key.clone(), passed, seen));
            }
        }
    }
}

struct CrowdFillOp {
    child: Box<dyn Operator>,
    slots: Vec<FillSlot>,
    redundancy: u32,
    batch: usize,
    buf: Vec<ExecRow>,
    pos: usize,
    built: bool,
    questions: u64,
    spend: f64,
    reported: bool,
}

/// One fill purchase order: base cell key, the task to ask, target type.
struct PendingFill {
    key: (String, usize, usize),
    task: Task,
    ty: ColumnType,
}

impl CrowdFillOp {
    fn fill_all(&mut self, cx: &mut ExecCx<'_>) -> Result<()> {
        let oracle = cx.require_oracle(NO_ORACLE_FILL)?;
        let q0 = cx.delivered();
        let s0 = cx.spent();
        // Collect one purchase per still-unpriced base cell, in
        // column-major then row order (the old executor's ask order).
        let mut pending: Vec<PendingFill> = Vec::new();
        let mut queued: HashSet<(String, usize, usize)> = HashSet::new();
        for fs in &self.slots {
            for row in &self.buf {
                if !row.values[fs.slot].is_null() {
                    continue;
                }
                let Some(&(_, base_row)) = row.prov.iter().find(|(t, _)| t == &fs.table) else {
                    continue;
                };
                let key = (fs.table.clone(), base_row, fs.base_index);
                if cx.fill_results.contains_key(&key) || queued.contains(&key) {
                    continue;
                }
                let task =
                    cx.factory
                        .fill_task(cx.ids.next_task(), &fs.table, &row.values, &fs.column);
                queued.insert(key.clone());
                pending.push(PendingFill { key, task, ty: fs.ty });
            }
        }
        let votes = self.redundancy.max(1) as usize;
        if self.batch == 0 {
            // One platform round-trip per cell.
            for p in &pending {
                let out = oracle.ask(&AskRequest::new(&p.task).with_redundancy(votes))?;
                settle_fill(cx, p, &out)?;
            }
        } else {
            // `batch` cells per round-trip.
            for chunk in pending.chunks(self.batch) {
                let reqs: Vec<AskRequest<'_>> = chunk
                    .iter()
                    .map(|p| AskRequest::new(&p.task).with_redundancy(votes))
                    .collect();
                let outs = oracle.ask_batch(&reqs)?;
                for (p, out) in chunk.iter().zip(&outs) {
                    settle_fill(cx, p, out)?;
                }
            }
        }
        // Apply reconciled values to every buffered row copy.
        for fs in &self.slots {
            for row in &mut self.buf {
                if !row.values[fs.slot].is_null() {
                    continue;
                }
                let Some(&(_, base_row)) = row.prov.iter().find(|(t, _)| t == &fs.table) else {
                    continue;
                };
                let key = (fs.table.clone(), base_row, fs.base_index);
                if let Some(Some(v)) = cx.fill_results.get(&key) {
                    row.values[fs.slot] = v.clone();
                }
            }
        }
        self.questions = cx.delivered() - q0;
        self.spend = cx.spent() - s0;
        Ok(())
    }
}

/// Records one settled fill purchase in the context.
fn settle_fill(cx: &mut ExecCx<'_>, p: &PendingFill, out: &AskOutcome) -> Result<()> {
    if let Some(e) = &out.shortfall {
        if !e.is_resource_exhaustion() {
            return Err(e.clone());
        }
    }
    let value = reconcile_fill(&out.answers, p.ty);
    if let Some(v) = &value {
        cx.writebacks
            .push((p.key.0.clone(), p.key.1, p.key.2, v.clone()));
        cx.cells_filled += 1;
    }
    cx.fill_results.insert(p.key.clone(), value);
    Ok(())
}

impl Operator for CrowdFillOp {
    fn next(&mut self, cx: &mut ExecCx<'_>) -> Result<Option<ExecRow>> {
        if !self.built {
            while let Some(r) = self.child.next(cx)? {
                self.buf.push(r);
            }
            self.built = true;
            self.fill_all(cx)?;
        }
        if self.pos < self.buf.len() {
            self.pos += 1;
            Ok(Some(self.buf[self.pos - 1].clone()))
        } else {
            Ok(None)
        }
    }

    fn finish(&mut self, cx: &mut ExecCx<'_>) {
        self.child.finish(cx);
        if !self.reported {
            self.reported = true;
            cx.node_stats.push(NodeRuntime {
                node: "CrowdFill",
                rows_in: self.buf.len() as u64,
                rows_out: self.buf.len() as u64,
                questions: self.questions,
                spend: self.spend,
            });
        }
    }
}

struct CrowdCompareOp {
    child: Box<dyn Operator>,
    predicates: Vec<BoundPredicate>,
    redundancy: u32,
    keys: Vec<String>,
    counts: Vec<(u64, u64)>,
    rows_in: u64,
    rows_out: u64,
    questions: u64,
    spend: f64,
    reported: bool,
}

impl Operator for CrowdCompareOp {
    fn next(&mut self, cx: &mut ExecCx<'_>) -> Result<Option<ExecRow>> {
        loop {
            let Some(row) = self.child.next(cx)? else {
                return Ok(None);
            };
            self.rows_in += 1;
            let q0 = cx.delivered();
            let s0 = cx.spent();
            let mut pass = true;
            for (i, p) in self.predicates.iter().enumerate() {
                let BoundPredicate::CrowdEqual { left, right } = p else {
                    return Err(CrowdError::Execution(
                        "machine predicate in CrowdFilter".into(),
                    ));
                };
                self.counts[i].1 += 1;
                let lv = eval(left, &row);
                let rv = eval(right, &row);
                // NULL operands drop the row without asking the crowd.
                if lv.is_null() || rv.is_null() || !cx.crowd_equal(&lv, &rv, self.redundancy)? {
                    pass = false;
                    break;
                }
                self.counts[i].0 += 1;
            }
            self.questions += cx.delivered() - q0;
            self.spend += cx.spent() - s0;
            if pass {
                self.rows_out += 1;
                return Ok(Some(row));
            }
        }
    }

    fn finish(&mut self, cx: &mut ExecCx<'_>) {
        self.child.finish(cx);
        if !self.reported {
            self.reported = true;
            cx.node_stats.push(NodeRuntime {
                node: "CrowdFilter",
                rows_in: self.rows_in,
                rows_out: self.rows_out,
                questions: self.questions,
                spend: self.spend,
            });
            for (key, &(passed, seen)) in self.keys.iter().zip(&self.counts) {
                cx.observations.push((key.clone(), passed, seen));
            }
        }
    }
}

struct CrowdJoinOp {
    left: Box<dyn Operator>,
    right: Box<dyn Operator>,
    left_expr: BoundExpr,
    right_expr: BoundExpr,
    left_width: usize,
    key_display: String,
    redundancy: u32,
    batch: usize,
    outer: Side,
    out: Vec<ExecRow>,
    pos: usize,
    built: bool,
    rows_in: u64,
    matched: u64,
    pairs: u64,
    questions: u64,
    spend: f64,
    reported: bool,
}

impl CrowdJoinOp {
    /// Evaluates the join expression for one side's row. Join
    /// expressions are written against the joined layout; right-side
    /// slots are rebased by the left width.
    fn side_value(&self, expr: &BoundExpr, row: &ExecRow, right: bool) -> Value {
        match expr {
            BoundExpr::Slot(s) => {
                let idx = if right { s.slot - self.left_width } else { s.slot };
                row.values[idx].clone()
            }
            BoundExpr::Literal(v) => v.clone(),
        }
    }

    fn run(&mut self, cx: &mut ExecCx<'_>) -> Result<()> {
        let mut lrows = Vec::new();
        while let Some(r) = self.left.next(cx)? {
            lrows.push(r);
        }
        let mut rrows = Vec::new();
        while let Some(r) = self.right.next(cx)? {
            rrows.push(r);
        }
        self.rows_in = (lrows.len() * rrows.len()) as u64;
        let lvals: Vec<Value> = lrows
            .iter()
            .map(|r| self.side_value(&self.left_expr, r, false))
            .collect();
        let rvals: Vec<Value> = rrows
            .iter()
            .map(|r| self.side_value(&self.right_expr, r, true))
            .collect();
        let q0 = cx.delivered();
        let s0 = cx.spent();
        // Verdict phase: buy every needed CROWDEQUAL verdict in
        // outer-major order (the `outer` knob controls which side's
        // stripes form the batched round-trips).
        let (outer_vals, inner_vals, outer_is_left) = match self.outer {
            Side::Left => (&lvals, &rvals, true),
            Side::Right => (&rvals, &lvals, false),
        };
        for ov in outer_vals {
            if ov.is_null() {
                continue;
            }
            if self.batch == 0 {
                for iv in inner_vals {
                    if iv.is_null() {
                        continue;
                    }
                    let (lv, rv) = if outer_is_left { (ov, iv) } else { (iv, ov) };
                    cx.crowd_equal(lv, rv, self.redundancy)?;
                }
            } else {
                // One stripe: all still-unjudged pairs for this outer
                // row, asked `batch` verdicts per platform round-trip.
                let oracle = cx.require_oracle(NO_ORACLE_JOIN)?;
                let votes = self.redundancy.max(1) as usize;
                let mut stripe: Vec<((String, String), Task)> = Vec::new();
                let mut queued: HashSet<(String, String)> = HashSet::new();
                for iv in inner_vals {
                    if iv.is_null() {
                        continue;
                    }
                    let (lv, rv) = if outer_is_left { (ov, iv) } else { (iv, ov) };
                    let key = equal_key(lv, rv);
                    if cx.equal_cache.contains_key(&key) || queued.contains(&key) {
                        continue;
                    }
                    let task = cx.factory.equal_task(cx.ids.next_task(), lv, rv);
                    queued.insert(key.clone());
                    stripe.push((key, task));
                }
                for chunk in stripe.chunks(self.batch) {
                    let reqs: Vec<AskRequest<'_>> = chunk
                        .iter()
                        .map(|(_, task)| AskRequest::new(task).with_redundancy(votes))
                        .collect();
                    let outs = oracle.ask_batch(&reqs)?;
                    for ((key, _), out) in chunk.iter().zip(&outs) {
                        if let Some(e) = &out.shortfall {
                            if !e.is_resource_exhaustion() {
                                return Err(e.clone());
                            }
                        }
                        cx.equal_cache.insert(key.clone(), reconcile_equal(&out.answers));
                        cx.equal_checks += 1;
                    }
                }
            }
        }
        self.questions = cx.delivered() - q0;
        self.spend = cx.spent() - s0;
        // Emit phase: always left-major, so the join's output order is
        // identical to CrowdFilter-over-cross regardless of `outer`.
        for (a, lv) in lrows.iter().zip(&lvals) {
            if lv.is_null() {
                continue;
            }
            for (b, rv) in rrows.iter().zip(&rvals) {
                if rv.is_null() {
                    continue;
                }
                self.pairs += 1;
                if cx.cached_equal(lv, rv) == Some(true) {
                    self.matched += 1;
                    self.out.push(combine(a, b));
                }
            }
        }
        Ok(())
    }
}

impl Operator for CrowdJoinOp {
    fn next(&mut self, cx: &mut ExecCx<'_>) -> Result<Option<ExecRow>> {
        if !self.built {
            self.built = true;
            self.run(cx)?;
        }
        if self.pos < self.out.len() {
            self.pos += 1;
            Ok(Some(self.out[self.pos - 1].clone()))
        } else {
            Ok(None)
        }
    }

    fn finish(&mut self, cx: &mut ExecCx<'_>) {
        self.left.finish(cx);
        self.right.finish(cx);
        if !self.reported {
            self.reported = true;
            cx.node_stats.push(NodeRuntime {
                node: "CrowdJoin",
                rows_in: self.rows_in,
                rows_out: self.out.len() as u64,
                questions: self.questions,
                spend: self.spend,
            });
            cx.observations
                .push((self.key_display.clone(), self.matched, self.pairs));
        }
    }
}

struct SortOp {
    child: Box<dyn Operator>,
    slot: usize,
    asc: bool,
    buf: Vec<ExecRow>,
    pos: usize,
    built: bool,
}

impl Operator for SortOp {
    fn next(&mut self, cx: &mut ExecCx<'_>) -> Result<Option<ExecRow>> {
        if !self.built {
            while let Some(r) = self.child.next(cx)? {
                self.buf.push(r);
            }
            let (slot, asc) = (self.slot, self.asc);
            self.buf.sort_by(|a, b| {
                use std::cmp::Ordering;
                let (av, bv) = (&a.values[slot], &b.values[slot]);
                // NULLs sort last regardless of direction.
                match (matches!(av, Value::Null), matches!(bv, Value::Null)) {
                    (true, true) => Ordering::Equal,
                    (true, false) => Ordering::Greater,
                    (false, true) => Ordering::Less,
                    (false, false) => {
                        let ord = av.compare(bv).unwrap_or(Ordering::Equal);
                        if asc {
                            ord
                        } else {
                            ord.reverse()
                        }
                    }
                }
            });
            self.built = true;
        }
        if self.pos < self.buf.len() {
            self.pos += 1;
            Ok(Some(self.buf[self.pos - 1].clone()))
        } else {
            Ok(None)
        }
    }

    fn finish(&mut self, cx: &mut ExecCx<'_>) {
        self.child.finish(cx);
    }
}

struct CrowdSortOp {
    child: Box<dyn Operator>,
    slot: usize,
    top_k: Option<usize>,
    redundancy: u32,
    out: Vec<ExecRow>,
    pos: usize,
    built: bool,
    rows_in: u64,
    questions: u64,
    spend: f64,
    worked: bool,
    reported: bool,
}

impl Operator for CrowdSortOp {
    fn next(&mut self, cx: &mut ExecCx<'_>) -> Result<Option<ExecRow>> {
        if !self.built {
            let mut rows = Vec::new();
            while let Some(r) = self.child.next(cx)? {
                rows.push(r);
            }
            self.built = true;
            if rows.len() <= 1 {
                // Nothing to order: succeed even without an oracle.
                self.out = rows;
            } else {
                let q0 = cx.delivered();
                let s0 = cx.spent();
                let slot = self.slot;
                let values: Vec<Value> = rows.iter().map(|r| r.values[slot].clone()).collect();
                let order = crowd_sort_order(cx, &values, self.top_k, self.redundancy)?;
                self.rows_in = rows.len() as u64;
                self.out = order.into_iter().map(|i| rows[i].clone()).collect();
                self.questions = cx.delivered() - q0;
                self.spend = cx.spent() - s0;
                self.worked = true;
            }
        }
        if self.pos < self.out.len() {
            self.pos += 1;
            Ok(Some(self.out[self.pos - 1].clone()))
        } else {
            Ok(None)
        }
    }

    fn finish(&mut self, cx: &mut ExecCx<'_>) {
        self.child.finish(cx);
        if self.worked && !self.reported {
            self.reported = true;
            cx.node_stats.push(NodeRuntime {
                node: "CrowdSort",
                rows_in: self.rows_in,
                rows_out: self.out.len() as u64,
                questions: self.questions,
                spend: self.spend,
            });
        }
    }
}

/// Produces the best-first row ordering for a crowd sort.
fn crowd_sort_order(
    cx: &mut ExecCx<'_>,
    values: &[Value],
    top_k: Option<usize>,
    votes: u32,
) -> Result<Vec<usize>> {
    let n = values.len();
    let oracle = cx.require_oracle(NO_ORACLE_SORT)?;
    let factory = &mut *cx.factory;
    match top_k {
        Some(k) if k < n => {
            let k = k.max(1);
            let out = crowd_top_k(oracle, n, k, votes, |id, a, b| {
                factory.compare_task(id, &values[a], &values[b])
            })?;
            cx.comparisons += out.matches as u64;
            Ok(out.winners)
        }
        _ => {
            // Full pairwise comparison graph ranked by Copeland score.
            let pairs: Vec<(usize, usize)> = (0..n)
                .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
                .collect();
            let graph: ComparisonGraph = collect_comparisons(oracle, n, &pairs, votes, |id, a, b| {
                factory.compare_task(id, &values[a], &values[b])
            })?;
            cx.comparisons += pairs.len() as u64;
            Ok(order_by_scores(&copeland(&graph)))
        }
    }
}

struct LimitOp {
    child: Box<dyn Operator>,
    remaining: usize,
}

impl Operator for LimitOp {
    fn next(&mut self, cx: &mut ExecCx<'_>) -> Result<Option<ExecRow>> {
        if self.remaining == 0 {
            return Ok(None); // early exit: stop pulling from the child
        }
        match self.child.next(cx)? {
            Some(r) => {
                self.remaining -= 1;
                Ok(Some(r))
            }
            None => {
                self.remaining = 0;
                Ok(None)
            }
        }
    }

    fn finish(&mut self, cx: &mut ExecCx<'_>) {
        self.child.finish(cx);
    }
}

struct ProjectOp {
    child: Box<dyn Operator>,
    /// Projected slots; empty projects everything (star).
    indices: Vec<usize>,
}

impl Operator for ProjectOp {
    fn next(&mut self, cx: &mut ExecCx<'_>) -> Result<Option<ExecRow>> {
        let Some(row) = self.child.next(cx)? else {
            return Ok(None);
        };
        if self.indices.is_empty() {
            return Ok(Some(row));
        }
        Ok(Some(ExecRow {
            values: self.indices.iter().map(|&i| row.values[i].clone()).collect(),
            prov: row.prov,
        }))
    }

    fn finish(&mut self, cx: &mut ExecCx<'_>) {
        self.child.finish(cx);
    }
}

struct CountStarOp {
    child: Box<dyn Operator>,
    emitted: bool,
}

impl Operator for CountStarOp {
    fn next(&mut self, cx: &mut ExecCx<'_>) -> Result<Option<ExecRow>> {
        if self.emitted {
            return Ok(None);
        }
        self.emitted = true;
        let mut count: i64 = 0;
        while self.child.next(cx)?.is_some() {
            count += 1;
        }
        Ok(Some(ExecRow {
            values: vec![Value::Int(count)],
            prov: Vec::new(),
        }))
    }

    fn finish(&mut self, cx: &mut ExecCx<'_>) {
        self.child.finish(cx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdkit_core::answer::AnswerValue;
    use crowdkit_core::ids::{TaskId, WorkerId};

    struct PricedOracle {
        delivered: Cell<u64>,
    }

    impl CrowdOracle for PricedOracle {
        fn ask_one(&self, task: &Task) -> Result<Answer> {
            self.delivered.set(self.delivered.get() + 1);
            let mut a = Answer::bare(
                task.id,
                WorkerId::new(self.delivered.get()),
                AnswerValue::Choice(1),
            );
            a.cost = 2.0;
            Ok(a)
        }
        fn remaining_budget(&self) -> Option<f64> {
            None
        }
        fn answers_delivered(&self) -> u64 {
            self.delivered.get()
        }
    }

    #[test]
    fn round_oracle_meters_rounds_and_spend() {
        let inner = PricedOracle {
            delivered: Cell::new(0),
        };
        let metered = RoundOracle::new(&inner);
        let task = Task::binary(TaskId::new(0), "q");
        let answers = metered.ask_many(&task, 3).unwrap();
        assert_eq!(answers.len(), 3);
        assert_eq!(metered.rounds(), 1, "one batched call is one round-trip");
        assert!((metered.spend() - 6.0).abs() < 1e-12);
        metered.ask_one(&task).unwrap();
        assert_eq!(metered.rounds(), 2);
        assert!((metered.spend() - 8.0).abs() < 1e-12);
        // Batch of two requests: still a single round-trip.
        let t2 = Task::binary(TaskId::new(1), "r");
        let reqs = vec![AskRequest::new(&task), AskRequest::new(&t2)];
        metered.ask_batch(&reqs).unwrap();
        assert_eq!(metered.rounds(), 3);
        assert!((metered.spend() - 12.0).abs() < 1e-12);
        assert_eq!(metered.answers_delivered(), 6);
    }

    /// A child operator that counts how many times it was pulled.
    struct CountingScan {
        rows: usize,
        pulls: Cell<usize>,
    }

    impl Operator for CountingScan {
        fn next(&mut self, _cx: &mut ExecCx<'_>) -> Result<Option<ExecRow>> {
            let n = self.pulls.get();
            self.pulls.set(n + 1);
            if n < self.rows {
                Ok(Some(ExecRow {
                    values: vec![Value::Int(n as i64)],
                    prov: vec![("t".to_owned(), n)],
                }))
            } else {
                Ok(None)
            }
        }
        fn finish(&mut self, _cx: &mut ExecCx<'_>) {}
    }

    struct NoFactory;

    impl TaskFactory for NoFactory {
        fn fill_task(&mut self, id: TaskId, _table: &str, _row: &[Value], column: &str) -> Task {
            Task::new(
                id,
                crowdkit_core::task::TaskKind::Fill {
                    attribute: column.to_owned(),
                },
                "unused",
            )
        }
        fn equal_task(&mut self, id: TaskId, _left: &Value, _right: &Value) -> Task {
            Task::binary(id, "unused")
        }
        fn compare_task(&mut self, id: TaskId, _left: &Value, _right: &Value) -> Task {
            Task::binary(id, "unused")
        }
    }

    #[test]
    fn limit_stops_pulling_from_its_child() {
        let child = CountingScan {
            rows: 100,
            pulls: Cell::new(0),
        };
        let mut limit = LimitOp {
            child: Box::new(child),
            remaining: 3,
        };
        let mut factory = NoFactory;
        let mut cx = ExecCx::new(None, &mut factory);
        let mut got = 0;
        while limit.next(&mut cx).unwrap().is_some() {
            got += 1;
        }
        assert_eq!(got, 3);
        // Further pulls stay shut off without touching the child.
        assert!(limit.next(&mut cx).unwrap().is_none());
    }

    #[test]
    fn machine_sort_places_nulls_last() {
        let rows = vec![
            ExecRow {
                values: vec![Value::Null],
                prov: vec![],
            },
            ExecRow {
                values: vec![Value::Int(2)],
                prov: vec![],
            },
            ExecRow {
                values: vec![Value::Int(1)],
                prov: vec![],
            },
        ];
        let mut op = SortOp {
            child: Box::new(ScanOp { rows, pos: 0 }),
            slot: 0,
            asc: true,
            buf: Vec::new(),
            pos: 0,
            built: false,
        };
        let mut factory = NoFactory;
        let mut cx = ExecCx::new(None, &mut factory);
        let mut out = Vec::new();
        while let Some(r) = op.next(&mut cx).unwrap() {
            out.push(r.values[0].clone());
        }
        assert_eq!(out, vec![Value::Int(1), Value::Int(2), Value::Null]);
    }

    #[test]
    fn fill_reconciliation_is_plurality_with_tie_rejection() {
        let mk = |t: u64, text: &str| {
            Answer::bare(
                TaskId::new(t),
                WorkerId::new(t),
                AnswerValue::Text(text.to_owned()),
            )
        };
        let win = reconcile_fill(&[mk(0, "Phone"), mk(1, " phone "), mk(2, "laptop")], ColumnType::Text);
        assert_eq!(win, Some(Value::Text("Phone".to_owned())));
        let tie = reconcile_fill(&[mk(0, "a"), mk(1, "b")], ColumnType::Text);
        assert_eq!(tie, None);
        let int = reconcile_fill(&[mk(0, "42")], ColumnType::Int);
        assert_eq!(int, Some(Value::Int(42)));
        let bad_int = reconcile_fill(&[mk(0, "many")], ColumnType::Int);
        assert_eq!(bad_int, None);
        assert_eq!(reconcile_fill(&[], ColumnType::Text), None);
    }
}
