//! Logical plans and the CrowdDB-style optimizer.
//!
//! Crowd operators dominate query cost by orders of magnitude, so the
//! optimizer's one job is to minimize *crowd questions*, not CPU. Three
//! rules, straight from the declarative-crowdsourcing literature:
//!
//! 1. **Machine-first** — every predicate evaluable from stored data runs
//!    before any crowd operator, shrinking the rows crowd operators see.
//! 2. **Lazy fill** — crowd columns are filled only when (a) a surviving
//!    predicate/order/projection actually reads them, and (b) the row has
//!    survived all machine predicates. The naive plan fills every crowd
//!    cell of every scanned row eagerly.
//! 3. **Limit-aware crowd sort** — `ORDER BY CROWDORDER(c) LIMIT k`
//!    becomes a top-k tournament (`O(n + k·log n)` comparisons) instead of
//!    a full pairwise sort (`O(n²)`).
//!
//! [`plan_query`] builds the naive plan, [`optimize`] the optimized one;
//! experiment E10 runs both and counts the questions.

use std::collections::BTreeSet;
use std::fmt;

use crowdkit_core::error::{CrowdError, Result};

use crate::ast::{ColumnRef, Expr, OrderBy, Predicate, Select};
use crate::catalog::Catalog;

/// A logical plan operator tree.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Scan all rows of a base table.
    Scan {
        /// Table name.
        table: String,
    },
    /// Cross product of two inputs (predicates filter above).
    Join {
        /// Left input.
        left: Box<PlanNode>,
        /// Right input.
        right: Box<PlanNode>,
    },
    /// Hash equi-join: `left.col = right.col`, built by the optimizer from
    /// a machine equality predicate between the two FROM tables. NULL keys
    /// never match (SQL semantics).
    HashJoin {
        /// Left input.
        left: Box<PlanNode>,
        /// Right input.
        right: Box<PlanNode>,
        /// Join column on the left input.
        left_col: ColumnRef,
        /// Join column on the right input.
        right_col: ColumnRef,
    },
    /// Machine-evaluable predicate filter.
    MachineFilter {
        /// Input plan.
        input: Box<PlanNode>,
        /// Conjunctive predicates.
        predicates: Vec<Predicate>,
    },
    /// Fill NULL cells of the listed crowd columns via the crowd.
    CrowdFill {
        /// Input plan.
        input: Box<PlanNode>,
        /// Columns to fill, as `(table, column)`.
        columns: Vec<(String, String)>,
    },
    /// Crowd-verified predicate filter (CROWDEQUAL).
    CrowdFilter {
        /// Input plan.
        input: Box<PlanNode>,
        /// Conjunctive crowd predicates.
        predicates: Vec<Predicate>,
    },
    /// Machine sort.
    MachineSort {
        /// Input plan.
        input: Box<PlanNode>,
        /// Sort column.
        column: ColumnRef,
        /// Ascending?
        asc: bool,
    },
    /// Crowd-judged ordering of rows by a column's values.
    CrowdSort {
        /// Input plan.
        input: Box<PlanNode>,
        /// Compared column.
        column: ColumnRef,
        /// When `Some(k)`, run a top-k tournament instead of a full sort.
        top_k: Option<usize>,
    },
    /// Keep the first `n` rows.
    Limit {
        /// Input plan.
        input: Box<PlanNode>,
        /// Row cap.
        n: usize,
    },
    /// Project the listed columns (empty = all).
    Project {
        /// Input plan.
        input: Box<PlanNode>,
        /// Projected columns.
        columns: Vec<ColumnRef>,
    },
    /// `COUNT(*)`: collapse the input to a single row with its row count.
    CountStar {
        /// Input plan.
        input: Box<PlanNode>,
    },
}

impl PlanNode {
    fn fmt_tree(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            PlanNode::Scan { table } => writeln!(f, "{pad}Scan {table}"),
            PlanNode::Join { left, right } => {
                writeln!(f, "{pad}Join (cross)")?;
                left.fmt_tree(f, indent + 1)?;
                right.fmt_tree(f, indent + 1)
            }
            PlanNode::HashJoin {
                left,
                right,
                left_col,
                right_col,
            } => {
                writeln!(f, "{pad}HashJoin [{left_col} = {right_col}]")?;
                left.fmt_tree(f, indent + 1)?;
                right.fmt_tree(f, indent + 1)
            }
            PlanNode::MachineFilter { input, predicates } => {
                let ps: Vec<String> = predicates.iter().map(|p| p.to_string()).collect();
                writeln!(f, "{pad}MachineFilter [{}]", ps.join(" AND "))?;
                input.fmt_tree(f, indent + 1)
            }
            PlanNode::CrowdFill { input, columns } => {
                let cs: Vec<String> =
                    columns.iter().map(|(t, c)| format!("{t}.{c}")).collect();
                writeln!(f, "{pad}CrowdFill [{}]", cs.join(", "))?;
                input.fmt_tree(f, indent + 1)
            }
            PlanNode::CrowdFilter { input, predicates } => {
                let ps: Vec<String> = predicates.iter().map(|p| p.to_string()).collect();
                writeln!(f, "{pad}CrowdFilter [{}]", ps.join(" AND "))?;
                input.fmt_tree(f, indent + 1)
            }
            PlanNode::MachineSort { input, column, asc } => {
                writeln!(
                    f,
                    "{pad}MachineSort {column} {}",
                    if *asc { "ASC" } else { "DESC" }
                )?;
                input.fmt_tree(f, indent + 1)
            }
            PlanNode::CrowdSort {
                input,
                column,
                top_k,
            } => {
                match top_k {
                    Some(k) => writeln!(f, "{pad}CrowdSort {column} (top-{k} tournament)")?,
                    None => writeln!(f, "{pad}CrowdSort {column} (full pairwise)")?,
                }
                input.fmt_tree(f, indent + 1)
            }
            PlanNode::Limit { input, n } => {
                writeln!(f, "{pad}Limit {n}")?;
                input.fmt_tree(f, indent + 1)
            }
            PlanNode::Project { input, columns } => {
                if columns.is_empty() {
                    writeln!(f, "{pad}Project *")?;
                } else {
                    let cs: Vec<String> = columns.iter().map(|c| c.to_string()).collect();
                    writeln!(f, "{pad}Project [{}]", cs.join(", "))?;
                }
                input.fmt_tree(f, indent + 1)
            }
            PlanNode::CountStar { input } => {
                writeln!(f, "{pad}CountStar")?;
                input.fmt_tree(f, indent + 1)
            }
        }
    }
}

impl fmt::Display for PlanNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_tree(f, 0)
    }
}

/// Planner settings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlannerConfig {}

/// Classification of a predicate's crowd needs against the catalog.
fn predicate_crowd_columns(
    pred: &Predicate,
    select: &Select,
    catalog: &Catalog,
) -> Result<Vec<(String, String)>> {
    let mut cols = Vec::new();
    let exprs: [&Expr; 2] = match pred {
        Predicate::Compare { left, right, .. } => [left, right],
        Predicate::CrowdEqual { left, right } => [left, right],
    };
    for e in exprs {
        if let Expr::Column(c) = e {
            let (table, col) = resolve_column(c, select, catalog)?;
            if catalog.table(&table)?.is_crowd_column(&col) {
                cols.push((table, col));
            }
        }
    }
    Ok(cols)
}

/// Resolves a column reference to `(table, column)` against the FROM list.
pub(crate) fn resolve_column(
    c: &ColumnRef,
    select: &Select,
    catalog: &Catalog,
) -> Result<(String, String)> {
    match &c.table {
        Some(t) => {
            if !select.from.iter().any(|f| f == t) {
                return Err(CrowdError::Semantic(format!(
                    "table '{t}' is not in the FROM clause"
                )));
            }
            catalog
                .table(t)?
                .column_index(&c.column)
                .ok_or_else(|| {
                    CrowdError::Semantic(format!("unknown column '{}' in table '{t}'", c.column))
                })?;
            Ok((t.clone(), c.column.clone()))
        }
        None => {
            let mut owners = Vec::new();
            for t in &select.from {
                if catalog.table(t)?.column_index(&c.column).is_some() {
                    owners.push(t.clone());
                }
            }
            match owners.as_slice() {
                [] => Err(CrowdError::Semantic(format!(
                    "unknown column '{}'",
                    c.column
                ))),
                [one] => Ok((one.clone(), c.column.clone())),
                _ => Err(CrowdError::Semantic(format!(
                    "ambiguous column '{}' (qualify it)",
                    c.column
                ))),
            }
        }
    }
}

/// True when a predicate needs no crowd at all (no CROWDEQUAL, no crowd
/// columns).
fn is_pure_machine(pred: &Predicate, select: &Select, catalog: &Catalog) -> Result<bool> {
    if matches!(pred, Predicate::CrowdEqual { .. }) {
        return Ok(false);
    }
    Ok(predicate_crowd_columns(pred, select, catalog)?.is_empty())
}

/// Builds the **naive** plan: eagerly fill every crowd column of every
/// scanned table, apply all predicates in syntactic order, full crowd sort
/// even under LIMIT.
pub fn plan_query(select: &Select, catalog: &Catalog) -> Result<PlanNode> {
    validate(select, catalog)?;
    let mut node = scans(select);

    // Eager fill of all crowd columns of all FROM tables.
    let mut fill_cols = Vec::new();
    for t in &select.from {
        for c in &catalog.table(t)?.columns {
            if c.crowd {
                fill_cols.push((t.clone(), c.name.clone()));
            }
        }
    }
    if !fill_cols.is_empty() {
        node = PlanNode::CrowdFill {
            input: Box::new(node),
            columns: fill_cols,
        };
    }

    // All predicates, in source order, split only by evaluator kind.
    for p in &select.predicates {
        node = match p {
            Predicate::CrowdEqual { .. } => PlanNode::CrowdFilter {
                input: Box::new(node),
                predicates: vec![p.clone()],
            },
            Predicate::Compare { .. } => PlanNode::MachineFilter {
                input: Box::new(node),
                predicates: vec![p.clone()],
            },
        };
    }

    node = apply_order(node, select, /* limit_aware= */ false);
    node = apply_limit_project(node, select);
    Ok(node)
}

/// Builds the **optimized** plan; see the module docs for the rules.
pub fn optimize(select: &Select, catalog: &Catalog) -> Result<PlanNode> {
    validate(select, catalog)?;

    // Rule 0: classify predicates.
    let mut machine = Vec::new();
    let mut crowd_dependent = Vec::new();
    let mut crowd_equal = Vec::new();
    for p in &select.predicates {
        if matches!(p, Predicate::CrowdEqual { .. }) {
            crowd_equal.push(p.clone());
        } else if is_pure_machine(p, select, catalog)? {
            machine.push(p.clone());
        } else {
            crowd_dependent.push(p.clone());
        }
    }

    // Rule 0b: on a two-table FROM, promote one machine equality between
    // columns of the two tables into a hash join (the rest of the machine
    // predicates filter above it as usual).
    let mut node = if select.from.len() == 2 {
        match extract_equi_join(&mut machine, select, catalog)? {
            Some((left_col, right_col)) => PlanNode::HashJoin {
                left: Box::new(PlanNode::Scan {
                    table: select.from[0].clone(),
                }),
                right: Box::new(PlanNode::Scan {
                    table: select.from[1].clone(),
                }),
                left_col,
                right_col,
            },
            None => scans(select),
        }
    } else {
        scans(select)
    };

    // Rule 1: machine predicates first.
    if !machine.is_empty() {
        node = PlanNode::MachineFilter {
            input: Box::new(node),
            predicates: machine,
        };
    }

    // Rule 2: lazy fill — only columns actually read downstream.
    let mut needed: BTreeSet<(String, String)> = BTreeSet::new();
    for p in &crowd_dependent {
        for c in predicate_crowd_columns(p, select, catalog)? {
            needed.insert(c);
        }
    }
    for p in &crowd_equal {
        for c in predicate_crowd_columns(p, select, catalog)? {
            needed.insert(c);
        }
    }
    if let Some(OrderBy::Crowd { column } | OrderBy::Machine { column, .. }) = &select.order_by {
        let (t, c) = resolve_column(column, select, catalog)?;
        if catalog.table(&t)?.is_crowd_column(&c) {
            needed.insert((t, c));
        }
    }
    for c in &select.projection {
        let (t, col) = resolve_column(c, select, catalog)?;
        if catalog.table(&t)?.is_crowd_column(&col) {
            needed.insert((t, col));
        }
    }
    if select.projection.is_empty() && !select.count {
        // SELECT *: all crowd columns end up in the output.
        for t in &select.from {
            for c in &catalog.table(t)?.columns {
                if c.crowd {
                    needed.insert((t.clone(), c.name.clone()));
                }
            }
        }
    }
    if !needed.is_empty() {
        node = PlanNode::CrowdFill {
            input: Box::new(node),
            columns: needed.into_iter().collect(),
        };
    }

    // Crowd-column machine predicates run after the fill...
    if !crowd_dependent.is_empty() {
        node = PlanNode::MachineFilter {
            input: Box::new(node),
            predicates: crowd_dependent,
        };
    }
    // ...and CROWDEQUAL (most expensive per tuple) runs last.
    if !crowd_equal.is_empty() {
        node = PlanNode::CrowdFilter {
            input: Box::new(node),
            predicates: crowd_equal,
        };
    }

    node = apply_order(node, select, /* limit_aware= */ true);
    node = apply_limit_project(node, select);
    Ok(node)
}

/// Finds (and removes from `machine`) the first non-crowd equality between
/// a column of the first FROM table and a column of the second, returning
/// it as `(left_col, right_col)` oriented to the FROM order.
fn extract_equi_join(
    machine: &mut Vec<Predicate>,
    select: &Select,
    catalog: &Catalog,
) -> Result<Option<(ColumnRef, ColumnRef)>> {
    for (i, p) in machine.iter().enumerate() {
        let Predicate::Compare {
            left: Expr::Column(a),
            op: crate::ast::CompareOp::Eq,
            right: Expr::Column(b),
        } = p
        else {
            continue;
        };
        let (ta, _) = resolve_column(a, select, catalog)?;
        let (tb, _) = resolve_column(b, select, catalog)?;
        if ta == tb {
            continue;
        }
        let (left_col, right_col) = if ta == select.from[0] {
            (a.clone(), b.clone())
        } else {
            (b.clone(), a.clone())
        };
        machine.remove(i);
        return Ok(Some((left_col, right_col)));
    }
    Ok(None)
}

fn scans(select: &Select) -> PlanNode {
    let mut node = PlanNode::Scan {
        table: select.from[0].clone(),
    };
    if let Some(second) = select.from.get(1) {
        node = PlanNode::Join {
            left: Box::new(node),
            right: Box::new(PlanNode::Scan {
                table: second.clone(),
            }),
        };
    }
    node
}

fn apply_order(node: PlanNode, select: &Select, limit_aware: bool) -> PlanNode {
    match &select.order_by {
        Some(OrderBy::Machine { column, asc }) => PlanNode::MachineSort {
            input: Box::new(node),
            column: column.clone(),
            asc: *asc,
        },
        Some(OrderBy::Crowd { column }) => PlanNode::CrowdSort {
            input: Box::new(node),
            column: column.clone(),
            top_k: if limit_aware { select.limit } else { None },
        },
        None => node,
    }
}

fn apply_limit_project(mut node: PlanNode, select: &Select) -> PlanNode {
    if select.count {
        // COUNT(*) replaces projection; the parser rejects ORDER BY/LIMIT.
        return PlanNode::CountStar {
            input: Box::new(node),
        };
    }
    if let Some(n) = select.limit {
        node = PlanNode::Limit {
            input: Box::new(node),
            n,
        };
    }
    PlanNode::Project {
        input: Box::new(node),
        columns: select.projection.clone(),
    }
}

/// Semantic validation shared by both planners: tables exist, columns
/// resolve.
fn validate(select: &Select, catalog: &Catalog) -> Result<()> {
    if select.from.is_empty() {
        return Err(CrowdError::Semantic("FROM clause is empty".into()));
    }
    for t in &select.from {
        catalog.table(t)?;
    }
    for c in &select.projection {
        resolve_column(c, select, catalog)?;
    }
    for p in &select.predicates {
        let exprs: [&Expr; 2] = match p {
            Predicate::Compare { left, right, .. } => [left, right],
            Predicate::CrowdEqual { left, right } => [left, right],
        };
        for e in exprs {
            if let Expr::Column(c) = e {
                resolve_column(c, select, catalog)?;
            }
        }
    }
    if let Some(OrderBy::Machine { column, .. } | OrderBy::Crowd { column }) = &select.order_by {
        resolve_column(column, select, catalog)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mk = |src: &str, c: &mut Catalog| {
            if let crate::ast::Statement::CreateTable {
                name,
                columns,
                crowd,
            } = parse_statement(src).unwrap()
            {
                c.create_table(&name, &columns, crowd).unwrap();
            }
        };
        mk(
            "CREATE TABLE products (id INT, name TEXT, category CROWD TEXT)",
            &mut c,
        );
        mk("CREATE TABLE brands (bname TEXT, country TEXT)", &mut c);
        c
    }

    fn select(src: &str) -> Select {
        match parse_statement(src).unwrap() {
            crate::ast::Statement::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn naive_plan_fills_eagerly() {
        let s = select("SELECT name FROM products WHERE id > 1");
        let plan = plan_query(&s, &catalog()).unwrap();
        let text = plan.to_string();
        assert!(
            text.contains("CrowdFill [products.category]"),
            "naive fills crowd columns even when unused:\n{text}"
        );
    }

    #[test]
    fn optimized_plan_skips_unneeded_fill() {
        let s = select("SELECT name FROM products WHERE id > 1");
        let plan = optimize(&s, &catalog()).unwrap();
        let text = plan.to_string();
        assert!(
            !text.contains("CrowdFill"),
            "no crowd column is read — no fill:\n{text}"
        );
    }

    #[test]
    fn optimized_plan_orders_machine_before_fill_before_crowd() {
        let s = select(
            "SELECT name FROM products WHERE category = 'phone' AND id > 1",
        );
        let text = optimize(&s, &catalog()).unwrap().to_string();
        // Tree prints top-down (last operator first); machine filter on id
        // must be *below* (after in text) the fill, and the category filter
        // above it.
        let fill_pos = text.find("CrowdFill").expect("fill present");
        let machine_id = text.find("MachineFilter [id > 1]").expect("machine filter");
        let machine_cat = text
            .find("MachineFilter [category = 'phone']")
            .expect("category filter");
        assert!(machine_cat < fill_pos, "category filter above fill:\n{text}");
        assert!(fill_pos < machine_id, "fill above id filter:\n{text}");
    }

    #[test]
    fn optimized_crowd_sort_uses_tournament_under_limit() {
        let s = select("SELECT name FROM products ORDER BY CROWDORDER(name) LIMIT 3");
        let text = optimize(&s, &catalog()).unwrap().to_string();
        assert!(text.contains("top-3 tournament"), "{text}");
        let naive = plan_query(&s, &catalog()).unwrap().to_string();
        assert!(naive.contains("full pairwise"), "{naive}");
    }

    #[test]
    fn join_plans_cross_product_with_crowdequal_last() {
        let s = select(
            "SELECT products.name FROM products, brands \
             WHERE CROWDEQUAL(products.name, brands.bname) AND products.id > 0",
        );
        let text = optimize(&s, &catalog()).unwrap().to_string();
        let crowd = text.find("CrowdFilter").unwrap();
        let machine = text.find("MachineFilter").unwrap();
        assert!(
            crowd < machine,
            "crowd filter sits above (runs after) machine filter:\n{text}"
        );
        assert!(text.contains("Join"));
    }

    #[test]
    fn select_star_fills_all_crowd_columns_in_optimized_plan() {
        let s = select("SELECT * FROM products WHERE id > 0");
        let text = optimize(&s, &catalog()).unwrap().to_string();
        assert!(text.contains("CrowdFill [products.category]"), "{text}");
    }

    #[test]
    fn validation_rejects_unknowns_and_ambiguity() {
        let c = catalog();
        assert!(optimize(&select("SELECT * FROM nosuch"), &c).is_err());
        assert!(optimize(&select("SELECT nosuch FROM products"), &c).is_err());
        assert!(optimize(
            &select("SELECT products.nosuch FROM products"),
            &c
        )
        .is_err());
        // 'country' exists only in brands — fine unqualified; but a column
        // in both tables must be qualified.
        let mut c2 = Catalog::new();
        if let crate::ast::Statement::CreateTable {
            name,
            columns,
            crowd,
        } = parse_statement("CREATE TABLE a (x INT)").unwrap()
        {
            c2.create_table(&name, &columns, crowd).unwrap();
        }
        if let crate::ast::Statement::CreateTable {
            name,
            columns,
            crowd,
        } = parse_statement("CREATE TABLE b (x INT)").unwrap()
        {
            c2.create_table(&name, &columns, crowd).unwrap();
        }
        assert!(optimize(&select("SELECT x FROM a, b"), &c2).is_err());
        assert!(optimize(&select("SELECT a.x FROM a, b"), &c2).is_ok());
    }

    #[test]
    fn plans_are_deterministic() {
        let s = select("SELECT * FROM products WHERE category = 'x'");
        let c = catalog();
        assert_eq!(optimize(&s, &c).unwrap(), optimize(&s, &c).unwrap());
    }
}
