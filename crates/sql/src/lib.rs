//! # crowdkit-sql
//!
//! CrowdSQL: a CrowdDB-flavoured declarative layer where SQL queries can
//! reference data and judgements only people can provide.
//!
//! CrowdDB (Franklin et al., 2011) extended SQL with three constructs,
//! all implemented here:
//!
//! * **CROWD columns** — `CREATE TABLE p (name TEXT, phone CROWD TEXT)`:
//!   the column may be `NULL` at query time and is *filled* by the crowd
//!   on demand, only for rows that survive the machine predicates.
//! * **`CROWDEQUAL(a, b)`** — crowd-verified equality ("are these two
//!   values the same thing?"), the predicate behind crowd joins.
//! * **`CROWDORDER(col)`** — crowd-provided ordering for subjective
//!   `ORDER BY`; with a `LIMIT k` the optimizer switches from a full
//!   pairwise sort to a top-k tournament.
//!
//! ## Pipeline
//!
//! ```text
//! SQL text ──lexer/parser──▶ AST
//!          ──binder──▶ canonical logical Plan   (names/types resolved)
//!          ──rewriter──▶ candidate plans        (rule-based transforms)
//!          ──cost model──▶ chosen plan          (spend/rounds/quality)
//!          ──Volcano executor──▶ rows           (crowd via CrowdOracle)
//! ```
//!
//! * [`binder`] resolves names and types against the [`Catalog`] and
//!   produces the canonical [`ir::Plan`] — eager fills, cross joins,
//!   machine-shaped but crowd-complete. Errors carry line/column.
//! * [`rewrite`] applies lazy fill, predicate pushdown, hash-join
//!   promotion, crowd-join formation/reordering, top-k fusion and
//!   batching, then picks the candidate the [`cost`] model scores
//!   cheapest.
//! * [`cost`] prices plans in a [`cost::CostVector`] (spend, platform
//!   round-trips, predicted quality) using per-predicate selectivities
//!   learned from previous queries ([`cost::SelectivityMemory`]).
//! * The executor is a pull-based (Volcano) operator tree; each operator
//!   reports per-node row and question counts through `crowdkit-obs`.
//!
//! The optimizer is where the money is: experiment E10 compares the
//! naive canonical plan against the optimized one and checks that the
//! *actual* spend tracks the *predicted* spend reported in
//! [`QueryStats`].
//!
//! ## Example
//!
//! ```
//! use crowdkit_sql::{QueryOpts, Session};
//!
//! let session = Session::new();
//! session.execute_ddl("CREATE TABLE items (id INT, name TEXT)").unwrap();
//! session
//!     .execute_ddl("INSERT INTO items VALUES (1, 'apple'), (2, 'pear')")
//!     .unwrap();
//! // Machine-only queries run without a crowd.
//! let rows = session
//!     .query_machine("SELECT name FROM items WHERE id >= 2")
//!     .unwrap();
//! assert_eq!(rows.len(), 1);
//! // EXPLAIN returns the chosen physical plan plus predicted cost.
//! let report = session
//!     .explain("SELECT name FROM items WHERE id >= 2", true)
//!     .unwrap();
//! assert!(report.predicted.spend == 0.0, "{report}");
//! let _ = QueryOpts::new().votes(5); // knobs for crowd queries
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod binder;
pub mod catalog;
pub mod cost;
pub mod exec;
pub mod ir;
pub mod lexer;
pub mod parser;
pub mod rewrite;
pub mod value;
mod volcano;

pub use binder::{bind, BoundCol, BoundQuery};
pub use catalog::{Catalog, ColumnDef, ColumnType, TableDef};
pub use cost::{CostVector, CostWeights, Estimator, NodeCost, PlanCost, SelectivityMemory};
pub use exec::{
    ExplainReport, FnTaskFactory, QueryOpts, QueryStats, Session, SimTaskFactory, TaskFactory,
};
pub use ir::Plan;
pub use rewrite::{optimize, Rewritten};
pub use value::Value;
