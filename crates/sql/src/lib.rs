//! # crowdkit-sql
//!
//! CrowdSQL: a CrowdDB-flavoured declarative layer where SQL queries can
//! reference data and judgements only people can provide.
//!
//! CrowdDB (Franklin et al., 2011) extended SQL with three constructs,
//! all implemented here:
//!
//! * **CROWD columns** — `CREATE TABLE p (name TEXT, phone CROWD TEXT)`:
//!   the column may be `NULL` at query time and is *filled* by the crowd
//!   on demand, only for rows that survive the machine predicates.
//! * **`CROWDEQUAL(a, b)`** — crowd-verified equality ("are these two
//!   values the same thing?"), the predicate behind crowd joins.
//! * **`CROWDORDER(col)`** — crowd-provided ordering for subjective
//!   `ORDER BY`; with a `LIMIT k` the optimizer switches from a full
//!   pairwise sort to a top-k tournament.
//!
//! ## Pipeline
//!
//! ```text
//! SQL text ──lexer/parser──▶ AST ──planner──▶ logical plan
//!          ──optimizer (machine-first, lazy fill, limit-aware sort)──▶ plan
//!          ──executor──▶ rows  (crowd questions via CrowdOracle)
//! ```
//!
//! The optimizer is where the money is: experiment E10 compares the
//! naive plan (fill every crowd cell eagerly, full sort) against the
//! optimized plan (machine predicates first, fill only surviving rows,
//! tournament top-k) and counts crowd questions.
//!
//! ## Example
//!
//! ```
//! use crowdkit_sql::{Session, TaskFactory};
//!
//! let mut session = Session::new();
//! session.execute_ddl("CREATE TABLE items (id INT, name TEXT)").unwrap();
//! session
//!     .execute_ddl("INSERT INTO items VALUES (1, 'apple'), (2, 'pear')")
//!     .unwrap();
//! // Machine-only queries run without a crowd.
//! let rows = session
//!     .query_machine("SELECT name FROM items WHERE id >= 2")
//!     .unwrap();
//! assert_eq!(rows.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod catalog;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod value;

pub use catalog::{Catalog, ColumnDef, ColumnType, TableDef};
pub use exec::{QueryStats, Session, TaskFactory};
pub use plan::{optimize, plan_query, PlanNode, PlannerConfig};
pub use value::Value;
