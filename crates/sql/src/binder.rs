//! Name and type resolution: AST → logical plan IR.
//!
//! The binder resolves every column reference in a [`Select`] against the
//! catalog, checks predicate types, and lowers the statement into the
//! canonical (naive) [`Plan`]: scans joined bottom-up, an eager
//! [`Plan::CrowdFill`] of *every* crowd column in the FROM tables, the
//! WHERE conjuncts in source order, then ordering, limit, and projection.
//! That canonical tree is both the baseline the optimizer must beat and
//! the reference semantics rewrites must preserve.
//!
//! All resolution failures are [`CrowdError::Bind`] diagnostics carrying
//! the 1-based line/column of the offending token.

use crowdkit_core::error::{CrowdError, Result};

use crate::ast::{ColumnRef, Expr, OrderBy, Predicate, Select, Span};
use crate::catalog::{Catalog, ColumnType};
use crate::ir::{BoundExpr, BoundPredicate, FillSlot, Plan, SlotRef};

/// One column of the bound query's input schema (the concatenation of the
/// FROM tables' columns, in FROM order).
#[derive(Debug, Clone, PartialEq)]
pub struct BoundCol {
    /// Owning base table.
    pub table: String,
    /// Column name.
    pub column: String,
    /// Column index within the base table.
    pub base_index: usize,
    /// Declared type.
    pub ty: ColumnType,
    /// Whether the crowd fills this column on demand.
    pub crowd: bool,
}

/// A fully resolved query: its input schema and the canonical naive plan.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundQuery {
    /// Tables in FROM order.
    pub from: Vec<String>,
    /// Concatenated schema of the FROM tables.
    pub schema: Vec<BoundCol>,
    /// The canonical (naive) logical plan.
    pub plan: Plan,
}

fn ty_name(ty: ColumnType) -> &'static str {
    match ty {
        ColumnType::Int => "INT",
        ColumnType::Text => "TEXT",
    }
}

/// Line/column for a diagnostic, falling back to 1:1 for synthesized
/// nodes that carry no source position.
fn pos(span: Span) -> (usize, usize) {
    if span == Span::default() {
        (1, 1)
    } else {
        (span.line, span.col)
    }
}

struct Binder<'a> {
    catalog: &'a Catalog,
    from: Vec<String>,
    schema: Vec<BoundCol>,
}

impl<'a> Binder<'a> {
    fn new(select: &Select, catalog: &'a Catalog) -> Result<Self> {
        let mut schema = Vec::new();
        for (i, table) in select.from.iter().enumerate() {
            let def = catalog.table(table).map_err(|_| {
                let span = select.from_spans.get(i).copied().unwrap_or_default();
                let (line, col) = pos(span);
                CrowdError::bind(line, col, format!("unknown table `{table}`"))
            })?;
            for (idx, c) in def.columns.iter().enumerate() {
                schema.push(BoundCol {
                    table: table.clone(),
                    column: c.name.clone(),
                    base_index: idx,
                    ty: c.ty,
                    crowd: c.crowd,
                });
            }
        }
        Ok(Self {
            catalog,
            from: select.from.clone(),
            schema,
        })
    }

    /// Resolves a column reference to a slot in the concatenated schema.
    fn resolve(&self, cref: &ColumnRef) -> Result<usize> {
        let (line, col) = pos(cref.span);
        if let Some(table) = &cref.table {
            if !self.from.iter().any(|t| t == table) {
                return Err(CrowdError::bind(
                    line,
                    col,
                    format!("table `{table}` is not in the FROM clause"),
                ));
            }
            return self
                .schema
                .iter()
                .position(|b| &b.table == table && b.column == cref.column)
                .ok_or_else(|| {
                    CrowdError::bind(
                        line,
                        col,
                        format!("table `{table}` has no column `{}`", cref.column),
                    )
                });
        }
        let mut hits = self
            .schema
            .iter()
            .enumerate()
            .filter(|(_, b)| b.column == cref.column);
        match (hits.next(), hits.next()) {
            (Some((slot, _)), None) => Ok(slot),
            (Some(_), Some(_)) => Err(CrowdError::bind(
                line,
                col,
                format!(
                    "ambiguous column `{}` (qualify it with a table name)",
                    cref.column
                ),
            )),
            _ => Err(CrowdError::bind(
                line,
                col,
                format!("unknown column `{}`", cref.column),
            )),
        }
    }

    fn bind_expr(&self, expr: &Expr) -> Result<BoundExpr> {
        match expr {
            Expr::Column(c) => {
                let slot = self.resolve(c)?;
                Ok(BoundExpr::Slot(SlotRef {
                    slot,
                    name: c.to_string(),
                }))
            }
            Expr::Literal(v) => Ok(BoundExpr::Literal(v.clone())),
        }
    }

    /// The static type of a bound expression, when known (NULL literals
    /// are compatible with every type).
    fn expr_type(&self, e: &BoundExpr) -> Option<ColumnType> {
        match e {
            BoundExpr::Slot(s) => Some(self.schema[s.slot].ty),
            BoundExpr::Literal(crate::value::Value::Int(_)) => Some(ColumnType::Int),
            BoundExpr::Literal(crate::value::Value::Text(_)) => Some(ColumnType::Text),
            BoundExpr::Literal(crate::value::Value::Null) => None,
        }
    }

    fn bind_predicate(&self, pred: &Predicate) -> Result<BoundPredicate> {
        match pred {
            Predicate::Compare { left, op, right } => {
                let l = self.bind_expr(left)?;
                let r = self.bind_expr(right)?;
                if let (Some(lt), Some(rt)) = (self.expr_type(&l), self.expr_type(&r)) {
                    if lt != rt {
                        let span = left.span().or_else(|| right.span()).unwrap_or_default();
                        let (line, col) = pos(span);
                        return Err(CrowdError::bind(
                            line,
                            col,
                            format!(
                                "type mismatch: cannot compare `{l}` ({}) to `{r}` ({})",
                                ty_name(lt),
                                ty_name(rt)
                            ),
                        ));
                    }
                }
                Ok(BoundPredicate::Compare { left: l, op: *op, right: r })
            }
            Predicate::CrowdEqual { left, right } => Ok(BoundPredicate::CrowdEqual {
                left: self.bind_expr(left)?,
                right: self.bind_expr(right)?,
            }),
        }
    }

    /// Every crowd column of the FROM tables, in FROM-then-declaration
    /// order — the eager fill set of the canonical plan.
    fn all_crowd_slots(&self) -> Vec<FillSlot> {
        self.schema
            .iter()
            .enumerate()
            .filter(|(_, b)| b.crowd)
            .map(|(slot, b)| FillSlot {
                slot,
                table: b.table.clone(),
                column: b.column.clone(),
                base_index: b.base_index,
                ty: b.ty,
            })
            .collect()
    }

    fn canonical_plan(&self, select: &Select, votes: u32) -> Result<Plan> {
        // Base scans: one table or a cross join of two.
        let mut widths = Vec::new();
        for t in &self.from {
            widths.push(self.catalog.table(t)?.columns.len());
        }
        let mut plan = Plan::Scan {
            table: self.from[0].clone(),
            width: widths[0],
        };
        if self.from.len() == 2 {
            plan = Plan::CrossJoin {
                left: Box::new(plan),
                right: Box::new(Plan::Scan {
                    table: self.from[1].clone(),
                    width: widths[1],
                }),
            };
        }

        // Eagerly fill every crowd column before anything looks at rows.
        let fill_slots = self.all_crowd_slots();
        if !fill_slots.is_empty() {
            plan = Plan::CrowdFill {
                input: Box::new(plan),
                slots: fill_slots,
                redundancy: votes,
                batch: 0,
            };
        }

        // WHERE conjuncts in source order, one operator per predicate.
        for pred in &select.predicates {
            let bound = self.bind_predicate(pred)?;
            plan = match bound {
                p @ BoundPredicate::Compare { .. } => Plan::Filter {
                    input: Box::new(plan),
                    predicates: vec![p],
                },
                p @ BoundPredicate::CrowdEqual { .. } => Plan::CrowdCompare {
                    input: Box::new(plan),
                    predicates: vec![p],
                    redundancy: votes,
                },
            };
        }

        // Ordering.
        if let Some(order) = &select.order_by {
            plan = match order {
                OrderBy::Machine { column, asc } => {
                    let slot = self.resolve(column)?;
                    Plan::Sort {
                        input: Box::new(plan),
                        slot: SlotRef {
                            slot,
                            name: column.to_string(),
                        },
                        asc: *asc,
                    }
                }
                OrderBy::Crowd { column } => {
                    let slot = self.resolve(column)?;
                    Plan::CrowdSort {
                        input: Box::new(plan),
                        slot: SlotRef {
                            slot,
                            name: column.to_string(),
                        },
                        top_k: None,
                        redundancy: votes,
                    }
                }
            };
        }

        // COUNT(*) collapses the result; otherwise limit then project.
        if select.count {
            return Ok(Plan::CountStar {
                input: Box::new(plan),
            });
        }
        if let Some(n) = select.limit {
            plan = Plan::Limit {
                input: Box::new(plan),
                n,
            };
        }
        let mut proj = Vec::new();
        for c in &select.projection {
            let slot = self.resolve(c)?;
            proj.push(SlotRef {
                slot,
                name: c.to_string(),
            });
        }
        Ok(Plan::Project {
            input: Box::new(plan),
            slots: proj,
        })
    }
}

/// Resolves a SELECT against the catalog and lowers it to the canonical
/// naive plan, with `votes` as the redundancy knob on every crowd node.
pub fn bind(select: &Select, catalog: &Catalog, votes: u32) -> Result<BoundQuery> {
    if select.from.is_empty() {
        return Err(CrowdError::bind(1, 1, "FROM clause is empty"));
    }
    let binder = Binder::new(select, catalog)?;
    let plan = binder.canonical_plan(select, votes)?;
    Ok(BoundQuery {
        from: binder.from,
        schema: binder.schema,
        plan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Statement;
    use crate::parser::parse_statement;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        for ddl in [
            "CREATE TABLE products (id INT, name TEXT, category CROWD TEXT, rating CROWD INT)",
            "CREATE TABLE brands (bid INT, bname TEXT, country CROWD TEXT)",
        ] {
            match parse_statement(ddl).unwrap() {
                Statement::CreateTable {
                    name,
                    columns,
                    crowd,
                } => c.create_table(&name, &columns, crowd).unwrap(),
                other => panic!("unexpected {other:?}"),
            }
        }
        c
    }

    fn bind_sql(sql: &str) -> Result<BoundQuery> {
        match parse_statement(sql).unwrap() {
            Statement::Select(sel) => bind(&sel, &catalog(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn canonical_plan_fills_eagerly_in_source_order() {
        let q = bind_sql("SELECT name FROM products WHERE category = 'phone'").unwrap();
        let text = q.plan.to_string();
        let fill = text.find("CrowdFill [products.category, products.rating]");
        let filt = text.find("MachineFilter [category = 'phone']");
        assert!(fill.is_some(), "eager fill of all crowd columns:\n{text}");
        assert!(
            filt.unwrap() < fill.unwrap(),
            "filter sits above the fill in the naive plan:\n{text}"
        );
        assert_eq!(q.schema.len(), 4);
        assert_eq!(q.from, vec!["products"]);
    }

    #[test]
    fn join_schema_concatenates_and_crowdequal_binds() {
        let q = bind_sql(
            "SELECT * FROM products, brands \
             WHERE CROWDEQUAL(name, bname) AND id >= 2",
        )
        .unwrap();
        assert_eq!(q.schema.len(), 7);
        assert_eq!(q.schema[4].table, "brands");
        let text = q.plan.to_string();
        assert!(text.contains("Join (cross)"));
        assert!(text.contains("CrowdFilter [CROWDEQUAL(name, bname)]"));
        assert!(text.contains("CrowdFill [products.category, products.rating, brands.country]"));
    }

    #[test]
    fn unknown_names_yield_bind_diagnostics_with_positions() {
        let err = bind_sql("SELECT price FROM products").unwrap_err();
        match err {
            CrowdError::Bind { line, column, message } => {
                assert_eq!((line, column), (1, 8));
                assert!(message.contains("unknown column `price`"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }

        let err = bind_sql("SELECT name\nFROM warehouse").unwrap_err();
        match err {
            CrowdError::Bind { line, column, message } => {
                assert_eq!((line, column), (2, 6));
                assert!(message.contains("unknown table `warehouse`"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }

        let err = bind_sql("SELECT brands.name FROM products, brands").unwrap_err();
        match err {
            CrowdError::Bind { message, .. } => {
                assert!(message.contains("has no column `name`"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }

        let err = bind_sql("SELECT other.id FROM products").unwrap_err();
        match err {
            CrowdError::Bind { message, .. } => {
                assert!(message.contains("not in the FROM clause"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ambiguity_requires_qualification() {
        let mut c = catalog();
        match parse_statement("CREATE TABLE dupes (id INT, name TEXT)").unwrap() {
            Statement::CreateTable {
                name,
                columns,
                crowd,
            } => c.create_table(&name, &columns, crowd).unwrap(),
            other => panic!("unexpected {other:?}"),
        }
        let sel = match parse_statement("SELECT name FROM products, dupes").unwrap() {
            Statement::Select(s) => s,
            other => panic!("unexpected {other:?}"),
        };
        let err = bind(&sel, &c, 3).unwrap_err();
        match err {
            CrowdError::Bind { line, column, message } => {
                assert_eq!((line, column), (1, 8));
                assert!(message.contains("ambiguous column `name`"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn predicate_type_mismatch_is_a_bind_error() {
        let err = bind_sql("SELECT name FROM products WHERE id = 'three'").unwrap_err();
        match err {
            CrowdError::Bind { line, column, message } => {
                assert_eq!((line, column), (1, 33));
                assert!(message.contains("type mismatch"), "{message}");
                assert!(message.contains("INT") && message.contains("TEXT"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // NULL literals are compatible with any column type.
        assert!(bind_sql("SELECT name FROM products WHERE name != NULL").is_ok());
        // Same-type comparisons are fine.
        assert!(bind_sql("SELECT name FROM products WHERE id >= 2").is_ok());
    }

    #[test]
    fn count_and_limit_shapes() {
        let q = bind_sql("SELECT COUNT(*) FROM products").unwrap();
        let text = q.plan.to_string();
        assert!(text.starts_with("CountStar"), "{text}");

        let q = bind_sql("SELECT name FROM products ORDER BY CROWDORDER(name) LIMIT 2").unwrap();
        let text = q.plan.to_string();
        // The canonical plan never fuses the limit into the sort.
        assert!(text.contains("CrowdSort name (full pairwise)"), "{text}");
        assert!(text.contains("Limit 2"), "{text}");
    }

    #[test]
    fn binding_is_deterministic() {
        let a = bind_sql("SELECT name FROM products WHERE category = 'x'").unwrap();
        let b = bind_sql("SELECT name FROM products WHERE category = 'x'").unwrap();
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.plan.to_string(), b.plan.to_string());
    }
}
